// Server-side instance management for the V I/O protocol.
//
// Servers that export file-like objects keep an InstanceTable of open
// InstanceObjects.  Instance ids are short numeric identifiers, reused as
// late as possible (paper section 4.3: "servers attempt to maximize the
// time before reusing a temporary object identifier").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "io/protocol.hpp"
#include "ipc/kernel.hpp"
#include "sim/task.hpp"

namespace v::io {

/// Attributes of one open instance.
struct InstanceInfo {
  std::uint32_t size_bytes = 0;
  std::uint16_t block_bytes = 512;
  std::uint16_t flags = kInstanceReadable;
};

/// A server-side open file-like object.  Implementations supply block
/// read/write; the CSNH server base drives the protocol around them.
class InstanceObject {
 public:
  virtual ~InstanceObject() = default;

  [[nodiscard]] virtual InstanceInfo info() const = 0;

  /// Read block `block` (block_bytes-sized; final block may be short) into
  /// `out` (sized to the requested byte count).  Returns bytes produced,
  /// kEndOfFile past the end, kNotReadable when reads are not allowed.
  virtual sim::Co<Result<std::size_t>> read_block(ipc::Process& self,
                                                  std::uint32_t block,
                                                  std::span<std::byte> out) = 0;

  /// Write `data` at block `block`.  Returns bytes consumed, kNotWriteable
  /// when writes are not allowed.
  virtual sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t block,
      std::span<const std::byte> data) = 0;

  /// Called on kReleaseInstance; default no-op.
  virtual void release(ipc::Process& /*self*/) {}
};

/// An in-memory byte-buffer instance: read over a snapshot, optional write
/// interception (used for context directories, mailboxes, spool jobs...).
class BufferInstance : public InstanceObject {
 public:
  explicit BufferInstance(std::vector<std::byte> data,
                          std::uint16_t flags = kInstanceReadable,
                          std::uint16_t block_bytes = 512)
      : data_(std::move(data)), flags_(flags), block_bytes_(block_bytes) {}

  [[nodiscard]] InstanceInfo info() const override {
    return InstanceInfo{static_cast<std::uint32_t>(data_.size()),
                        block_bytes_, flags_};
  }

  sim::Co<Result<std::size_t>> read_block(ipc::Process& self,
                                          std::uint32_t block,
                                          std::span<std::byte> out) override;

  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t block,
      std::span<const std::byte> data) override;

  [[nodiscard]] const std::vector<std::byte>& data() const noexcept {
    return data_;
  }

 protected:
  /// Hook invoked after a successful write (offset = first modified byte).
  /// Context directories override this to apply descriptor modifications.
  virtual void on_write(ipc::Process& /*self*/, std::size_t /*offset*/,
                        std::size_t /*length*/) {}

  std::vector<std::byte> data_;
  std::uint16_t flags_;
  std::uint16_t block_bytes_;
};

/// Table of open instances with late-reuse id allocation.
///
/// Entries are shared_ptrs: with multi-worker server teams, one worker can
/// be suspended inside read_block/write_block while another processes the
/// ReleaseInstance for the same id.  Release removes the table entry (new
/// lookups fail) but the in-flight worker's reference keeps the object
/// alive until its operation completes — the serial run loop used to
/// guarantee this by never interleaving; the refcount now does.
class InstanceTable {
 public:
  /// Register an open object; returns its new instance id.
  InstanceId add(std::unique_ptr<InstanceObject> object);

  /// Look up an instance (null when the id is not open).  Hold the
  /// returned shared_ptr across any co_await that touches the object.
  [[nodiscard]] std::shared_ptr<InstanceObject> find(InstanceId id);

  /// Close and remove an instance.  Returns false for unknown ids.
  bool release(ipc::Process& self, InstanceId id);

  [[nodiscard]] std::size_t open_count() const noexcept {
    return instances_.size();
  }

 private:
  std::map<InstanceId, std::shared_ptr<InstanceObject>> instances_;
  InstanceId next_id_ = 1;
};

}  // namespace v::io
