// The V I/O protocol (paper section 3.2): uniform block-oriented access to
// file-like objects via object instances.
//
// An instance is a temporary object (paper section 4.3): a server-generated
// 16-bit numeric identifier naming one open file-like object.  Operations:
//
//   kCreateInstance  (CSname request, naming/protocol.hpp: open-by-name)
//   kQueryInstance   instance attributes
//   kReadInstance    read one block; data MoveTo'd to the client
//   kWriteInstance   write one block; data MoveFrom'd from the client
//   kReleaseInstance close
//
// Wire layouts for the instance-id based requests and replies.
#pragma once

#include <cstdint>

#include "msg/message.hpp"

namespace v::io {

/// Temporary-object identifier for an open instance.
using InstanceId = std::uint16_t;

// --- kCreateInstance reply ----------------------------------------------------
inline constexpr std::size_t kOffCreateInstance = 2;   // u16 instance id
inline constexpr std::size_t kOffCreateSize = 4;       // u32 size in bytes
inline constexpr std::size_t kOffCreateBlock = 8;      // u16 block bytes
inline constexpr std::size_t kOffCreateFlags = 10;     // u16 readable/writeable
// Pid of the server that implements the instance.  Open may have been
// forwarded through several servers; the client learns the final one from
// the reply ("the pid for a server process is acquired when the file is
// opened and used subsequently without remapping", paper section 4.2).
inline constexpr std::size_t kOffCreateServerPid = 12;  // u32
// Context id (on that server) in which the leaf was interpreted.  Lets
// clients that opt into name caching remember (server, context) for the
// directory part of a name — with the consistency hazards paper section
// 2.2 warns about (see svc/name_cache.hpp).
inline constexpr std::size_t kOffCreateContextId = 16;  // u32

// --- kQueryInstance / kReadInstance / kWriteInstance / kReleaseInstance -------
inline constexpr std::size_t kOffInstance = 2;     // u16 instance id (request)
inline constexpr std::size_t kOffBlock = 4;        // u32 block number
inline constexpr std::size_t kOffByteCount = 8;    // u16 bytes to read/write
// Reply to read/write: actual byte count transferred.
inline constexpr std::size_t kOffXferCount = 2;    // u16
// Bulk reads can exceed 64 KB - 1; the reply carries the full count here.
inline constexpr std::size_t kOffXferCountLong = 4;  // u32
// Reply to query: size/block/flags at the kCreate offsets above.

/// Request byte-count sentinel: read from `block` to end-of-file and
/// deliver it with a single MoveTo — the V bulk-transfer path used for
/// program loading (64 KB in one MoveTo, paper section 3.1).
inline constexpr std::uint16_t kBulkRead = 0xffff;

/// Instance attribute flags (subset of naming descriptor flags).
enum InstanceFlags : std::uint16_t {
  kInstanceReadable = 1 << 0,
  kInstanceWriteable = 1 << 1,
  kInstanceAppendOnly = 1 << 2,
};

}  // namespace v::io
