#include "io/instance.hpp"

#include <algorithm>
#include <cstring>

namespace v::io {

sim::Co<Result<std::size_t>> BufferInstance::read_block(
    ipc::Process& self, std::uint32_t block, std::span<std::byte> out) {
  (void)self;
  if ((flags_ & kInstanceReadable) == 0) co_return ReplyCode::kNotReadable;
  const std::size_t offset =
      static_cast<std::size_t>(block) * block_bytes_;
  if (offset >= data_.size()) co_return ReplyCode::kEndOfFile;
  const std::size_t n =
      std::min({out.size(), static_cast<std::size_t>(block_bytes_),
                data_.size() - offset});
  if (n > 0) std::memcpy(out.data(), data_.data() + offset, n);
  co_return n;
}

sim::Co<Result<std::size_t>> BufferInstance::write_block(
    ipc::Process& self, std::uint32_t block,
    std::span<const std::byte> data) {
  if ((flags_ & kInstanceWriteable) == 0) co_return ReplyCode::kNotWriteable;
  const std::size_t offset =
      static_cast<std::size_t>(block) * block_bytes_;
  if (data.size() > block_bytes_) co_return ReplyCode::kBadArgs;
  if (offset + data.size() > data_.size()) {
    data_.resize(offset + data.size());
  }
  if (!data.empty()) {
    std::memcpy(data_.data() + offset, data.data(), data.size());
  }
  on_write(self, offset, data.size());
  co_return data.size();
}

InstanceId InstanceTable::add(std::unique_ptr<InstanceObject> object) {
  // Late reuse: ids advance monotonically, wrapping only at 2^16 and then
  // skipping ids still open.
  InstanceId id = next_id_;
  while (id == 0 || instances_.contains(id)) ++id;
  next_id_ = static_cast<InstanceId>(id + 1);
  instances_[id] = std::move(object);
  return id;
}

std::shared_ptr<InstanceObject> InstanceTable::find(InstanceId id) {
  auto it = instances_.find(id);
  return it != instances_.end() ? it->second : nullptr;
}

bool InstanceTable::release(ipc::Process& self, InstanceId id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return false;
  // Keep the object alive past erase: another team worker may still be
  // suspended inside one of its operations.
  std::shared_ptr<InstanceObject> object = it->second;
  instances_.erase(it);
  object->release(self);
  return true;
}

}  // namespace v::io
