#include "servers/terminal_server.hpp"

#include <cstring>
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

/// An open terminal: reads return the transcript; writes append to it
/// (append-only stream semantics).
class TerminalInstance : public io::InstanceObject {
 public:
  TerminalInstance(TerminalServer& server, std::string name) noexcept
      : server_(server), name_(std::move(name)) {}

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = io::kInstanceReadable | io::kInstanceWriteable |
                 io::kInstanceAppendOnly;
    auto it = server_.terminals_.find(name_);
    info.size_bytes =
        it != server_.terminals_.end()
            ? static_cast<std::uint32_t>(it->second.transcript.size())
            : 0;
    return info;
  }

  sim::Co<Result<std::size_t>> read_block(ipc::Process& /*self*/,
                                          std::uint32_t block,
                                          std::span<std::byte> out) override {
    auto it = server_.terminals_.find(name_);
    if (it == server_.terminals_.end()) co_return ReplyCode::kBadState;
    const auto& data = it->second.transcript;
    const std::size_t offset = static_cast<std::size_t>(block) * 512;
    if (offset >= data.size()) co_return ReplyCode::kEndOfFile;
    const std::size_t n =
        std::min({out.size(), std::size_t{512}, data.size() - offset});
    std::memcpy(out.data(), data.data() + offset, n);
    co_return n;
  }

  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t /*block*/,
      std::span<const std::byte> data) override {
    auto it = server_.terminals_.find(name_);
    if (it == server_.terminals_.end()) co_return ReplyCode::kBadState;
    // Streams append regardless of the block number.
    it->second.transcript.insert(it->second.transcript.end(), data.begin(),
                                 data.end());
    server_.metric_inc(self, "chars_written", data.size());
    co_return data.size();
  }

 private:
  TerminalServer& server_;
  std::string name_;
};

TerminalServer::TerminalServer(bool register_service,
                               naming::TeamConfig team)
    : CsnhServer(team), register_service_(register_service) {}

Result<std::string> TerminalServer::transcript(std::string_view name) const {
  auto it = terminals_.find(name);
  if (it == terminals_.end()) return ReplyCode::kNotFound;
  const auto& data = it->second.transcript;
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

sim::Co<void> TerminalServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kTerminalServer, self.pid(),
                 ipc::Scope::kLocal);
  }
  co_return;
}

sim::Co<naming::CsnhServer::LookupResult> TerminalServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = terminals_.find(component);
  if (it == terminals_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor TerminalServer::describe_terminal(
    const std::string& name, const Terminal& t) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kTerminal;
  desc.flags = naming::kReadable | naming::kWriteable | naming::kAppendOnly;
  desc.size = static_cast<std::uint32_t>(t.transcript.size());
  desc.object_id = t.id;
  desc.mtime = t.created;
  desc.owner = t.owner;
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> TerminalServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(terminals_.size());
    co_return desc;
  }
  auto it = terminals_.find(leaf);
  if (it == terminals_.end()) co_return ReplyCode::kNotFound;
  co_return describe_terminal(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> TerminalServer::create_object(ipc::Process& self,
                                                 naming::ContextId ctx,
                                                 std::string_view leaf,
                                                 std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  if (terminals_.contains(leaf)) co_return ReplyCode::kNameExists;
  Terminal t;
  t.id = next_id_++;
  t.created = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  terminals_.emplace(std::string(leaf), std::move(t));
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> TerminalServer::remove(ipc::Process& self,
                                          naming::ContextId ctx,
                                          std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = terminals_.find(leaf);
  if (it == terminals_.end()) co_return ReplyCode::kNotFound;
  terminals_.erase(it);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>>
TerminalServer::open_object(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf, std::uint16_t mode) {
  if (!terminals_.contains(leaf)) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<TerminalInstance>(*this, std::string(leaf)));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
TerminalServer::list_context(ipc::Process& /*self*/,
                             naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(terminals_.size());
  for (const auto& [name, t] : terminals_) {
    records.push_back(describe_terminal(name, t));
  }
  co_return records;
}

Result<std::string> TerminalServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("terminals");
}

}  // namespace v::servers
