#include "servers/team_server.hpp"

#include "msg/request_codes.hpp"
#include "naming/parse.hpp"
#include "naming/protocol.hpp"
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

TeamServer::TeamServer(naming::ContextPair default_context,
                       bool register_service, naming::TeamConfig team)
    : CsnhServer(team),
      default_context_(default_context),
      register_service_(register_service) {}

sim::Co<void> TeamServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kTeamServer, self.pid(), ipc::Scope::kLocal);
  }
  co_return;
}

V_BORROWS_SPAN
sim::Co<Result<std::uint16_t>> TeamServer::load_program(
    ipc::Process self, ipc::ProcessId team, std::string_view name) {
  co_await self.compute(self.params().send_build);
  msg::Message request;
  request.set_code(msg::RequestCode::kLoadProgram);
  request.set_u16(kOffLoadNameLength, static_cast<std::uint16_t>(name.size()));
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(name.data(), name.size()));
  const auto reply = co_await self.send(request, team, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return static_cast<std::uint16_t>(reply.u16(kOffLoadProgramId));
}

sim::Co<msg::Message> TeamServer::handle_custom(ipc::Process& self,
                                                ipc::Envelope& env) {
  if (env.request.code() == msg::RequestCode::kLoadProgram) {
    co_return co_await do_load(self, env);
  }
  co_return msg::make_reply(ReplyCode::kIllegalRequest);
}

sim::Co<msg::Message> TeamServer::do_load(ipc::Process& self,
                                          ipc::Envelope& env) {
  const std::uint16_t name_len = env.request.u16(kOffLoadNameLength);
  if (name_len == 0 || name_len > naming::kMaxNameLength) {
    co_return msg::make_reply(ReplyCode::kBadArgs);
  }
  std::string name(name_len, '\0');
  auto fetched = co_await self.move_from(
      env, std::as_writable_bytes(std::span(name)), 0);
  if (!fetched.ok()) co_return msg::make_reply(fetched.code());

  if (!rt_) rt_ = co_await svc::Rt::attach(self, default_context_);

  // Act as a client of the storage servers: open the image and pull it
  // with one bulk MoveTo (the diskless-workstation program-load path).
  auto opened = co_await rt_->open(name, naming::wire::kOpenRead);
  if (!opened.ok()) co_return msg::make_reply(opened.code());
  svc::File image = opened.take();
  auto bytes = co_await image.read_bulk();
  const ReplyCode closed = co_await image.close();
  if (!bytes.ok()) co_return msg::make_reply(bytes.code());
  if (!v::ok(closed)) co_return msg::make_reply(closed);

  Program program;
  program.id = next_id_++;
  program.image_name = name;
  program.bytes = static_cast<std::uint32_t>(bytes.value().size());
  program.started = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  // Instance name: "<leaf>.<id>" so repeated loads coexist.
  std::string leaf = name;
  if (const auto slash = leaf.rfind('/'); slash != std::string::npos) {
    leaf = leaf.substr(slash + 1);
  }
  if (const auto bracket = leaf.rfind(naming::kPrefixClose);
      bracket != std::string::npos) {
    leaf = leaf.substr(bracket + 1);
  }
  const std::string instance_name =
      leaf + "." + std::to_string(program.id);
  msg::Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(kOffLoadProgramId, program.id);
  reply.set_u32(kOffLoadBytes, program.bytes);
  metric_inc(self, "programs_loaded");
  metric_hist(self, "load_bytes", static_cast<double>(program.bytes));
  {
    chk::AccessGuard guard(self, programs_cell_,
                           chk::AccessGuard::Mode::kWrite);
    programs_.emplace(instance_name, program);
  }
  co_return reply;
}

sim::Co<naming::CsnhServer::LookupResult> TeamServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = programs_.find(component);
  if (it == programs_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor TeamServer::describe_program(const std::string& name,
                                                      const Program& p) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kProcess;
  desc.size = p.bytes;
  desc.object_id = p.id;
  desc.mtime = p.started;
  desc.owner = "team";
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> TeamServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(programs_.size());
    co_return desc;
  }
  auto it = programs_.find(leaf);
  if (it == programs_.end()) co_return ReplyCode::kNotFound;
  co_return describe_program(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> TeamServer::remove(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = programs_.find(leaf);
  if (it == programs_.end()) co_return ReplyCode::kNotFound;
  programs_.erase(it);  // "kill"
  co_return ReplyCode::kOk;
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
TeamServer::list_context(ipc::Process& /*self*/, naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(programs_.size());
  for (const auto& [name, p] : programs_) {
    records.push_back(describe_program(name, p));
  }
  co_return records;
}

Result<std::string> TeamServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("programs");
}

}  // namespace v::servers
