#include "servers/time_server.hpp"

#include "msg/request_codes.hpp"

namespace v::servers {

sim::Co<void> time_server(ipc::Process self) {
  self.set_pid(ipc::ServiceId::kTimeServer, self.pid(), ipc::Scope::kBoth);
  for (;;) {
    auto env = co_await self.receive();
    if (env.request.code() != msg::RequestCode::kGetTime) {
      self.reply(msg::make_reply(ReplyCode::kIllegalRequest), env.sender);
      continue;
    }
    msg::Message reply = msg::make_reply(ReplyCode::kOk);
    reply.set_u32(kOffTimeSeconds,
                  static_cast<std::uint32_t>(self.now() / sim::kSecond));
#if V_TRACE_ENABLED
    // Not a CsnhServer, so no metric_inc helper: count directly.
    self.domain().metrics().counter("timeserver", "queries").inc();
#endif
    self.reply(reply, env.sender);
  }
}

sim::Co<Result<std::uint32_t>> get_time(ipc::Process self) {
  const auto server =
      co_await self.get_pid(ipc::ServiceId::kTimeServer, ipc::Scope::kBoth);
  if (!server.valid()) co_return ReplyCode::kNoReply;
  msg::Message request;
  request.set_code(msg::RequestCode::kGetTime);
  const auto reply = co_await self.send(request, server);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return reply.u32(kOffTimeSeconds);
}

}  // namespace v::servers
