// The pipe server — "pipes" are on the paper's own list of things the V
// I/O protocol connects programs to (section 3.2).
//
// A pipe is a named byte queue between producers and consumers.  Opens with
// kOpenWrite are producer ends; kOpenRead opens are consumer ends.  Reads
// on an empty pipe BLOCK — implemented with the message-passing idiom the
// V kernel makes natural: the server simply holds the reader's (still
// blocked) request envelope and replies when data (or end-of-file) arrives.
// No thread ever waits; the blocked state is the un-replied Send.
//
// End-of-file: when the last writer instance is released, queued and
// future reads drain the remaining bytes and then return kEndOfFile.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "naming/csnh_server.hpp"

namespace v::servers {

class PipeServer : public naming::CsnhServer {
 public:
  explicit PipeServer(std::size_t capacity_bytes = 64 * 1024,
                      naming::TeamConfig team = {});

  [[nodiscard]] std::size_t pipe_count() const noexcept {
    return pipes_.size();
  }
  /// Bytes currently buffered in a pipe (test inspection).
  [[nodiscard]] Result<std::size_t> buffered(std::string_view pipe) const;

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  sim::Co<std::optional<msg::Message>> handle_instance_op(
      ipc::Process& self, ipc::Envelope& env) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  friend class PipeEndInstance;

  struct Pipe {
    std::uint32_t id = 0;
    std::deque<std::byte> buffer;
    int writer_ends = 0;  ///< open writer instances
    int reader_ends = 0;
    bool had_writer = false;  ///< EOF needs a writer to have come AND gone;
                              ///< before the first writer, readers block
                              ///< (FIFO-open semantics)
    std::deque<ipc::Envelope> blocked_readers;  ///< un-replied reads
    std::uint32_t created = 0;
    int in_service = 0;  ///< operations suspended while holding a Pipe&
                         ///< (team workers run concurrently); remove()
                         ///< refuses while non-zero
  };

  naming::ObjectDescriptor describe_pipe(const std::string& name,
                                         const Pipe& pipe) const;
  /// Answer one blocked/incoming read from the pipe's buffer (or EOF).
  sim::Co<void> serve_read(ipc::Process& self, const ipc::Envelope& env,
                           Pipe& pipe);
  /// After a write or writer-close: wake blocked readers that can progress.
  sim::Co<void> drain_blocked(ipc::Process& self, Pipe& pipe);

  std::size_t capacity_bytes_;
  std::map<std::string, Pipe, std::less<>> pipes_;
  std::uint32_t next_id_ = 1;
  /// Pipe buffers are mutated by concurrently suspended team workers; every
  /// mutation must be momentary (claim-then-suspend), which the race
  /// detector enforces through this cell.
  chk::CellState pipe_buffers_cell_{"pipe.buffers"};
};

}  // namespace v::servers
