// The mail server — the paper's extensibility case (sections 1, 2.2):
// "names for mailboxes, such as 'cheriton@su-score.ARPA', may be imposed by
// standards established outside of the system in question.  Such
// preexisting servers fit well into a model in which names are normally
// interpreted by the server providing the named objects."
//
// The whole mailbox name is ONE component in a flat context — the server
// overrides parse_component to keep the foreign "user@host" syntax intact,
// needing no blessing from any central name authority.  Delivery is a write
// through the I/O protocol; reading a mailbox returns its messages.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

class MailServer : public naming::CsnhServer {
 public:
  explicit MailServer(bool register_service = true,
                      naming::TeamConfig team = {});

  [[nodiscard]] std::size_t mailbox_count() const noexcept {
    return mailboxes_.size();
  }
  [[nodiscard]] Result<std::size_t> message_count(
      std::string_view mailbox) const;

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  /// Foreign syntax: the whole remaining name is one component; '/' has no
  /// meaning in mailbox names.
  std::string_view parse_component(std::string_view name, std::size_t index,
                                   std::size_t& next) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  friend class MailboxInstance;

  struct Mailbox {
    std::uint32_t id = 0;
    std::vector<std::string> messages;
    std::uint32_t created = 0;
    [[nodiscard]] std::size_t total_bytes() const {
      std::size_t n = 0;
      for (const auto& m : messages) n += m.size() + 1;  // '\n' separators
      return n;
    }
  };

  /// Mailbox names must look like "user@host[.domain]".
  static bool valid_mailbox_name(std::string_view name);

  naming::ObjectDescriptor describe_mailbox(const std::string& name,
                                            const Mailbox& box) const;

  bool register_service_;
  std::map<std::string, Mailbox, std::less<>> mailboxes_;
  std::uint32_t next_id_ = 1;
};

}  // namespace v::servers
