// The printer (spooler) server — the "laser printer server" of section 6.
//
// Print jobs are created by name, filled through the I/O protocol, and
// listed in the context directory with type kPrintJob.  A job's status
// (queued / printing / done) is derived from submission time and the
// simulated print rate, so queries observe progress without a background
// process.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

class PrinterServer : public naming::CsnhServer {
 public:
  /// `bytes_per_second` models printer throughput for status derivation.
  explicit PrinterServer(std::uint32_t bytes_per_second = 1000,
                         bool register_service = true,
                         naming::TeamConfig team = {});

  enum class JobStatus { kQueued, kPrinting, kDone };

  [[nodiscard]] std::size_t job_count() const noexcept {
    return jobs_.size();
  }
  /// Derived status of a job at simulated time `now`.
  [[nodiscard]] Result<JobStatus> status(std::string_view job,
                                         sim::SimTime now) const;

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  friend class PrintJobInstance;

  struct Job {
    std::uint32_t id = 0;
    std::vector<std::byte> data;
    std::string owner = "user";
    sim::SimTime submitted = 0;     ///< last write time
    sim::SimTime print_start = 0;   ///< when the printer reached this job
  };

  [[nodiscard]] JobStatus derive_status(const Job& job,
                                        sim::SimTime now) const;
  naming::ObjectDescriptor describe_job(const std::string& name,
                                        const Job& job,
                                        sim::SimTime now) const;
  void schedule_job(Job& job, sim::SimTime now);

  std::uint32_t bytes_per_second_;
  bool register_service_;
  std::map<std::string, Job, std::less<>> jobs_;
  std::uint32_t next_id_ = 1;
  sim::SimTime printer_free_at_ = 0;  ///< when the (single) engine frees up
};

}  // namespace v::servers
