#include "servers/exception_server.hpp"

#include <cstring>

#include "msg/request_codes.hpp"
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

ExceptionServer::ExceptionServer(bool register_service,
                                 naming::TeamConfig team)
    : CsnhServer(team), register_service_(register_service) {}

V_BORROWS_SPAN
sim::Co<Result<std::uint16_t>> ExceptionServer::raise(
    ipc::Process self, ipc::ProcessId server, FaultCode code,
    std::string_view detail) {
  co_await self.compute(self.params().send_build);
  msg::Message request;
  request.set_code(kRaiseException);
  request.set_u16(kOffExcCode, static_cast<std::uint16_t>(code));
  request.set_u16(kOffExcDetailLen,
                  static_cast<std::uint16_t>(detail.size()));
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(detail.data(), detail.size()));
  const auto reply = co_await self.send(request, server, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return static_cast<std::uint16_t>(reply.u16(kOffExcReportId));
}

sim::Co<void> ExceptionServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kExceptionServer, self.pid(),
                 ipc::Scope::kLocal);
  }
  co_return;
}

V_BORROWS_SPAN
sim::Co<msg::Message> ExceptionServer::handle_custom(ipc::Process& self,
                                                     ipc::Envelope& env) {
  if (env.request.code() != kRaiseException) {
    co_return msg::make_reply(ReplyCode::kIllegalRequest);
  }
  const std::uint16_t detail_len = env.request.u16(kOffExcDetailLen);
  if (detail_len > 512) co_return msg::make_reply(ReplyCode::kBadArgs);
  std::string detail(detail_len, '\0');
  if (detail_len > 0) {
    auto fetched = co_await self.move_from(
        env, std::as_writable_bytes(std::span(detail)), 0);
    if (!fetched.ok()) co_return msg::make_reply(fetched.code());
  }
  Report report;
  report.id = next_id_++;
  report.faulting = env.sender;
  report.code = static_cast<FaultCode>(env.request.u16(kOffExcCode));
  report.detail = std::move(detail);
  report.raised = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  const std::string name = "exc." + std::to_string(report.id);
  msg::Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(kOffExcReportId, report.id);
  {
    chk::AccessGuard guard(self, reports_cell_,
                           chk::AccessGuard::Mode::kWrite);
    reports_.emplace(name, std::move(report));
  }
  metric_inc(self, "exceptions_raised");
  co_return reply;
}

sim::Co<naming::CsnhServer::LookupResult> ExceptionServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = reports_.find(component);
  if (it == reports_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor ExceptionServer::describe_report(
    const std::string& name, const Report& r) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kDevice;  // report record tag
  desc.flags = naming::kReadable;
  desc.size = static_cast<std::uint32_t>(r.detail.size());
  desc.object_id =
      (static_cast<std::uint32_t>(r.id) << 16) |
      static_cast<std::uint32_t>(r.code);
  desc.server_pid = r.faulting.raw;  // which process faulted
  desc.mtime = r.raised;
  desc.owner = "exception";
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> ExceptionServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(reports_.size());
    co_return desc;
  }
  auto it = reports_.find(leaf);
  if (it == reports_.end()) co_return ReplyCode::kNotFound;
  co_return describe_report(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> ExceptionServer::remove(ipc::Process& self,
                                           naming::ContextId ctx,
                                           std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = reports_.find(leaf);
  if (it == reports_.end()) co_return ReplyCode::kNotFound;
  reports_.erase(it);  // dismissed
  co_return ReplyCode::kOk;
}

sim::Co<Result<std::unique_ptr<io::InstanceObject>>>
ExceptionServer::open_object(ipc::Process& /*self*/,
                             naming::ContextId /*ctx*/,
                             std::string_view leaf, std::uint16_t /*mode*/) {
  auto it = reports_.find(leaf);
  if (it == reports_.end()) co_return ReplyCode::kNotFound;
  std::vector<std::byte> text(it->second.detail.size());
  if (!text.empty()) {
    std::memcpy(text.data(), it->second.detail.data(), text.size());
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<io::BufferInstance>(std::move(text)));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
ExceptionServer::list_context(ipc::Process& /*self*/,
                              naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(reports_.size());
  for (const auto& [name, r] : reports_) {
    records.push_back(describe_report(name, r));
  }
  co_return records;
}

Result<std::string> ExceptionServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("exceptions");
}

}  // namespace v::servers
