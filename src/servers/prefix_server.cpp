#include "servers/prefix_server.hpp"

#include <utility>

#include "naming/parse.hpp"
#include "common/annotate.hpp"

namespace v::servers {

using naming::ContextPair;
using naming::DescriptorType;
using naming::ObjectDescriptor;

ContextPrefixServer::ContextPrefixServer(std::string user,
                                         bool register_service,
                                         naming::TeamConfig team)
    : CsnhServer(team),
      user_(std::move(user)),
      register_service_(register_service) {}

void ContextPrefixServer::define(std::string prefix, Entry entry) {
  table_[std::move(prefix)] = entry;
}

std::size_t ContextPrefixServer::table_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [name, entry] : table_) {
    bytes += name.size() + sizeof(entry) + 2 * sizeof(void*);
  }
  return bytes;
}

sim::Co<void> ContextPrefixServer::on_start(ipc::Process& self) {
  if (register_service_) {
    // Per-user: visible only on this workstation.
    self.set_pid(ipc::ServiceId::kContextPrefixServer, self.pid(),
                 ipc::Scope::kLocal);
  }
  co_return;
}

std::string_view ContextPrefixServer::parse_component(std::string_view name,
                                                      std::size_t index,
                                                      std::size_t& next) {
  if (index < name.size() && name[index] == naming::kPrefixOpen) {
    std::size_t rest = 0;
    if (auto prefix = naming::parse_prefix(name.substr(index), rest)) {
      next = index + rest;
      return *prefix;
    }
  }
  return naming::next_component(name, index, next);
}

sim::SimDuration ContextPrefixServer::parse_cost(ipc::Process& self,
                                                 std::string_view /*name*/) {
  return self.params().prefix_processing;
}

sim::Co<naming::CsnhServer::LookupResult> ContextPrefixServer::lookup(
    ipc::Process& self, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = table_.find(component);
  metric_inc(self, it != table_.end() ? "prefix_hits" : "prefix_misses");
  if (it == table_.end()) co_return LookupResult::missing();
  const Entry& entry = it->second;
  if (entry.group != 0) {
    // Section 7: the context is implemented by a group of servers.
    co_return LookupResult::group_ctx(entry.group, entry.logical_context);
  }
  if (!entry.logical) {
    // V-fault rebinding: an ordinary entry pins a concrete pid.  When that
    // server has died, forwarding there would only earn the client a
    // kNoReply — multicast a recovery probe to the rebind group instead,
    // and let the surviving/restarted member that now implements the
    // context answer.  (Logical entries need none of this: GetPid at each
    // use already rebinds them.)
    if (rebind_group_ != 0 &&
        !self.domain().process_alive(entry.target.server)) {
      metric_inc(self, "rebind_probes");
      co_return LookupResult::group_probe(rebind_group_,
                                          entry.target.context);
    }
    co_return LookupResult::remote_ctx(entry.target);
  }
  // Logical entry: bind service -> server at time of use.
  const auto server = co_await self.get_pid(entry.service, ipc::Scope::kBoth);
  if (!server.valid()) co_return LookupResult::missing();
  co_return LookupResult::remote_ctx(
      ContextPair{server, entry.logical_context});
}

V_GATED_MUTATION
sim::Co<ReplyCode> ContextPrefixServer::add_context_name(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
    naming::ContextPair target, ipc::ServiceId logical_service,
    ipc::GroupId group) {
  note_name_write(self, ctx, leaf);
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  Entry entry;
  if (group != 0) {
    entry.group = group;
    entry.logical_context = target.context;
  } else if (logical_service != ipc::ServiceId::kNone) {
    entry.logical = true;
    entry.service = logical_service;
    entry.logical_context = target.context;
  } else {
    if (!target.valid()) co_return ReplyCode::kBadArgs;
    entry.target = target;
  }
  table_[std::string(leaf)] = entry;  // redefinition allowed
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> ContextPrefixServer::delete_context_name(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = table_.find(leaf);
  if (it == table_.end()) co_return ReplyCode::kNotFound;
  table_.erase(it);
  co_return ReplyCode::kOk;
}

naming::ObjectDescriptor ContextPrefixServer::describe_entry(
    const std::string& name, const Entry& entry) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kPrefix;
  desc.name = name;
  desc.owner = user_;
  if (entry.group != 0) {
    desc.flags = naming::kGrouped;
    desc.object_id = entry.group;
    desc.context_id = entry.logical_context;
  } else if (entry.logical) {
    desc.flags = naming::kLogical;
    desc.object_id = static_cast<std::uint32_t>(entry.service);
    desc.context_id = entry.logical_context;
  } else {
    desc.server_pid = entry.target.server.raw;
    desc.context_id = entry.target.context;
  }
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> ContextPrefixServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.owner = user_;
    desc.size = static_cast<std::uint32_t>(table_.size());
    co_return desc;
  }
  auto it = table_.find(leaf);
  if (it == table_.end()) co_return ReplyCode::kNotFound;
  co_return describe_entry(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> ContextPrefixServer::modify(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
    const naming::ObjectDescriptor& desc) {
  note_name_write(self, ctx, leaf);
  // Context-directory writes can retarget ordinary prefixes; all other
  // fields are fabricated and ignored.
  auto it = table_.find(leaf.empty() ? std::string_view(desc.name) : leaf);
  if (it == table_.end()) co_return ReplyCode::kNotFound;
  if (!it->second.logical && desc.server_pid != 0) {
    it->second.target =
        ContextPair{ipc::ProcessId{desc.server_pid}, desc.context_id};
  }
  co_return ReplyCode::kOk;
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
ContextPrefixServer::list_context(ipc::Process& /*self*/,
                                  naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(table_.size());
  for (const auto& [name, entry] : table_) {
    records.push_back(describe_entry(name, entry));
  }
  co_return records;
}

Result<std::string> ContextPrefixServer::context_to_name(
    naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("[]");  // the (empty) prefix naming this table itself
}

}  // namespace v::servers
