#include "servers/metrics_server.hpp"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>
#include "common/annotate.hpp"

namespace v::servers {

using naming::ContextId;
using naming::ObjectDescriptor;

namespace {

/// Root-context leaf that serves the flight recorder's post-mortem dump
/// (V_TRACE builds only).  Opening it fires an on-demand dump trigger and
/// answers the rendered Chrome trace-event JSON as the file content, so
/// `[metrics]flight-dump` is the paper-idiomatic way to pull a black-box
/// snapshot out of a live installation.
constexpr std::string_view kFlightDumpLeaf = "flight-dump";

}  // namespace

MetricsServer::MetricsServer(std::string server_name, naming::TeamConfig team)
    : CsnhServer(team), name_(std::move(server_name)) {}

sim::Co<void> MetricsServer::on_start(ipc::Process& self) {
  registry_ = &self.domain().metrics();
  co_return;
}

const std::string* MetricsServer::scope_of(ContextId ctx) const {
  if (registry_ == nullptr || ctx < 1) return nullptr;
  const auto& scopes = registry_->scopes();
  if (ctx > scopes.size()) return nullptr;
  return &scopes[ctx - 1];
}

bool MetricsServer::context_valid(ContextId ctx) {
  return ctx == naming::kDefaultContext || scope_of(ctx) != nullptr;
}

sim::Co<naming::CsnhServer::LookupResult> MetricsServer::lookup(
    ipc::Process& /*self*/, ContextId ctx, std::string_view component) {
  if (registry_ == nullptr) co_return LookupResult::missing();
  if (ctx == naming::kDefaultContext) {
#if V_TRACE_ENABLED
    if (component == kFlightDumpLeaf) co_return LookupResult::object();
#endif
    const auto& scopes = registry_->scopes();
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      if (scopes[i] == component) {
        co_return LookupResult::local(static_cast<ContextId>(i + 1));
      }
    }
    co_return LookupResult::missing();
  }
  const std::string* scope = scope_of(ctx);
  if (scope != nullptr && registry_->value_text(*scope, component)) {
    co_return LookupResult::object();
  }
  co_return LookupResult::missing();
}

ObjectDescriptor MetricsServer::describe_metric(
    ContextId ctx, const std::string& name, const std::string& value) const {
  ObjectDescriptor desc;
  desc.type = naming::DescriptorType::kFile;
  desc.flags = naming::kReadable;
  desc.size = static_cast<std::uint32_t>(value.size());
  desc.server_pid = pid().raw;
  desc.context_id = ctx;
  desc.name = name;
  return desc;
}

V_BORROWS_SPAN
sim::Co<Result<ObjectDescriptor>> MetricsServer::describe(
    ipc::Process& self, ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    // The context itself: fall back to the generic context record.
    co_return co_await CsnhServer::describe(self, ctx, leaf);
  }
#if V_TRACE_ENABLED
  if (ctx == naming::kDefaultContext && leaf == kFlightDumpLeaf) {
    // Size 0: the dump is rendered at Open time; a descriptor size would
    // be stale the moment another event is recorded.
    co_return describe_metric(ctx, std::string(leaf), std::string{});
  }
#endif
  const std::string* scope = scope_of(ctx);
  if (scope == nullptr) co_return ReplyCode::kNotFound;
  auto value = registry_->value_text(*scope, leaf);
  if (!value) co_return ReplyCode::kNotFound;
  co_return describe_metric(ctx, std::string(leaf), *value);
}

sim::Co<Result<std::unique_ptr<io::InstanceObject>>> MetricsServer::
    open_object(ipc::Process& self, ContextId ctx, std::string_view leaf,
                std::uint16_t /*mode*/) {
  (void)self;
#if V_TRACE_ENABLED
  if (ctx == naming::kDefaultContext && leaf == kFlightDumpLeaf) {
    // On-demand post-mortem: the Open fires a dump trigger (so the dump
    // records why it exists, and a configured dump path gets the file)
    // and the instance content is the rendered Chrome trace-event JSON.
    auto& dom = self.domain();
    dom.flight().trigger(obs::kDumpOnDemand, dom.now());
    const std::string doc = dom.flight().chrome_json();
    std::vector<std::byte> bytes(doc.size());
    if (!bytes.empty()) std::memcpy(bytes.data(), doc.data(), bytes.size());
    co_return std::make_unique<io::BufferInstance>(std::move(bytes),
                                                   io::kInstanceReadable);
  }
#endif
  const std::string* scope = scope_of(ctx);
  if (scope == nullptr) co_return ReplyCode::kNotFound;
  const auto value = registry_->value_text(*scope, leaf);
  if (!value) co_return ReplyCode::kNotFound;
  // Snapshot-at-open semantics: the instance holds the value as of the
  // Open, exactly like a context directory holds its fabrication snapshot.
  std::vector<std::byte> bytes(value->size());
  if (!bytes.empty()) std::memcpy(bytes.data(), value->data(), bytes.size());
  co_return std::make_unique<io::BufferInstance>(std::move(bytes),
                                                 io::kInstanceReadable);
}

sim::Co<Result<std::vector<ObjectDescriptor>>> MetricsServer::list_context(
    ipc::Process& /*self*/, ContextId ctx) {
  std::vector<ObjectDescriptor> entries;
  if (registry_ == nullptr) co_return entries;
  if (ctx == naming::kDefaultContext) {
    const auto& scopes = registry_->scopes();
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      ObjectDescriptor desc;
      desc.type = naming::DescriptorType::kContext;
      desc.flags = naming::kReadable;
      desc.server_pid = pid().raw;
      desc.context_id = static_cast<ContextId>(i + 1);
      desc.name = scopes[i];
      entries.push_back(std::move(desc));
    }
#if V_TRACE_ENABLED
    entries.push_back(
        describe_metric(ctx, std::string(kFlightDumpLeaf), std::string{}));
#endif
    co_return entries;
  }
  const std::string* scope = scope_of(ctx);
  if (scope == nullptr) co_return ReplyCode::kInvalidContext;
  for (const auto& metric : registry_->names(*scope)) {
    auto value = registry_->value_text(*scope, metric);
    entries.push_back(describe_metric(ctx, metric, value.value_or("")));
  }
  co_return entries;
}

Result<std::string> MetricsServer::context_to_name(ContextId ctx) {
  if (ctx == naming::kDefaultContext) return std::string{};
  const std::string* scope = scope_of(ctx);
  if (scope == nullptr) return ReplyCode::kInvalidContext;
  return *scope;
}

}  // namespace v::servers
