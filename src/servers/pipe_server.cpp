#include "servers/pipe_server.hpp"

#include <algorithm>
#include <cstring>

#include "msg/request_codes.hpp"
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

namespace {

/// Marks a Pipe as "in service" for the duration of a scope that suspends
/// while holding a Pipe&.  remove() refuses to erase a pipe whose counter
/// is non-zero, so the reference can never dangle even with a worker team.
class ServiceScope {
 public:
  explicit ServiceScope(int& count) noexcept : count_(count) { ++count_; }
  ~ServiceScope() { --count_; }
  ServiceScope(const ServiceScope&) = delete;
  ServiceScope& operator=(const ServiceScope&) = delete;

 private:
  int& count_;
};

}  // namespace

/// One open end of a pipe.  The instance's role in the table is only
/// bookkeeping (naming the temporary object, counting ends); the actual
/// read/write paths are intercepted in PipeServer::handle_instance_op so
/// reads can defer their reply.
class PipeEndInstance : public io::InstanceObject {
 public:
  PipeEndInstance(PipeServer& server, std::string pipe,
                  bool writer) noexcept
      : server_(server), pipe_(std::move(pipe)), writer_(writer) {}

  [[nodiscard]] const std::string& pipe() const noexcept { return pipe_; }
  [[nodiscard]] bool writer() const noexcept { return writer_; }

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = writer_ ? io::kInstanceWriteable : io::kInstanceReadable;
    auto it = server_.pipes_.find(pipe_);
    info.size_bytes =
        it != server_.pipes_.end()
            ? static_cast<std::uint32_t>(it->second.buffer.size())
            : 0;
    return info;
  }

  // Never reached: PipeServer::handle_instance_op intercepts reads/writes.
  sim::Co<Result<std::size_t>> read_block(ipc::Process&, std::uint32_t,
                                          std::span<std::byte>) override {
    co_return ReplyCode::kBadState;
  }
  sim::Co<Result<std::size_t>> write_block(
      ipc::Process&, std::uint32_t, std::span<const std::byte>) override {
    co_return ReplyCode::kBadState;
  }

  void release(ipc::Process& /*self*/) override {
    auto it = server_.pipes_.find(pipe_);
    if (it == server_.pipes_.end()) return;
    if (writer_) {
      --it->second.writer_ends;
    } else {
      --it->second.reader_ends;
    }
  }

 private:
  PipeServer& server_;
  std::string pipe_;
  bool writer_;
};

PipeServer::PipeServer(std::size_t capacity_bytes, naming::TeamConfig team)
    : CsnhServer(team), capacity_bytes_(capacity_bytes) {}

Result<std::size_t> PipeServer::buffered(std::string_view pipe) const {
  auto it = pipes_.find(pipe);
  if (it == pipes_.end()) return ReplyCode::kNotFound;
  return it->second.buffer.size();
}

sim::Co<void> PipeServer::on_start(ipc::Process& /*self*/) { co_return; }

sim::Co<naming::CsnhServer::LookupResult> PipeServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = pipes_.find(component);
  if (it == pipes_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor PipeServer::describe_pipe(const std::string& name,
                                                   const Pipe& pipe) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kDevice;
  desc.flags = naming::kReadable | naming::kWriteable;
  desc.size = static_cast<std::uint32_t>(pipe.buffer.size());
  desc.object_id = pipe.id;
  desc.context_id =
      (static_cast<std::uint32_t>(pipe.writer_ends) << 16) |
      static_cast<std::uint32_t>(pipe.reader_ends);
  desc.mtime = pipe.created;
  desc.owner = "pipe";
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> PipeServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(pipes_.size());
    co_return desc;
  }
  auto it = pipes_.find(leaf);
  if (it == pipes_.end()) co_return ReplyCode::kNotFound;
  co_return describe_pipe(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> PipeServer::create_object(ipc::Process& self,
                                             naming::ContextId ctx,
                                             std::string_view leaf,
                                             std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  if (pipes_.contains(leaf)) co_return ReplyCode::kNameExists;
  Pipe pipe;
  pipe.id = next_id_++;
  pipe.created = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  pipes_.emplace(std::string(leaf), std::move(pipe));
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> PipeServer::remove(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = pipes_.find(leaf);
  if (it == pipes_.end()) co_return ReplyCode::kNotFound;
  if (it->second.writer_ends > 0 || it->second.reader_ends > 0 ||
      !it->second.blocked_readers.empty() || it->second.in_service > 0) {
    co_return ReplyCode::kBadState;  // ends still open or mid-transfer
  }
  pipes_.erase(it);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>> PipeServer::open_object(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
    std::uint16_t mode) {
  if (!pipes_.contains(leaf)) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
  }
  const bool writer = (mode & (naming::wire::kOpenWrite |
                               naming::wire::kOpenAppend)) != 0;
  const bool reader = (mode & naming::wire::kOpenRead) != 0;
  if (writer == reader) {
    // A pipe end is either a producer or a consumer, not both/neither.
    co_return ReplyCode::kBadArgs;
  }
  auto& pipe = pipes_.find(leaf)->second;
  if (writer) {
    ++pipe.writer_ends;
    pipe.had_writer = true;
    // A new producer may unblock nothing yet, but readers parked before
    // the first writer must NOT see EOF now; nothing to drain.
  } else {
    ++pipe.reader_ends;
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<PipeEndInstance>(*this, std::string(leaf), writer));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
PipeServer::list_context(ipc::Process& /*self*/, naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(pipes_.size());
  for (const auto& [name, pipe] : pipes_) {
    records.push_back(describe_pipe(name, pipe));
  }
  co_return records;
}

V_BORROWS_SPAN
sim::Co<void> PipeServer::serve_read(ipc::Process& self,
                                     const ipc::Envelope& env, Pipe& pipe) {
  std::uint16_t count = env.request.u16(io::kOffByteCount);
  if (count == 0 || count == io::kBulkRead) count = 512;
  const std::size_t n =
      std::min<std::size_t>(count, pipe.buffer.size());
  if (n == 0) {
    // Only called when EOF is certain (no writers, empty buffer).
    self.reply(msg::make_reply(ReplyCode::kEndOfFile), env.sender);
    co_return;
  }
  // Claim the bytes BEFORE suspending in move_to: with a worker team a
  // second read can be serviced while this one is mid-transfer, and both
  // must ship distinct chunks of the stream.
  ServiceScope busy(pipe.in_service);
  std::vector<std::byte> out;
  {
    chk::AccessGuard guard(self, pipe_buffers_cell_,
                           chk::AccessGuard::Mode::kWrite);
    out.assign(pipe.buffer.begin(),
               pipe.buffer.begin() + static_cast<std::ptrdiff_t>(n));
    pipe.buffer.erase(pipe.buffer.begin(),
                      pipe.buffer.begin() + static_cast<std::ptrdiff_t>(n));
  }
  auto moved = co_await self.move_to(env, out);
  if (!moved.ok()) {
    // Reader vanished mid-transfer: restore the unclaimed bytes at the
    // front so the stream position is preserved for the next reader.
    chk::AccessGuard guard(self, pipe_buffers_cell_,
                           chk::AccessGuard::Mode::kWrite);
    pipe.buffer.insert(pipe.buffer.begin(), out.begin(), out.end());
    co_return;
  }
  msg::Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(io::kOffXferCount, static_cast<std::uint16_t>(n));
  reply.set_u32(io::kOffXferCountLong, static_cast<std::uint32_t>(n));
  self.reply(reply, env.sender);
}

V_BORROWS_SPAN
sim::Co<void> PipeServer::drain_blocked(ipc::Process& self, Pipe& pipe) {
  ServiceScope busy(pipe.in_service);
  while (!pipe.blocked_readers.empty() &&
         (!pipe.buffer.empty() ||
          (pipe.writer_ends == 0 && pipe.had_writer))) {
    ipc::Envelope reader = pipe.blocked_readers.front();
    pipe.blocked_readers.pop_front();
    co_await serve_read(self, reader, pipe);
  }
}

V_BORROWS_SPAN
sim::Co<std::optional<msg::Message>> PipeServer::handle_instance_op(
    ipc::Process& self, ipc::Envelope& env) {
  const auto id =
      static_cast<io::InstanceId>(env.request.u16(io::kOffInstance));
  // `held` keeps the end alive across the co_awaits below even if another
  // team worker releases this instance id concurrently.
  std::shared_ptr<io::InstanceObject> held = instances().find(id);
  auto* end = dynamic_cast<PipeEndInstance*>(held.get());
  if (end == nullptr) {
    co_return co_await CsnhServer::handle_instance_op(self, env);
  }
  auto pipe_it = pipes_.find(end->pipe());
  switch (env.request.code()) {
    case msg::RequestCode::kReadInstance: {
      if (end->writer()) co_return msg::make_reply(ReplyCode::kNotReadable);
      if (pipe_it == pipes_.end()) {
        co_return msg::make_reply(ReplyCode::kBadState);
      }
      Pipe& pipe = pipe_it->second;
      if (pipe.buffer.empty()) {
        if (pipe.writer_ends == 0 && pipe.had_writer) {
          co_return msg::make_reply(ReplyCode::kEndOfFile);
        }
        // Block: keep the envelope, reply when data or EOF arrives.
        pipe.blocked_readers.push_back(env);
        metric_inc(self, "blocked_reads");
        co_return std::nullopt;
      }
      co_await serve_read(self, env, pipe);
      co_return std::nullopt;  // serve_read already replied
    }
    case msg::RequestCode::kWriteInstance: {
      if (!end->writer()) co_return msg::make_reply(ReplyCode::kNotWriteable);
      if (pipe_it == pipes_.end()) {
        co_return msg::make_reply(ReplyCode::kBadState);
      }
      Pipe& pipe = pipe_it->second;
      const std::uint16_t count = env.request.u16(io::kOffByteCount);
      if (count == 0) co_return msg::make_reply(ReplyCode::kBadArgs);
      if (pipe.buffer.size() + count > capacity_bytes_) {
        co_return msg::make_reply(ReplyCode::kNoServerResources);
      }
      std::vector<std::byte> data(count);
      {
        ServiceScope busy(pipe.in_service);
        auto fetched = co_await self.move_from(env, data, 0);
        if (!fetched.ok()) co_return msg::make_reply(fetched.code());
      }
      if (pipe.buffer.size() + count > capacity_bytes_) {
        // A concurrent writer filled the pipe while we were fetching.
        co_return msg::make_reply(ReplyCode::kNoServerResources);
      }
      {
        chk::AccessGuard guard(self, pipe_buffers_cell_,
                               chk::AccessGuard::Mode::kWrite);
        pipe.buffer.insert(pipe.buffer.end(), data.begin(), data.end());
      }
      msg::Message reply = msg::make_reply(ReplyCode::kOk);
      reply.set_u16(io::kOffXferCount, count);
      self.reply(reply, env.sender);
      co_await drain_blocked(self, pipe);
      co_return std::nullopt;  // replied above
    }
    case msg::RequestCode::kReleaseInstance: {
      const bool was_writer = end->writer();
      const bool released = instances().release(self, id);
      if (released && was_writer && pipe_it != pipes_.end() &&
          pipe_it->second.writer_ends == 0) {
        // Last producer gone: wake blocked readers (drain then EOF).
        co_await drain_blocked(self, pipe_it->second);
      }
      co_return msg::make_reply(released ? ReplyCode::kOk
                                         : ReplyCode::kInvalidInstance);
    }
    default:
      co_return co_await CsnhServer::handle_instance_op(self, env);
  }
}

Result<std::string> PipeServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("pipes");
}

}  // namespace v::servers
