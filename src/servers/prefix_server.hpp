// The context prefix server (paper sections 5.8, 6).
//
// One per user/workstation.  It gives locally-defined character-string
// names — prefixes, written "[prefix]" — to contexts on servers of
// interest, and forwards any CSname request starting with such a prefix to
// the server implementing that context.  Entries come in two kinds:
//
//   * ordinary: bound to a concrete (server-pid, context-id) pair;
//   * logical: bound to a *service id* plus a (usually well-known) context
//     id; the server performs a GetPid each time the name is used, so the
//     prefix keeps working across server crashes and restarts.
//
// It implements the optional AddContextName/DeleteContextName operations of
// the protocol, and its context directory lists the prefix table (the
// paper's "list directory" works on it like on any other context).
#pragma once

#include <map>
#include <string>

#include "naming/csnh_server.hpp"

namespace v::servers {

class ContextPrefixServer : public naming::CsnhServer {
 public:
  /// `user` labels the per-user instance (descriptor owner field).
  explicit ContextPrefixServer(std::string user = "user",
                               bool register_service = true,
                               naming::TeamConfig team = {});

  /// One prefix table entry: ordinary (pid-bound), logical (service-bound,
  /// GetPid at each use) or group (multicast to a server group, section 7).
  struct Entry {
    bool logical = false;
    naming::ContextPair target;             ///< ordinary entries
    ipc::ServiceId service = ipc::ServiceId::kNone;  ///< logical entries
    naming::ContextId logical_context = naming::kDefaultContext;
    ipc::GroupId group = 0;                 ///< group entries (non-zero)
  };

  /// Pre-run population helper (simulation-time clients use the protocol's
  /// AddContextName operation instead).
  void define(std::string prefix, Entry entry);

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return table_.size();
  }

  /// Approximate resident size of the prefix table in bytes (for the
  /// footprint report mirroring the paper's 4.5 KB code + 2.6 KB data).
  [[nodiscard]] std::size_t table_bytes() const noexcept;

  /// Fallback server group for ordinary entries whose bound server has
  /// DIED (V-fault rebinding): instead of forwarding into a void, the
  /// request is multicast to this group as a recovery probe — the member
  /// now implementing the context answers, everyone else stays silent.
  /// 0 (default) = no fallback; dead-target requests fail as before.
  void set_rebind_group(ipc::GroupId group) noexcept {
    rebind_group_ = group;
  }
  [[nodiscard]] ipc::GroupId rebind_group() const noexcept {
    return rebind_group_;
  }

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  bool context_valid(naming::ContextId ctx) override {
    return ctx == naming::kDefaultContext;
  }
  /// Prefix syntax: "[name]" is one component; plain components fall back
  /// to the standard parsing so the Add/Delete leaf also resolves.
  std::string_view parse_component(std::string_view name, std::size_t index,
                                   std::size_t& next) override;
  /// The paper's measured per-request prefix-server processing time.
  sim::SimDuration parse_cost(ipc::Process& self,
                              std::string_view name) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<ReplyCode> add_context_name(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf,
                                      naming::ContextPair target,
                                      ipc::ServiceId logical_service,
                                      ipc::GroupId group) override;
  sim::Co<ReplyCode> delete_context_name(ipc::Process& self,
                                         naming::ContextId ctx,
                                         std::string_view leaf) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> modify(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf,
                            const naming::ObjectDescriptor& desc) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  naming::ObjectDescriptor describe_entry(const std::string& name,
                                          const Entry& entry) const;

  std::string user_;
  bool register_service_;
  std::map<std::string, Entry, std::less<>> table_;
  ipc::GroupId rebind_group_ = 0;
};

}  // namespace v::servers
