// The metrics server: the domain's metrics registry mounted as a `[metrics]`
// context.
//
// The paper's thesis is that ANY server can join the uniform name space by
// speaking the name-handling protocol; this server makes the point by
// serving the simulation's own instrumentation that way.  Each registry
// scope ("fileserver", "ipc", "loop"...) is a sub-context of the root
// context, and each metric within a scope is a read-only file whose content
// is the current value rendered as one text line — so a client resolves
// "[metrics]fileserver/requests" through the normal CSname path and Reads
// the same number a JSON snapshot reports.  Context directories, pattern
// opens and QueryName all work for free via the CsnhServer base.
//
// With V_TRACE=OFF the registry shell is empty and the server serves an
// empty root context; it still compiles and runs (no v::obs symbols are
// referenced from the query surface).
#pragma once

#include <string>

#include "naming/csnh_server.hpp"
#include "obs/metrics.hpp"

namespace v::servers {

class MetricsServer : public naming::CsnhServer {
 public:
  /// `server_name` labels inverse mappings (GetContextName replies).
  explicit MetricsServer(std::string server_name = "metrics",
                         naming::TeamConfig team = {});

  [[nodiscard]] const std::string& server_name() const noexcept {
    return name_;
  }

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  bool context_valid(naming::ContextId ctx) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  /// Scope name for a sub-context id (1-based index into the registry's
  /// first-registration scope order); nullptr for unknown/root ids.
  [[nodiscard]] const std::string* scope_of(naming::ContextId ctx) const;
  [[nodiscard]] naming::ObjectDescriptor describe_metric(
      naming::ContextId ctx, const std::string& name,
      const std::string& value) const;

  std::string name_;
  const obs::MetricsRegistry* registry_ = nullptr;  ///< set in on_start
};

}  // namespace v::servers
