// The team server (program manager) — section 3.1's program-loading path
// and section 6's "programs in execution" context.
//
// kLoadProgram names a program file (any CSname the workstation's runtime
// can resolve, e.g. "[bin]edit"); the team server opens it and pulls the
// whole image with the bulk-transfer path — one MoveTo, which is how a
// diskless SUN loaded a 64 KB program in 338 ms.  Loaded programs appear as
// kProcess records in the team server's context directory and can be
// queried/removed (killed) through the standard protocol.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "naming/csnh_server.hpp"
#include "svc/runtime.hpp"

namespace v::servers {

// --- kLoadProgram wire layout (non-CSname request: the program name is the
// --- whole read segment; it must not be interpreted against the team
// --- server's own context space).
inline constexpr std::size_t kOffLoadNameLength = 2;  // u16
// Reply:
inline constexpr std::size_t kOffLoadProgramId = 2;   // u16
inline constexpr std::size_t kOffLoadBytes = 4;       // u32 image size

class TeamServer : public naming::CsnhServer {
 public:
  /// `default_context` is the context for program names without a prefix.
  explicit TeamServer(naming::ContextPair default_context,
                      bool register_service = true,
                      naming::TeamConfig team = {});

  [[nodiscard]] std::size_t program_count() const noexcept {
    return programs_.size();
  }

  /// Client helper: ask `team` to load `program_name`.
  /// Returns the new program's id.
  static sim::Co<Result<std::uint16_t>> load_program(ipc::Process self,
                                                     ipc::ProcessId team,
                                                     std::string_view name);

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  sim::Co<msg::Message> handle_custom(ipc::Process& self,
                                      ipc::Envelope& env) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  struct Program {
    std::uint16_t id = 0;
    std::string image_name;  ///< the CSname it was loaded from
    std::uint32_t bytes = 0;
    std::uint32_t started = 0;
  };

  sim::Co<msg::Message> do_load(ipc::Process& self, ipc::Envelope& env);
  naming::ObjectDescriptor describe_program(const std::string& name,
                                            const Program& p) const;

  naming::ContextPair default_context_;
  bool register_service_;
  std::map<std::string, Program, std::less<>> programs_;
  /// do_load mutates programs_ from handle_custom, outside any (ctx,leaf)
  /// gate; annotate the write for the race detector instead.
  chk::CellState programs_cell_{"team.programs"};
  std::uint16_t next_id_ = 1;
  std::optional<svc::Rt> rt_;  ///< lazily attached workstation runtime
};

}  // namespace v::servers
