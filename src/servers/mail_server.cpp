#include "servers/mail_server.hpp"

#include <cstring>
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

/// An open mailbox: reading returns the messages joined by '\n'; each write
/// delivers one message (block semantics are ignored — mail is a stream of
/// deliveries, another legitimate interpretation under the I/O protocol).
class MailboxInstance : public io::InstanceObject {
 public:
  MailboxInstance(MailServer& server, std::string name)
      : server_(server), name_(std::move(name)) {}

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = io::kInstanceReadable | io::kInstanceWriteable |
                 io::kInstanceAppendOnly;
    auto it = server_.mailboxes_.find(name_);
    info.size_bytes =
        it != server_.mailboxes_.end()
            ? static_cast<std::uint32_t>(it->second.total_bytes())
            : 0;
    return info;
  }

  sim::Co<Result<std::size_t>> read_block(ipc::Process& /*self*/,
                                          std::uint32_t block,
                                          std::span<std::byte> out) override {
    auto it = server_.mailboxes_.find(name_);
    if (it == server_.mailboxes_.end()) co_return ReplyCode::kBadState;
    std::string joined;
    joined.reserve(it->second.total_bytes());
    for (const auto& m : it->second.messages) {
      joined += m;
      joined += '\n';
    }
    const std::size_t offset = static_cast<std::size_t>(block) * 512;
    if (offset >= joined.size()) co_return ReplyCode::kEndOfFile;
    const std::size_t n =
        std::min({out.size(), std::size_t{512}, joined.size() - offset});
    std::memcpy(out.data(), joined.data() + offset, n);
    co_return n;
  }

  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t /*block*/,
      std::span<const std::byte> data) override {
    auto it = server_.mailboxes_.find(name_);
    if (it == server_.mailboxes_.end()) co_return ReplyCode::kBadState;
    it->second.messages.emplace_back(
        reinterpret_cast<const char*>(data.data()), data.size());
    server_.metric_inc(self, "deliveries");
    co_return data.size();
  }

 private:
  MailServer& server_;
  std::string name_;
};

MailServer::MailServer(bool register_service, naming::TeamConfig team)
    : CsnhServer(team), register_service_(register_service) {}

Result<std::size_t> MailServer::message_count(std::string_view mailbox) const {
  auto it = mailboxes_.find(mailbox);
  if (it == mailboxes_.end()) return ReplyCode::kNotFound;
  return it->second.messages.size();
}

bool MailServer::valid_mailbox_name(std::string_view name) {
  const auto at = name.find('@');
  return at != std::string_view::npos && at > 0 && at + 1 < name.size() &&
         name.find('@', at + 1) == std::string_view::npos;
}

sim::Co<void> MailServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kMailServer, self.pid(), ipc::Scope::kBoth);
  }
  co_return;
}

std::string_view MailServer::parse_component(std::string_view name,
                                             std::size_t index,
                                             std::size_t& next) {
  next = name.size();
  return name.substr(index);
}

sim::Co<naming::CsnhServer::LookupResult> MailServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = mailboxes_.find(component);
  if (it == mailboxes_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor MailServer::describe_mailbox(
    const std::string& name, const Mailbox& box) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kMailbox;
  desc.flags = naming::kReadable | naming::kWriteable | naming::kAppendOnly;
  desc.size = static_cast<std::uint32_t>(box.total_bytes());
  desc.object_id = box.id;
  desc.context_id = static_cast<std::uint32_t>(box.messages.size());
  desc.mtime = box.created;
  desc.owner = name.substr(0, name.find('@'));
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> MailServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(mailboxes_.size());
    co_return desc;
  }
  auto it = mailboxes_.find(leaf);
  if (it == mailboxes_.end()) co_return ReplyCode::kNotFound;
  co_return describe_mailbox(it->first, it->second);
}

V_GATED_MUTATION
sim::Co<ReplyCode> MailServer::create_object(ipc::Process& self,
                                             naming::ContextId ctx,
                                             std::string_view leaf,
                                             std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  if (!valid_mailbox_name(leaf)) co_return ReplyCode::kBadArgs;
  if (mailboxes_.contains(leaf)) co_return ReplyCode::kNameExists;
  Mailbox box;
  box.id = next_id_++;
  box.created = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  mailboxes_.emplace(std::string(leaf), std::move(box));
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> MailServer::remove(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = mailboxes_.find(leaf);
  if (it == mailboxes_.end()) co_return ReplyCode::kNotFound;
  mailboxes_.erase(it);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>> MailServer::open_object(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
    std::uint16_t mode) {
  if (!mailboxes_.contains(leaf)) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<MailboxInstance>(*this, std::string(leaf)));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
MailServer::list_context(ipc::Process& /*self*/, naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(mailboxes_.size());
  for (const auto& [name, box] : mailboxes_) {
    records.push_back(describe_mailbox(name, box));
  }
  co_return records;
}

Result<std::string> MailServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("mail");
}

}  // namespace v::servers
