// The virtual (graphics) terminal server (paper sections 2.2, 6).
//
// The paper's example of a server providing "a small number of transient
// objects" whose names and attributes live in memory.  Terminals are
// created by name, carry an input/output transcript readable and writeable
// through the V I/O protocol, and appear in the server's context directory
// with type kTerminal — one of the contexts the single "list directory"
// command handles uniformly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

class TerminalServer : public naming::CsnhServer {
 public:
  explicit TerminalServer(bool register_service = true,
                          naming::TeamConfig team = {});

  [[nodiscard]] std::size_t terminal_count() const noexcept {
    return terminals_.size();
  }
  /// Transcript bytes of a terminal (test inspection).
  [[nodiscard]] Result<std::string> transcript(std::string_view name) const;

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  friend class TerminalInstance;

  struct Terminal {
    std::uint32_t id = 0;
    std::vector<std::byte> transcript;
    std::string owner = "user";
    std::uint32_t created = 0;
  };

  naming::ObjectDescriptor describe_terminal(const std::string& name,
                                             const Terminal& t) const;

  bool register_service_;
  std::map<std::string, Terminal, std::less<>> terminals_;
  std::uint32_t next_id_ = 1;
};

}  // namespace v::servers
