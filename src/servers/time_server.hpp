// The time server: the paper's example of a simple service where "the
// client typically translates from service to real server pid on each
// operation" (section 4.2).  Not a CSNH server — it implements no name
// space, which is also allowed: the protocols are opt-in per server.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "ipc/kernel.hpp"
#include "msg/message.hpp"
#include "sim/task.hpp"

namespace v::servers {

/// Reply field: current simulated time in seconds.
inline constexpr std::size_t kOffTimeSeconds = 4;  // u32

/// Process body of a time server.  Registers as ServiceId::kTimeServer with
/// Scope::kBoth and answers kGetTime requests forever.
sim::Co<void> time_server(ipc::Process self);

/// Client helper: resolve the time service (GetPid each call, as simple
/// services do) and fetch the time.  Fails with kNoReply when no time
/// server is registered or reachable.
sim::Co<Result<std::uint32_t>> get_time(ipc::Process self);

}  // namespace v::servers
