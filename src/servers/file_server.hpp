// A V storage server (paper sections 5.8, 6).
//
// Implements a hierarchical file system behind the name-handling protocol:
// every directory is a context (its context id is the directory's i-node
// number), so "the file server software maps context identifiers onto
// directories that act as starting points for interpreting relative
// pathnames".  Directory entries may also be cross-server links — pointers
// to a context on another server (the curved arrow in Figure 4) — which the
// mapping walk follows by forwarding the partially-interpreted request.
//
// Storage is in-memory (the simulation's "disk") with an optional disk
// timing model: page reads cost disk_page (15 ms in the SUN preset) with
// one-page read-ahead, reproducing the paper's sequential-read behaviour
// (~17 ms per 512 B page, section 3.1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

/// Disk timing model for file content access.
enum class DiskModel {
  kMemory,  ///< file data in memory buffers (program-load scenario)
  kDisk,    ///< charge disk_page per page miss, with one-page read-ahead
};

class FileServer : public naming::CsnhServer {
 public:
  /// `server_name` labels inverse mappings; `disk` selects content timing.
  explicit FileServer(std::string server_name,
                      DiskModel disk = DiskModel::kMemory,
                      bool register_service = true,
                      naming::TeamConfig team = {});

  // --- direct (pre-run) population helpers for tests/examples --------------
  // These manipulate the store without protocol cost; simulation-time
  // clients use the protocol instead.

  /// Create all directories along `path` ("usr/mann"); returns the final
  /// directory's context id.
  naming::ContextId mkdirs(std::string_view path);
  /// Create/overwrite a file with `content`; creates parent directories.
  void put_file(std::string_view path, std::string_view content);
  /// Bind a well-known context id (kHomeContext...) to `path`.
  void map_well_known(naming::ContextId well_known, std::string_view path);
  /// Create a cross-server link entry at `path` pointing to `target`
  /// (the curved arrow of Figure 4); creates parent directories.
  void put_link(std::string_view path, naming::ContextPair target);
  /// Context id of an existing directory path ("" = root).
  [[nodiscard]] naming::ContextId context_of(std::string_view path) const;
  /// Raw content of a file (test inspection).
  [[nodiscard]] Result<std::string> read_file(std::string_view path) const;
  /// Number of i-nodes in use.
  [[nodiscard]] std::size_t inode_count() const noexcept {
    return inodes_.size();
  }

  [[nodiscard]] const std::string& server_name() const noexcept {
    return name_;
  }

  /// Join a process group at start-up, making this server one member of a
  /// group-implemented context (paper section 7).  Members of one group
  /// should hold replica content; opens stick to whichever member answered.
  void set_group(ipc::GroupId group) noexcept { group_ = group; }

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  naming::ContextId translate_context(naming::ContextId ctx) override;
  bool context_valid(naming::ContextId ctx) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> modify(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf,
                            const naming::ObjectDescriptor& desc) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<ReplyCode> rename(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf,
                            std::string_view new_leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> make_context(ipc::Process& self, naming::ContextId ctx,
                                  std::string_view leaf) override;
  sim::Co<ReplyCode> link_context(ipc::Process& self, naming::ContextId ctx,
                                  std::string_view leaf,
                                  naming::ContextPair target) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;
  Result<std::string> instance_to_name(io::InstanceId instance) override;

 private:
  friend class FileInstance;

  using InodeId = std::uint32_t;

  struct Inode {
    enum class Kind { kFile, kDirectory, kRemoteLink };
    InodeId id = 0;
    Kind kind = Kind::kFile;
    std::vector<std::byte> data;  // file content
    std::map<std::string, InodeId, std::less<>> entries;  // directories
    naming::ContextPair link_target;                      // remote links
    InodeId parent = 0;
    std::string name_in_parent;
    std::uint16_t flags = naming::kReadable | naming::kWriteable;
    std::string owner = "system";
    std::uint32_t mtime = 0;
  };

  Inode& alloc(Inode::Kind kind, InodeId parent, std::string name);
  /// Advance the generation of `dir`'s context and every directory context
  /// beneath it (a directory rename relocates the whole subtree).  Caller
  /// holds the mutation gate of the rename that justifies the bumps.
  void bump_subtree_generations(ipc::Process& self, const Inode& dir);
  [[nodiscard]] Inode* find_inode(InodeId id);
  [[nodiscard]] const Inode* find_inode(InodeId id) const;
  [[nodiscard]] Inode* child(Inode& dir, std::string_view name);
  naming::ObjectDescriptor describe_inode(const Inode& inode) const;
  [[nodiscard]] std::string path_of(InodeId id) const;
  [[nodiscard]] bool is_ancestor(InodeId maybe_ancestor, InodeId node) const;

  std::string name_;
  DiskModel disk_;
  bool register_service_;
  ipc::GroupId group_ = 0;
  std::map<InodeId, Inode> inodes_;
  std::map<naming::ContextId, InodeId> well_known_;
  InodeId next_inode_ = 1;
  InodeId root_ = 0;
};

}  // namespace v::servers
