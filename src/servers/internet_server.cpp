#include "servers/internet_server.hpp"

#include <cctype>
#include <cstring>
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

/// An open connection: writes go to the simulated peer (which echoes them
/// after the RTT); reads consume the inbound stream.
class ConnectionInstance : public io::InstanceObject {
 public:
  ConnectionInstance(InternetServer& server, std::string name) noexcept
      : server_(server), name_(std::move(name)) {}

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = io::kInstanceReadable | io::kInstanceWriteable;
    auto it = server_.connections_.find(name_);
    info.size_bytes =
        it != server_.connections_.end()
            ? static_cast<std::uint32_t>(it->second.inbound.size())
            : 0;
    return info;
  }

  sim::Co<Result<std::size_t>> read_block(ipc::Process& /*self*/,
                                          std::uint32_t block,
                                          std::span<std::byte> out) override {
    auto it = server_.connections_.find(name_);
    if (it == server_.connections_.end()) co_return ReplyCode::kBadState;
    auto& conn = it->second;
    if (conn.state != InternetServer::ConnState::kOpen) {
      co_return ReplyCode::kBadState;
    }
    const auto& data = conn.inbound;
    const std::size_t offset = static_cast<std::size_t>(block) * 512;
    if (offset >= data.size()) co_return ReplyCode::kEndOfFile;
    const std::size_t n =
        std::min({out.size(), std::size_t{512}, data.size() - offset});
    std::memcpy(out.data(), data.data() + offset, n);
    co_return n;
  }

  V_BORROWS_SPAN
  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t /*block*/,
      std::span<const std::byte> data) override {
    auto it = server_.connections_.find(name_);
    if (it == server_.connections_.end()) co_return ReplyCode::kBadState;
    if (it->second.state != InternetServer::ConnState::kOpen) {
      co_return ReplyCode::kBadState;
    }
    co_await self.delay(server_.rtt_);  // peer round trip
    it = server_.connections_.find(name_);  // revalidate after waiting
    if (it == server_.connections_.end()) co_return ReplyCode::kBadState;
    auto& conn = it->second;
    conn.bytes_sent += data.size();
    conn.inbound.insert(conn.inbound.end(), data.begin(), data.end());
    co_return data.size();
  }

 private:
  InternetServer& server_;
  std::string name_;
};

InternetServer::InternetServer(sim::SimDuration rtt, bool register_service,
                               naming::TeamConfig team)
    : CsnhServer(team), rtt_(rtt), register_service_(register_service) {}

bool InternetServer::valid_endpoint(std::string_view name) {
  const auto colon = name.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= name.size()) {
    return false;
  }
  for (std::size_t i = colon + 1; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return false;
  }
  return true;
}

sim::Co<void> InternetServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kInternetServer, self.pid(),
                 ipc::Scope::kBoth);
  }
  co_return;
}

sim::Co<naming::CsnhServer::LookupResult> InternetServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = connections_.find(component);
  if (it == connections_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor InternetServer::describe_conn(
    const std::string& name, const Connection& c) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kConnection;
  desc.flags = naming::kReadable | naming::kWriteable;
  desc.size = static_cast<std::uint32_t>(c.inbound.size());
  desc.object_id = c.id;
  desc.context_id = static_cast<std::uint32_t>(c.state);
  desc.mtime = c.opened;
  desc.owner = "tcp";
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> InternetServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(connections_.size());
    co_return desc;
  }
  auto it = connections_.find(leaf);
  if (it == connections_.end()) co_return ReplyCode::kNotFound;
  co_return describe_conn(it->first, it->second);
}

V_BORROWS_SPAN
V_GATED_MUTATION
sim::Co<ReplyCode> InternetServer::create_object(ipc::Process& self,
                                                 naming::ContextId ctx,
                                                 std::string_view leaf,
                                                 std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  if (!valid_endpoint(leaf)) co_return ReplyCode::kBadArgs;
  if (connections_.contains(leaf)) co_return ReplyCode::kNameExists;
  // Connection establishment costs one peer round trip.
  co_await self.delay(rtt_);
  if (connections_.contains(leaf)) co_return ReplyCode::kNameExists;
  Connection conn;
  conn.id = next_id_++;
  conn.opened = static_cast<std::uint32_t>(self.now() / sim::kSecond);
  connections_.emplace(std::string(leaf), std::move(conn));
  metric_inc(self, "connections_opened");
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> InternetServer::remove(ipc::Process& self,
                                          naming::ContextId ctx,
                                          std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = connections_.find(leaf);
  if (it == connections_.end()) co_return ReplyCode::kNotFound;
  connections_.erase(it);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>>
InternetServer::open_object(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf, std::uint16_t mode) {
  if (!connections_.contains(leaf)) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<ConnectionInstance>(*this, std::string(leaf)));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
InternetServer::list_context(ipc::Process& /*self*/,
                             naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(connections_.size());
  for (const auto& [name, conn] : connections_) {
    records.push_back(describe_conn(name, conn));
  }
  co_return records;
}

Result<std::string> InternetServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("tcp");
}

}  // namespace v::servers
