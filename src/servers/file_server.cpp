#include "servers/file_server.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "naming/parse.hpp"
#include "common/annotate.hpp"

namespace v::servers {

using naming::ContextId;
using naming::ContextPair;
using naming::DescriptorType;
using naming::ObjectDescriptor;

namespace {
/// Simulated wall-clock seconds for mtime stamps.
std::uint32_t sim_seconds(ipc::Process& self) {
  return static_cast<std::uint32_t>(self.now() / sim::kSecond);
}
}  // namespace

// ---------------------------------------------------------------------------
// FileInstance: an open file with the disk timing model
// ---------------------------------------------------------------------------

class FileInstance : public io::InstanceObject {
 public:
  FileInstance(FileServer& server, FileServer::InodeId inode,
               std::uint16_t flags, DiskModel disk) noexcept
      : server_(server), inode_(inode), flags_(flags), disk_(disk) {}

  [[nodiscard]] FileServer::InodeId inode() const noexcept { return inode_; }

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = flags_;
    info.block_bytes = 512;
    const auto* node = server_.find_inode(inode_);
    info.size_bytes =
        node != nullptr ? static_cast<std::uint32_t>(node->data.size()) : 0;
    return info;
  }

  V_BORROWS_SPAN
  sim::Co<Result<std::size_t>> read_block(ipc::Process& self,
                                          std::uint32_t block,
                                          std::span<std::byte> out) override {
    if ((flags_ & io::kInstanceReadable) == 0) {
      co_return ReplyCode::kNotReadable;
    }
    auto* node = server_.find_inode(inode_);
    if (node == nullptr) co_return ReplyCode::kBadState;  // file deleted
    const std::size_t block_bytes = 512;
    const std::size_t offset = static_cast<std::size_t>(block) * block_bytes;
    if (offset >= node->data.size()) co_return ReplyCode::kEndOfFile;

    if (disk_ == DiskModel::kDisk) {
      // One-page read-ahead: if this is the prefetched page, wait only for
      // the remaining prefetch time; otherwise pay a full page read.
      const sim::SimTime now = self.now();
      if (block == prefetched_block_) {
        if (prefetch_ready_ > now) {
          co_await self.delay(prefetch_ready_ - now);
        }
      } else {
        co_await self.delay(self.params().disk_page);
      }
      // Start prefetching the next page.  The (single-threaded) server
      // only issues the next disk read after it has shipped this page to
      // the client, so the prefetch completes one ship-time plus one disk
      // read after this point — the partial overlap that yields the
      // paper's ~17 ms/page streaming rate over a 15 ms/page disk.
      const auto ship_estimate =
          self.params().move_to_cost(block_bytes, /*local=*/false);
      prefetched_block_ = block + 1;
      prefetch_ready_ =
          self.now() + ship_estimate + self.params().disk_page;
      node = server_.find_inode(inode_);  // revalidate after waiting
      if (node == nullptr) co_return ReplyCode::kBadState;
    }
    const std::size_t n =
        std::min({out.size(), block_bytes, node->data.size() - offset});
    std::memcpy(out.data(), node->data.data() + offset, n);
    server_.metric_inc(self, "bytes_read", n);
    co_return n;
  }

  V_BORROWS_SPAN
  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t block,
      std::span<const std::byte> data) override {
    if ((flags_ & io::kInstanceWriteable) == 0) {
      co_return ReplyCode::kNotWriteable;
    }
    auto* node = server_.find_inode(inode_);
    if (node == nullptr) co_return ReplyCode::kBadState;
    const std::size_t block_bytes = 512;
    if (data.size() > block_bytes) co_return ReplyCode::kBadArgs;
    if (disk_ == DiskModel::kDisk) {
      co_await self.delay(self.params().disk_page);
      node = server_.find_inode(inode_);
      if (node == nullptr) co_return ReplyCode::kBadState;
    }
    const std::size_t offset = static_cast<std::size_t>(block) * block_bytes;
    if (offset + data.size() > node->data.size()) {
      node->data.resize(offset + data.size());
    }
    if (!data.empty()) {
      std::memcpy(node->data.data() + offset, data.data(), data.size());
    }
    node->mtime = sim_seconds(self);
    server_.metric_inc(self, "bytes_written", data.size());
    co_return data.size();
  }

 private:
  FileServer& server_;
  FileServer::InodeId inode_;
  std::uint16_t flags_;
  DiskModel disk_;
  std::uint32_t prefetched_block_ = 0xffffffff;
  sim::SimTime prefetch_ready_ = 0;
};

// ---------------------------------------------------------------------------
// Store management
// ---------------------------------------------------------------------------

FileServer::FileServer(std::string server_name, DiskModel disk,
                       bool register_service, naming::TeamConfig team)
    : CsnhServer(team),
      name_(std::move(server_name)),
      disk_(disk),
      register_service_(register_service) {
  auto& root = alloc(Inode::Kind::kDirectory, 0, "");
  root_ = root.id;
}

FileServer::Inode& FileServer::alloc(Inode::Kind kind, InodeId parent,
                                     std::string name) {
  const InodeId id = next_inode_++;
  Inode node;
  node.id = id;
  node.kind = kind;
  node.parent = parent;
  node.name_in_parent = std::move(name);
  auto [it, inserted] = inodes_.emplace(id, std::move(node));
  V_CHECK(inserted);
  return it->second;
}

FileServer::Inode* FileServer::find_inode(InodeId id) {
  auto it = inodes_.find(id);
  return it != inodes_.end() ? &it->second : nullptr;
}

const FileServer::Inode* FileServer::find_inode(InodeId id) const {
  auto it = inodes_.find(id);
  return it != inodes_.end() ? &it->second : nullptr;
}

FileServer::Inode* FileServer::child(Inode& dir, std::string_view name) {
  auto it = dir.entries.find(name);
  return it != dir.entries.end() ? find_inode(it->second) : nullptr;
}

naming::ContextId FileServer::mkdirs(std::string_view path) {
  InodeId current = root_;
  std::size_t index = 0;
  for (;;) {
    std::size_t next = 0;
    const auto component = naming::next_component(path, index, next);
    if (component.empty()) break;
    auto& dir = inodes_.at(current);
    V_CHECK(dir.kind == Inode::Kind::kDirectory);
    if (auto* existing = child(dir, component)) {
      V_CHECK(existing->kind == Inode::Kind::kDirectory);
      current = existing->id;
    } else {
      auto& made =
          alloc(Inode::Kind::kDirectory, current, std::string(component));
      inodes_.at(current).entries.emplace(std::string(component), made.id);
      current = made.id;
    }
    index = next;
  }
  return current;
}

void FileServer::put_file(std::string_view path, std::string_view content) {
  const auto slash = path.rfind('/');
  const std::string_view dir_path =
      slash == std::string_view::npos ? std::string_view{} :
                                        path.substr(0, slash);
  const std::string_view leaf =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  V_CHECK(!leaf.empty());
  const InodeId dir_id = mkdirs(dir_path);
  auto& dir = inodes_.at(dir_id);
  Inode* file = child(dir, leaf);
  if (file == nullptr) {
    file = &alloc(Inode::Kind::kFile, dir_id, std::string(leaf));
    inodes_.at(dir_id).entries.emplace(std::string(leaf), file->id);
  }
  V_CHECK(file->kind == Inode::Kind::kFile);
  file->data.resize(content.size());
  if (!content.empty()) {
    std::memcpy(file->data.data(), content.data(), content.size());
  }
}

void FileServer::put_link(std::string_view path, naming::ContextPair target) {
  const auto slash = path.rfind('/');
  const std::string_view dir_path =
      slash == std::string_view::npos ? std::string_view{} :
                                        path.substr(0, slash);
  const std::string_view leaf =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  V_CHECK(!leaf.empty());
  const InodeId dir_id = mkdirs(dir_path);
  V_CHECK(!inodes_.at(dir_id).entries.contains(leaf));
  auto& node = alloc(Inode::Kind::kRemoteLink, dir_id, std::string(leaf));
  node.link_target = target;
  inodes_.at(dir_id).entries.emplace(std::string(leaf), node.id);
}

void FileServer::map_well_known(naming::ContextId well_known,
                                std::string_view path) {
  V_CHECK(naming::is_well_known(well_known));
  well_known_[well_known] = mkdirs(path);
}

naming::ContextId FileServer::context_of(std::string_view path) const {
  InodeId current = root_;
  std::size_t index = 0;
  for (;;) {
    std::size_t next = 0;
    const auto component = naming::next_component(path, index, next);
    if (component.empty()) break;
    const auto* dir = find_inode(current);
    V_CHECK(dir != nullptr && dir->kind == Inode::Kind::kDirectory);
    auto it = dir->entries.find(component);
    V_CHECK(it != dir->entries.end());
    current = it->second;
    index = next;
  }
  return current;
}

Result<std::string> FileServer::read_file(std::string_view path) const {
  const auto slash = path.rfind('/');
  const std::string_view dir_path =
      slash == std::string_view::npos ? std::string_view{} :
                                        path.substr(0, slash);
  const std::string_view leaf =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto* dir = find_inode(context_of(dir_path));
  if (dir == nullptr) return ReplyCode::kNotFound;
  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) return ReplyCode::kNotFound;
  const auto* file = find_inode(it->second);
  if (file == nullptr || file->kind != Inode::Kind::kFile) {
    return ReplyCode::kNotFound;
  }
  return std::string(reinterpret_cast<const char*>(file->data.data()),
                     file->data.size());
}

std::string FileServer::path_of(InodeId id) const {
  std::vector<std::string_view> parts;
  const Inode* node = find_inode(id);
  while (node != nullptr && node->parent != 0) {
    parts.push_back(node->name_in_parent);
    node = find_inode(node->parent);
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path.push_back('/');
    path.append(*it);
  }
  return path.empty() ? "/" : path;
}

bool FileServer::is_ancestor(InodeId maybe_ancestor, InodeId node_id) const {
  const Inode* node = find_inode(node_id);
  while (node != nullptr) {
    if (node->id == maybe_ancestor) return true;
    if (node->parent == 0) return false;
    node = find_inode(node->parent);
  }
  return false;
}

// ---------------------------------------------------------------------------
// CsnhServer hooks
// ---------------------------------------------------------------------------

sim::Co<void> FileServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kStorageServer, self.pid(),
                 ipc::Scope::kBoth);
  }
  if (group_ != 0) self.join_group(group_);
  co_return;
}

naming::ContextId FileServer::translate_context(naming::ContextId ctx) {
  if (ctx == naming::kDefaultContext) return root_;
  if (naming::is_well_known(ctx)) {
    auto it = well_known_.find(ctx);
    return it != well_known_.end() ? it->second : ctx;
  }
  return ctx;
}

bool FileServer::context_valid(naming::ContextId ctx) {
  const auto* node = find_inode(static_cast<InodeId>(ctx));
  return node != nullptr && node->kind == Inode::Kind::kDirectory;
}

sim::Co<naming::CsnhServer::LookupResult> FileServer::lookup(
    ipc::Process& /*self*/, naming::ContextId ctx,
    std::string_view component) {
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr || dir->kind != Inode::Kind::kDirectory) {
    co_return LookupResult::missing();
  }
  if (component == ".") co_return LookupResult::local(ctx);
  if (component == "..") {
    co_return LookupResult::local(dir->parent != 0 ? dir->parent : dir->id);
  }
  Inode* entry = child(*dir, component);
  if (entry == nullptr) co_return LookupResult::missing();
  switch (entry->kind) {
    case Inode::Kind::kDirectory:
      co_return LookupResult::local(entry->id);
    case Inode::Kind::kRemoteLink:
      co_return LookupResult::remote_ctx(entry->link_target);
    case Inode::Kind::kFile:
      co_return LookupResult::object(entry->id);
  }
  co_return LookupResult::missing();
}

naming::ObjectDescriptor FileServer::describe_inode(const Inode& node) const {
  ObjectDescriptor desc;
  switch (node.kind) {
    case Inode::Kind::kFile:
      desc.type = DescriptorType::kFile;
      break;
    case Inode::Kind::kDirectory:
      desc.type = DescriptorType::kContext;
      desc.server_pid = pid().raw;
      desc.context_id = node.id;
      break;
    case Inode::Kind::kRemoteLink:
      desc.type = DescriptorType::kContext;
      desc.server_pid = node.link_target.server.raw;
      desc.context_id = node.link_target.context;
      break;
  }
  desc.flags = node.flags;
  desc.size = static_cast<std::uint32_t>(node.data.size());
  desc.object_id = node.id;
  desc.mtime = node.mtime;
  desc.owner = node.owner;
  desc.name = node.name_in_parent;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> FileServer::describe(
    ipc::Process& /*self*/, naming::ContextId ctx, std::string_view leaf) {
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty()) co_return describe_inode(*dir);
  Inode* entry = child(*dir, leaf);
  if (entry == nullptr) co_return ReplyCode::kNotFound;
  co_return describe_inode(*entry);
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::modify(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf,
                                      const naming::ObjectDescriptor& desc) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  Inode* entry = leaf.empty() ? dir : child(*dir, leaf);
  if (entry == nullptr) co_return ReplyCode::kNotFound;
  if ((entry->flags & naming::kProtected) != 0) {
    co_return ReplyCode::kNoPermission;
  }
  // Only the modifiable fields take effect; the rest "make no sense to
  // change in this way" and are ignored (paper section 5.5).
  entry->flags = desc.flags;
  if (!desc.owner.empty()) entry->owner = desc.owner;
  entry->mtime = sim_seconds(self);
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::remove(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  Inode* entry = child(*dir, leaf);
  if (entry == nullptr) co_return ReplyCode::kNotFound;
  if (entry->kind == Inode::Kind::kDirectory && !entry->entries.empty()) {
    co_return ReplyCode::kBadState;  // non-empty directory
  }
  // Name and object die together: this is the consistency argument for
  // distributed interpretation (section 2.2) — no name server to notify.
  const InodeId id = entry->id;
  dir->entries.erase(std::string(leaf));
  inodes_.erase(id);
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::rename(ipc::Process& self,
                                      naming::ContextId ctx,
                                      std::string_view leaf,
                                      std::string_view new_leaf) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty() || new_leaf.empty()) co_return ReplyCode::kBadArgs;
  auto it = dir->entries.find(leaf);
  if (it == dir->entries.end()) co_return ReplyCode::kNotFound;
  if (dir->entries.contains(new_leaf)) co_return ReplyCode::kNameExists;
  const InodeId id = it->second;
  dir->entries.erase(it);
  dir->entries.emplace(std::string(new_leaf), id);
  if (auto* node = find_inode(id)) {
    node->name_in_parent = std::string(new_leaf);
    node->mtime = sim_seconds(self);
    if (node->kind == Inode::Kind::kDirectory) {
      // Renaming a directory relocates every context beneath it: a client
      // holding a cached binding for the OLD path would otherwise keep
      // hitting these contexts under a name that no longer reaches them.
      // Still under the (ctx, leaf) mutation gate of this rename.
      bump_subtree_generations(self, *node);
    }
  }
  co_return ReplyCode::kOk;
}

void FileServer::bump_subtree_generations(ipc::Process& self,
                                          const Inode& dir) {
  bump_generation(self, static_cast<naming::ContextId>(dir.id));
  for (const auto& [name, child_id] : dir.entries) {
    const auto* node = find_inode(child_id);
    if (node != nullptr && node->kind == Inode::Kind::kDirectory) {
      bump_subtree_generations(self, *node);
    }
  }
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::create_object(ipc::Process& self,
                                             naming::ContextId ctx,
                                             std::string_view leaf,
                                             std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  if (dir->entries.contains(leaf)) co_return ReplyCode::kNameExists;
  auto& node = alloc(Inode::Kind::kFile, dir->id, std::string(leaf));
  node.mtime = sim_seconds(self);
  find_inode(static_cast<InodeId>(ctx))
      ->entries.emplace(std::string(leaf), node.id);
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::make_context(ipc::Process& self,
                                            naming::ContextId ctx,
                                            std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  if (dir->entries.contains(leaf)) co_return ReplyCode::kNameExists;
  auto& node = alloc(Inode::Kind::kDirectory, dir->id, std::string(leaf));
  node.mtime = sim_seconds(self);
  find_inode(static_cast<InodeId>(ctx))
      ->entries.emplace(std::string(leaf), node.id);
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> FileServer::link_context(ipc::Process& self,
                                            naming::ContextId ctx,
                                            std::string_view leaf,
                                            naming::ContextPair target) {
  note_name_write(self, ctx, leaf);
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  if (leaf.empty() || !target.valid()) co_return ReplyCode::kBadArgs;
  if (dir->entries.contains(leaf)) co_return ReplyCode::kNameExists;
  auto& node = alloc(Inode::Kind::kRemoteLink, dir->id, std::string(leaf));
  node.link_target = target;
  node.mtime = sim_seconds(self);
  find_inode(static_cast<InodeId>(ctx))
      ->entries.emplace(std::string(leaf), node.id);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>> FileServer::open_object(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
    std::uint16_t mode) {
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr) co_return ReplyCode::kInvalidContext;
  Inode* entry = child(*dir, leaf);
  if (entry == nullptr) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
    entry = child(*find_inode(static_cast<InodeId>(ctx)), leaf);
    V_CHECK(entry != nullptr);
  }
  if (entry->kind != Inode::Kind::kFile) co_return ReplyCode::kBadState;

  std::uint16_t flags = 0;
  if ((mode & naming::wire::kOpenRead) != 0) {
    if ((entry->flags & naming::kReadable) == 0) {
      co_return ReplyCode::kNoPermission;
    }
    flags |= io::kInstanceReadable;
  }
  if ((mode & (naming::wire::kOpenWrite | naming::wire::kOpenAppend)) != 0) {
    if ((entry->flags & naming::kWriteable) == 0) {
      co_return ReplyCode::kNoPermission;
    }
    flags |= io::kInstanceWriteable;
    if ((mode & naming::wire::kOpenAppend) != 0) {
      flags |= io::kInstanceAppendOnly;
    }
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<FileInstance>(*this, entry->id, flags, disk_));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
FileServer::list_context(ipc::Process& /*self*/, naming::ContextId ctx) {
  auto* dir = find_inode(static_cast<InodeId>(ctx));
  if (dir == nullptr || dir->kind != Inode::Kind::kDirectory) {
    co_return ReplyCode::kInvalidContext;
  }
  std::vector<ObjectDescriptor> records;
  records.reserve(dir->entries.size());
  for (const auto& [name, id] : dir->entries) {
    const auto* node = find_inode(id);
    if (node != nullptr) records.push_back(describe_inode(*node));
  }
  co_return records;
}

Result<std::string> FileServer::context_to_name(naming::ContextId ctx) {
  const auto* node = find_inode(static_cast<InodeId>(ctx));
  if (node == nullptr || node->kind != Inode::Kind::kDirectory) {
    return ReplyCode::kNoInverse;
  }
  // Server-local absolute path.  The paper (section 6) is explicit that
  // this inverse is imperfect: it cannot know which prefix or which chain
  // of forwarding servers the original name went through.
  return path_of(node->id);
}

Result<std::string> FileServer::instance_to_name(io::InstanceId instance) {
  auto object = instances().find(instance);
  if (object == nullptr) return ReplyCode::kNoInverse;
  auto* file = dynamic_cast<FileInstance*>(object.get());
  if (file == nullptr) return ReplyCode::kNoInverse;
  const auto* node = find_inode(file->inode());
  if (node == nullptr) return ReplyCode::kNoInverse;
  return path_of(node->id);
}

}  // namespace v::servers
