// The Internet server — section 6's "V kernel-based implementation of
// IP/TCP", reduced to its naming-relevant surface: TCP connections are
// named objects ("host:port" in the server's single context), opened and
// used through the V I/O protocol, and enumerated by the same context
// directory mechanism as files and terminals.
//
// The network behind it is simulated: connections echo their written bytes
// back (a loopback peer) after a configurable round-trip delay.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

class InternetServer : public naming::CsnhServer {
 public:
  /// `rtt` is the simulated remote peer round-trip time per write.
  explicit InternetServer(sim::SimDuration rtt = 20 * sim::kMillisecond,
                          bool register_service = true,
                          naming::TeamConfig team = {});

  enum class ConnState { kOpen, kClosed };

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return connections_.size();
  }

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t mode) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  friend class ConnectionInstance;

  struct Connection {
    std::uint32_t id = 0;
    ConnState state = ConnState::kOpen;
    std::vector<std::byte> inbound;  ///< bytes the peer "sent" us
    std::uint64_t bytes_sent = 0;
    std::uint32_t opened = 0;
  };

  /// "host:port" names are validated on create.
  static bool valid_endpoint(std::string_view name);

  naming::ObjectDescriptor describe_conn(const std::string& name,
                                         const Connection& c) const;

  sim::SimDuration rtt_;
  bool register_service_;
  std::map<std::string, Connection, std::less<>> connections_;
  std::uint32_t next_id_ = 1;
};

}  // namespace v::servers
