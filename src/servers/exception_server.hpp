// The exception server — one of the per-workstation servers of section 6
// ("exception server"), reconstructed: processes raise exception reports
// with a custom operation; each report becomes a named, queryable, readable
// object in the server's context, so the SAME list-directory/query/open
// machinery that works on files works on pending exceptions (a debugger is
// just another client of the name-handling protocol).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "naming/csnh_server.hpp"

namespace v::servers {

// --- kRaiseException wire layout (non-CSname request) ---------------------
inline constexpr std::uint16_t kRaiseException = 0x0305;
inline constexpr std::size_t kOffExcCode = 2;        // u16 fault code
inline constexpr std::size_t kOffExcDetailLen = 4;   // u16 report text bytes
// Reply:
inline constexpr std::size_t kOffExcReportId = 2;    // u16 new report id

/// Well-known fault codes (descriptor.object_id low bits).
enum class FaultCode : std::uint16_t {
  kUnknown = 0,
  kAddressError = 1,
  kIllegalInstruction = 2,
  kProtocolViolation = 3,
  kResourceExhausted = 4,
};

class ExceptionServer : public naming::CsnhServer {
 public:
  explicit ExceptionServer(bool register_service = true,
                           naming::TeamConfig team = {});

  /// Client helper: raise an exception report at `server` (resolve it via
  /// GetPid(kExceptionServer, kLocal) first).  Returns the report id.
  static sim::Co<Result<std::uint16_t>> raise(ipc::Process self,
                                              ipc::ProcessId server,
                                              FaultCode code,
                                              std::string_view detail);

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return reports_.size();
  }

 protected:
  sim::Co<void> on_start(ipc::Process& self) override;
  sim::Co<LookupResult> lookup(ipc::Process& self, naming::ContextId ctx,
                               std::string_view component) override;
  sim::Co<Result<naming::ObjectDescriptor>> describe(
      ipc::Process& self, naming::ContextId ctx,
      std::string_view leaf) override;
  sim::Co<ReplyCode> remove(ipc::Process& self, naming::ContextId ctx,
                            std::string_view leaf) override;
  sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, naming::ContextId ctx, std::string_view leaf,
      std::uint16_t mode) override;
  sim::Co<Result<std::vector<naming::ObjectDescriptor>>> list_context(
      ipc::Process& self, naming::ContextId ctx) override;
  sim::Co<msg::Message> handle_custom(ipc::Process& self,
                                      ipc::Envelope& env) override;
  Result<std::string> context_to_name(naming::ContextId ctx) override;

 private:
  struct Report {
    std::uint16_t id = 0;
    ipc::ProcessId faulting;
    FaultCode code = FaultCode::kUnknown;
    std::string detail;
    std::uint32_t raised = 0;
  };

  naming::ObjectDescriptor describe_report(const std::string& name,
                                           const Report& r) const;

  bool register_service_;
  std::map<std::string, Report, std::less<>> reports_;
  /// kRaiseException mutates reports_ from handle_custom, outside any
  /// (ctx,leaf) gate; annotate the write for the race detector instead.
  chk::CellState reports_cell_{"exception.reports"};
  std::uint16_t next_id_ = 1;
};

}  // namespace v::servers
