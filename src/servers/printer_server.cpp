#include "servers/printer_server.hpp"

#include <cstring>
#include "common/annotate.hpp"

namespace v::servers {

using naming::DescriptorType;
using naming::ObjectDescriptor;

/// An open print job: write-only spool; each write extends the job and
/// reschedules it behind the printer's current queue.
class PrintJobInstance : public io::InstanceObject {
 public:
  PrintJobInstance(PrinterServer& server, std::string name) noexcept
      : server_(server), name_(std::move(name)) {}

  [[nodiscard]] io::InstanceInfo info() const override {
    io::InstanceInfo info;
    info.flags = io::kInstanceWriteable | io::kInstanceAppendOnly;
    auto it = server_.jobs_.find(name_);
    info.size_bytes =
        it != server_.jobs_.end()
            ? static_cast<std::uint32_t>(it->second.data.size())
            : 0;
    return info;
  }

  sim::Co<Result<std::size_t>> read_block(ipc::Process&, std::uint32_t,
                                          std::span<std::byte>) override {
    co_return ReplyCode::kNotReadable;  // spool contents are private
  }

  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t /*block*/,
      std::span<const std::byte> data) override {
    auto it = server_.jobs_.find(name_);
    if (it == server_.jobs_.end()) co_return ReplyCode::kBadState;
    auto& job = it->second;
    job.data.insert(job.data.end(), data.begin(), data.end());
    job.submitted = self.now();
    server_.schedule_job(job, self.now());
    server_.metric_inc(self, "spooled_bytes", data.size());
    co_return data.size();
  }

 private:
  PrinterServer& server_;
  std::string name_;
};

PrinterServer::PrinterServer(std::uint32_t bytes_per_second,
                             bool register_service, naming::TeamConfig team)
    : CsnhServer(team),
      bytes_per_second_(bytes_per_second),
      register_service_(register_service) {}

void PrinterServer::schedule_job(Job& job, sim::SimTime now) {
  // Single print engine: the job starts when the engine frees up.
  job.print_start = std::max(printer_free_at_, now);
  const auto duration = static_cast<sim::SimDuration>(
      job.data.size() * static_cast<std::size_t>(sim::kSecond) /
      std::max<std::uint32_t>(bytes_per_second_, 1));
  printer_free_at_ = job.print_start + duration;
}

PrinterServer::JobStatus PrinterServer::derive_status(
    const Job& job, sim::SimTime now) const {
  if (now < job.print_start) return JobStatus::kQueued;
  const auto duration = static_cast<sim::SimDuration>(
      job.data.size() * static_cast<std::size_t>(sim::kSecond) /
      std::max<std::uint32_t>(bytes_per_second_, 1));
  return now < job.print_start + duration ? JobStatus::kPrinting
                                          : JobStatus::kDone;
}

Result<PrinterServer::JobStatus> PrinterServer::status(
    std::string_view job, sim::SimTime now) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return ReplyCode::kNotFound;
  return derive_status(it->second, now);
}

sim::Co<void> PrinterServer::on_start(ipc::Process& self) {
  if (register_service_) {
    self.set_pid(ipc::ServiceId::kPrinterServer, self.pid(),
                 ipc::Scope::kBoth);
  }
  co_return;
}

sim::Co<naming::CsnhServer::LookupResult> PrinterServer::lookup(
    ipc::Process& /*self*/, naming::ContextId /*ctx*/,
    std::string_view component) {
  auto it = jobs_.find(component);
  if (it == jobs_.end()) co_return LookupResult::missing();
  co_return LookupResult::object(it->second.id);
}

naming::ObjectDescriptor PrinterServer::describe_job(const std::string& name,
                                                     const Job& job,
                                                     sim::SimTime now) const {
  ObjectDescriptor desc;
  desc.type = DescriptorType::kPrintJob;
  desc.flags = naming::kWriteable | naming::kAppendOnly;
  desc.size = static_cast<std::uint32_t>(job.data.size());
  desc.object_id = job.id;
  // Encode derived status in the context-id field (documented job-status
  // channel for this record type).
  desc.context_id = static_cast<std::uint32_t>(derive_status(job, now));
  desc.mtime = static_cast<std::uint32_t>(job.submitted / sim::kSecond);
  desc.owner = job.owner;
  desc.name = name;
  return desc;
}

sim::Co<Result<naming::ObjectDescriptor>> PrinterServer::describe(
    ipc::Process& self, naming::ContextId ctx, std::string_view leaf) {
  if (leaf.empty()) {
    ObjectDescriptor desc;
    desc.type = DescriptorType::kContext;
    desc.server_pid = pid().raw;
    desc.context_id = ctx;
    desc.size = static_cast<std::uint32_t>(jobs_.size());
    co_return desc;
  }
  auto it = jobs_.find(leaf);
  if (it == jobs_.end()) co_return ReplyCode::kNotFound;
  co_return describe_job(it->first, it->second, self.now());
}

V_GATED_MUTATION
sim::Co<ReplyCode> PrinterServer::create_object(ipc::Process& self,
                                                naming::ContextId ctx,
                                                std::string_view leaf,
                                                std::uint16_t /*mode*/) {
  note_name_write(self, ctx, leaf);
  if (leaf.empty()) co_return ReplyCode::kBadArgs;
  if (jobs_.contains(leaf)) co_return ReplyCode::kNameExists;
  Job job;
  job.id = next_id_++;
  job.submitted = self.now();
  jobs_.emplace(std::string(leaf), std::move(job));
  co_return ReplyCode::kOk;
}

V_GATED_MUTATION
sim::Co<ReplyCode> PrinterServer::remove(ipc::Process& self,
                                         naming::ContextId ctx,
                                         std::string_view leaf) {
  note_name_write(self, ctx, leaf);
  auto it = jobs_.find(leaf);
  if (it == jobs_.end()) co_return ReplyCode::kNotFound;
  if (derive_status(it->second, self.now()) == JobStatus::kPrinting) {
    co_return ReplyCode::kBadState;  // cannot cancel mid-print
  }
  jobs_.erase(it);
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::unique_ptr<io::InstanceObject>>>
PrinterServer::open_object(ipc::Process& self, naming::ContextId ctx,
                           std::string_view leaf, std::uint16_t mode) {
  if (!jobs_.contains(leaf)) {
    if ((mode & naming::wire::kOpenCreate) == 0) {
      co_return ReplyCode::kNotFound;
    }
    // vlint: allow(gate-generation): open-with-create dispatches through handle_csname, which bumps the generation on success.
    const auto created = co_await create_object(self, ctx, leaf, mode);
    if (!v::ok(created)) co_return created;
  }
  co_return std::unique_ptr<io::InstanceObject>(
      std::make_unique<PrintJobInstance>(*this, std::string(leaf)));
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
PrinterServer::list_context(ipc::Process& self, naming::ContextId /*ctx*/) {
  std::vector<ObjectDescriptor> records;
  records.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    records.push_back(describe_job(name, job, self.now()));
  }
  co_return records;
}

Result<std::string> PrinterServer::context_to_name(naming::ContextId ctx) {
  if (ctx != naming::kDefaultContext) return ReplyCode::kNoInverse;
  return std::string("printer-queue");
}

}  // namespace v::servers
