#include "servers/shard_fabric.hpp"

#include <algorithm>

#include "common/annotate.hpp"
#include "svc/runtime.hpp"

namespace v::servers {

V_BORROWS_SPAN  // env outlives the handler: the worker holds it across the dispatch
sim::Co<msg::Message> ShardPrefixServer::handle_custom(ipc::Process& self,
                                                       ipc::Envelope& env) {
  if (env.request.code() != msg::kFetchShardMap) {
    co_return co_await ContextPrefixServer::handle_custom(self, env);
  }
  if (!fabric_->designated_responder(pid())) {
    // Group silence: the fetch was multicast to every member, but exactly
    // ONE live member may answer.  A second reply would outlive this
    // transaction and could complete the client's NEXT send — the kernel
    // matches replies to senders, not transactions (complete_reply), so
    // chorus protocols are forbidden; see CsnhServer::handle_custom.
    co_return silent_discard();
  }
  metric_inc(self, "shardmap_fetches");
  const naming::ShardMap map = fabric_->snapshot();
  std::vector<std::byte> bytes;
  bytes.reserve(128);
  map.serialize(bytes);
  // Fabricating the map is priced like fabricating one directory record per
  // shard — it is the same kind of table walk the list-directory path does.
  co_await self.compute(self.params().descriptor_fabricate *
                        static_cast<sim::SimDuration>(map.shards.size()));
  const auto moved = co_await self.move_to(env, bytes);
  if (!moved.ok()) {
    // The sender gave up (group timeout) or died while we were busy: the
    // transaction is closed, so there is nobody to answer.  Stay silent
    // rather than launch a reply that could hit the sender's next send.
    co_return silent_discard();
  }
  msg::Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u32(naming::wire::kOffShardMapVersion, map.version);
  reply.set_u16(naming::wire::kOffShardMapCount,
                static_cast<std::uint16_t>(map.shards.size()));
  reply.set_u16(naming::wire::kOffShardMapBytes,
                static_cast<std::uint16_t>(bytes.size()));
  co_return reply;
}

ShardFabric::ShardFabric(ipc::Domain& dom, Config cfg)
    : dom_(dom), cfg_(cfg) {}

void ShardFabric::install(std::vector<Binding> bindings) {
  std::sort(bindings.begin(), bindings.end(),
            [](const Binding& a, const Binding& b) {
              return a.first < b.first;
            });
  // Never more shards than prefixes: an empty range would repeat the next
  // range's lo and the map would not be well-formed.
  const std::size_t count =
      std::min(cfg_.shards == 0 ? std::size_t{1} : cfg_.shards,
               std::max<std::size_t>(bindings.size(), 1));
  shards_.resize(count);
  const std::size_t base = bindings.size() / count;
  const std::size_t extra = bindings.size() % count;
  std::size_t at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Shard& sh = shards_[i];
    const std::size_t take = base + (i < extra ? 1 : 0);
    sh.home.assign(bindings.begin() + static_cast<std::ptrdiff_t>(at),
                   bindings.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
    // First shard anchors the map at ""; later shards start at their first
    // owned prefix, so every prefix (even one never defined) routes.
    sh.home_lo = i == 0 ? std::string() : sh.home.front().first;
    sh.lo = sh.home_lo;
    const std::string label = cfg_.host_stem + std::to_string(i);
    sh.server = std::make_unique<ShardPrefixServer>(label, this, cfg_.team);
    sh.server->set_service_group(cfg_.group);
    for (const Binding& b : sh.home) sh.server->define(b.first, b.second);
    sh.host = &dom_.add_host(label);
    ShardPrefixServer* srv = sh.server.get();
    sh.pid = sh.host->spawn(
        label, [srv](ipc::Process p) { return srv->run(p); });
  }
  version_ = 1;
}

bool ShardFabric::designated_responder(ipc::ProcessId pid) const {
  // The first live member in index order answers map fetches; everyone
  // else stays silent.  Every member evaluates the same rule against the
  // same fabric state, so at any instant at most one member elects itself;
  // if the designated member dies before answering, the sender's group
  // timeout fires and the refetch finds the next one.
  for (const Shard& sh : shards_) {
    if (sh.host == nullptr || !sh.host->alive()) continue;
    if (!dom_.process_alive(sh.pid)) continue;
    return sh.pid == pid;
  }
  return false;
}

std::uint64_t ShardFabric::shed_count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) {
    if (sh.server) total += sh.server->shed_count();
  }
  return total;
}

naming::ShardMap ShardFabric::snapshot() const {
  naming::ShardMap map;
  map.version = version_;
  map.shards.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    if (!sh.published) continue;
    map.shards.push_back(naming::ShardMap::Shard{
        .lo = sh.lo,
        .server_pid = sh.pid.raw,
        .generation = sh.server->generation(naming::kDefaultContext)});
  }
  std::sort(map.shards.begin(), map.shards.end(),
            [](const naming::ShardMap::Shard& a,
               const naming::ShardMap::Shard& b) { return a.lo < b.lo; });
  return map;
}

std::size_t ShardFabric::successor_of(std::size_t i) const {
  // install() creates shards in lo order, so index order IS lo order.
  // Prefer the preceding published live shard: removing `i` then extends
  // its range rightward over i's with no lo edit at all.
  for (std::size_t j = i; j-- > 0;) {
    if (shards_[j].published && shards_[j].host->alive()) return j;
  }
  // `i` held the "" anchor: the next published live shard inherits it.
  for (std::size_t j = i + 1; j < shards_.size(); ++j) {
    if (shards_[j].published && shards_[j].host->alive()) return j;
  }
  return i;  // nobody left alive; the map keeps the dead shard
}

void ShardFabric::on_crash(std::size_t i) {
  const std::size_t succ = successor_of(i);
  if (succ == i) return;
  absorbed_by_ = succ;
  // The dead shard STAYS published until the successor holds every binding:
  // a map without it would route its range to a shard that answers
  // kNotFound — a wrong answer.  Published-but-dead only costs kNoReply
  // retries, which the router absorbs.
  const sim::SimTime started = dom_.now();
  shards_[succ].host->spawn(
      "handoff" + std::to_string(i),
      // vlint: allow(coro-param-lifetime): spawn keeps the closure alive in ProcessRecord::body_keepalive for the process lifetime
      [this, i, succ, started](ipc::Process self) -> sim::Co<void> {
        svc::Rt rt(self,
                   svc::NameEnv{.prefix_server = shards_[succ].pid,
                                .current = {shards_[succ].pid,
                                            naming::kDefaultContext}});
        for (const Binding& b : shards_[i].home) {
          const auto& e = b.second;
          ReplyCode rc;
          if (e.group != 0) {
            rc = co_await rt.add_group_prefix(b.first, e.group,
                                              e.logical_context);
          } else if (e.logical) {
            rc = co_await rt.add_logical_prefix(b.first, e.service,
                                                e.logical_context);
          } else {
            rc = co_await rt.add_prefix(b.first, e.target);
          }
          // kNameExists = a duplicate-suppressed retransmission already
          // landed this binding; anything else is genuinely unexpected but
          // must not wedge the handoff.
          (void)rc;
        }
        complete_handoff(i, succ, sim::to_ms(self.now() - started));
      });
}

void ShardFabric::complete_handoff(std::size_t i, std::size_t succ,
                                   double took_ms) {
  shards_[i].published = false;
  if (shards_[succ].lo > shards_[i].lo) shards_[succ].lo = shards_[i].lo;
  ++version_;
  ++churn_.handoffs;
  churn_.last_handoff_ms = took_ms;
}

void ShardFabric::on_restart(std::size_t i) {
  Shard& sh = shards_[i];
  if (!sh.host->alive()) sh.host->restart();
  // Same server object, fresh incarnation: the prefix table persists
  // (durable storage) but the generation floor is re-drawn, so every
  // generation published before the crash now mismatches — stale maps are
  // refused, never wrongly served.
  ShardPrefixServer* srv = sh.server.get();
  const std::string label = cfg_.host_stem + std::to_string(i);
  sh.pid = sh.host->spawn(label,
                          [srv](ipc::Process p) { return srv->run(p); });
  const std::size_t succ = absorbed_by_;
  // Publish the restored partition FIRST, then retire the successor's
  // copies: in the window between, both shards can serve the range
  // (identical bindings), while the reverse order would leave a map whose
  // owner answers kNotFound.
  sh.published = true;
  sh.lo = sh.home_lo;
  shards_[succ].lo = shards_[succ].home_lo;
  ++version_;
  const sim::SimTime started = dom_.now();
  sh.host->spawn(
      "handback" + std::to_string(i),
      // vlint: allow(coro-param-lifetime): spawn keeps the closure alive in ProcessRecord::body_keepalive for the process lifetime
      [this, i, succ, started](ipc::Process self) -> sim::Co<void> {
        svc::Rt rt(self,
                   svc::NameEnv{.prefix_server = shards_[succ].pid,
                                .current = {shards_[succ].pid,
                                            naming::kDefaultContext}});
        for (const Binding& b : shards_[i].home) {
          (void)co_await rt.delete_prefix(b.first);
        }
        complete_handback(succ, sim::to_ms(self.now() - started));
      });
}

void ShardFabric::complete_handback(std::size_t /*succ*/, double took_ms) {
  ++churn_.handbacks;
  churn_.last_handback_ms = took_ms;
}

}  // namespace v::servers
