// The sharded context-prefix fabric (DESIGN.md 4m, PROTOCOL.md 14).
//
// One prefix-server team per workstation (paper section 6) serves one user;
// the ROADMAP's production day needs the GLOBAL prefix mapping — thousands
// of prefixes, hammered by thousands of hosts — and a single receptionist +
// worker team saturates at workers / prefix_processing.  Internames
// (PAPERS.md) argues the way out is partitioning the name space itself, and
// the non-anchored-naming work shows character-string spaces partition
// cleanly without a distinguished root.  This fabric does exactly that:
//
//   * the sorted prefix list is split into S consistent prefix ranges, one
//     ContextPrefixServer-derived team per range, each on its own host;
//   * clients learn the partition from a ShardMap (naming/shard_map.hpp)
//     fetched by multicasting msg::kFetchShardMap to the fabric's process
//     group — the DESIGNATED member (first live shard in index order)
//     answers with the current map and every other member stays silent,
//     the same one-speaker discipline as recovery probes, so the fetch
//     survives any crash without ever drawing two replies;
//   * every routed request quotes the shard generation from the map as its
//     expected generation, so a stale map is refused with kStaleContext by
//     the PR 4 machinery — never answered wrongly;
//   * membership churn (v::fault crash/restart schedules) triggers shard
//     HANDOFF: a coordinator agent replays the dead shard's bindings into
//     a successor through the ordinary AddContextName protocol (gated,
//     generation-bumping), then publishes a new map version.  Clients
//     follow via kNoReply/kStaleContext -> refetch, the same repair loop
//     the paper's section 4 rebinding uses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "naming/shard_map.hpp"
#include "servers/prefix_server.hpp"

namespace v::servers {

class ShardFabric;

/// One shard: a ContextPrefixServer team that additionally serves the
/// fabric's current shard map (msg::kFetchShardMap).
class ShardPrefixServer : public ContextPrefixServer {
 public:
  ShardPrefixServer(std::string label, ShardFabric* fabric,
                    naming::TeamConfig team)
      : ContextPrefixServer(std::move(label), /*register_service=*/false,
                            team),
        fabric_(fabric) {}

 protected:
  sim::Co<msg::Message> handle_custom(ipc::Process& self,
                                      ipc::Envelope& env) override;

  /// Map fetches ride the express lane: a saturated shard's queue wait
  /// exceeds the fetch's group timeout, and a map nobody can fetch would
  /// wedge every router behind kTimeout refetch loops.
  [[nodiscard]] bool express_lane(const msg::Message& req) const override {
    return req.code() == msg::kFetchShardMap;
  }

 private:
  ShardFabric* fabric_;
};

/// The fabric: owns the shard servers, their hosts, the authoritative map,
/// and the churn choreography.  Pre-run setup is install(); everything
/// after dom.run() starts goes through the protocol.
class ShardFabric {
 public:
  using Binding = std::pair<std::string, ContextPrefixServer::Entry>;

  struct Config {
    std::size_t shards = 4;
    naming::TeamConfig team{.workers = 4, .queue_cap = 64};
    ipc::GroupId group = 0xFAB0;  ///< fabric process group (map fetch)
    std::string host_stem = "shard";
  };

  ShardFabric(ipc::Domain& dom, Config cfg);

  /// Partition `bindings` into `cfg.shards` contiguous ranges of the
  /// sorted prefix list, install each range on its shard, and spawn the
  /// server teams (one host per shard).  Call once, before dom.run().
  void install(std::vector<Binding> bindings);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] ipc::GroupId group() const noexcept { return cfg_.group; }
  [[nodiscard]] ipc::Host& host(std::size_t i) { return *shards_[i].host; }
  [[nodiscard]] ipc::ProcessId pid(std::size_t i) const {
    return shards_[i].pid;
  }
  [[nodiscard]] ShardPrefixServer& server(std::size_t i) {
    return *shards_[i].server;
  }
  [[nodiscard]] std::uint32_t map_version() const noexcept {
    return version_;
  }
  /// Total kBusy sheds across all shard incarnations.
  [[nodiscard]] std::uint64_t shed_count() const noexcept;

  /// Is `pid` the fabric member that answers map fetches right now?  The
  /// first live member in index order is designated; all other members
  /// stay SILENT on kFetchShardMap so a multicast never draws two replies
  /// (a stray second reply could complete the client's next transaction).
  [[nodiscard]] bool designated_responder(ipc::ProcessId pid) const;

  /// The current map with LIVE generations: each published shard's entry
  /// carries its default-context generation as of this call, which is the
  /// value the expected-generation check compares against.  A shard whose
  /// handoff is still in flight stays published (requests to it fail fast
  /// with kNoReply and the client retries) so the map always covers the
  /// whole prefix space.
  [[nodiscard]] naming::ShardMap snapshot() const;

  // --- membership churn ----------------------------------------------------
  // Wire these to a v::fault schedule: plan.crash_at(t, fabric.host(i).id(),
  // [&]{ fabric.on_crash(i); }) and the restart twin.  The host itself is
  // already crashed/restarted by the plan when the callback runs.

  /// Shard `i`'s host died: start the handoff agent that replays its
  /// bindings into a successor shard and then publishes the new map.
  void on_crash(std::size_t i);

  /// Shard `i`'s host is back: respawn the server (fresh incarnation,
  /// fresh generation floor), publish a map that returns its range, then
  /// retire the successor's copies of the handed-off bindings.
  void on_restart(std::size_t i);

  struct ChurnStats {
    std::uint64_t handoffs = 0;
    std::uint64_t handbacks = 0;
    double last_handoff_ms = 0;   ///< agent start -> map republished
    double last_handback_ms = 0;  ///< restart -> cleanup complete
  };
  [[nodiscard]] const ChurnStats& churn_stats() const noexcept {
    return churn_;
  }

 private:
  friend class ShardPrefixServer;

  struct Shard {
    std::unique_ptr<ShardPrefixServer> server;
    ipc::Host* host = nullptr;
    ipc::ProcessId pid;
    std::string lo;       ///< current inclusive lower bound
    std::string home_lo;  ///< lower bound of the shard's own range
    bool published = true;
    std::vector<Binding> home;  ///< the shard's own bindings
  };

  /// Successor for a dying shard: the published live shard preceding it in
  /// lo order, else the following one (which then inherits `lo`).
  [[nodiscard]] std::size_t successor_of(std::size_t i) const;
  void complete_handoff(std::size_t i, std::size_t succ, double took_ms);
  void complete_handback(std::size_t succ, double took_ms);

  ipc::Domain& dom_;
  Config cfg_;
  std::vector<Shard> shards_;
  std::uint32_t version_ = 0;
  std::size_t absorbed_by_ = 0;  ///< successor of the in-churn shard
  ChurnStats churn_;
};

}  // namespace v::servers
