#include "ipc/kernel.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace v::ipc {

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

detail::ProcessRecord& Process::record() const {
  auto* rec = domain_->find(pid_);
  V_CHECK(rec != nullptr);
  return *rec;
}

std::shared_ptr<sim::FiberState> Process::fiber_state() const {
  auto& rec = record();
  return rec.fiber ? rec.fiber->state() : nullptr;
}

sim::SimTime Process::now() const noexcept { return domain_->now(); }

const CalibrationParams& Process::params() const noexcept {
  return domain_->params();
}

sim::DelayAwaiter Process::delay(sim::SimDuration d) const {
  return sim::DelayAwaiter(domain_->loop(), d, fiber_state());
}

sim::Co<msg::Message> Process::send(msg::Message request, ProcessId dest,
                                    Segments segments) {
  auto& rec = record();
  V_CHECK(!rec.awaiting_reply);  // V processes have one outstanding send
  rec.awaiting_reply = true;
  rec.blocked_on = dest;
  rec.exposed = segments;
  ++rec.send_seq;
  ++domain_->stats_.messages_sent;
  if (!dest.local_to(host_id())) ++domain_->stats_.remote_messages;
  Envelope env{pid_, request, segments, {}, {}};
#if V_TRACE_ENABLED
  if (auto& tr = domain_->tracer(); tr.active()) {
    env.trace.trace_id = tr.begin_trace();
    const std::uint32_t root =
        tr.begin_span(env.trace.trace_id, 0,
                      "send " + obs::opcode_label(request.code()), "send",
                      pid_.raw, domain_->now());
    tr.set_process_label(pid_.raw, rec.name);
    tr.note_send(pid_.raw, root);
    env.trace.parent_span = root;
  }
#endif
  domain_->deliver(host_id(), std::move(env), dest);
  co_await sim::ParkAwaiter(rec.reply_waker, fiber_state());
  co_return rec.reply;
}

sim::Co<msg::Message> Process::send_to_group(msg::Message request,
                                             GroupId group,
                                             Segments segments) {
  auto& rec = record();
  V_CHECK(!rec.awaiting_reply);
  rec.awaiting_reply = true;
  rec.blocked_on = ProcessId::invalid();  // no single holder; timeout covers
  rec.exposed = segments;
  const auto seq = ++rec.send_seq;

  Envelope proto{pid_, request, segments, {}, {}};
#if V_TRACE_ENABLED
  if (auto& tr = domain_->tracer(); tr.active()) {
    proto.trace.trace_id = tr.begin_trace();
    const std::uint32_t root =
        tr.begin_span(proto.trace.trace_id, 0,
                      "send-group " + obs::opcode_label(request.code()),
                      "send", pid_.raw, domain_->now());
    tr.set_process_label(pid_.raw, rec.name);
    tr.note_send(pid_.raw, root);
    proto.trace.parent_span = root;
  }
#endif
  std::size_t delivered = 0;
  auto it = domain_->groups_.find(group);
  if (it != domain_->groups_.end()) {
    for (ProcessId member : it->second) {
      if (member == pid_ || !domain_->process_alive(member)) continue;
      domain_->deliver(host_id(), proto, member,
                       /*synth_on_dead=*/false);
      ++delivered;
    }
  }
  // First reply wins; this timeout fires only if nothing answered this send.
  Domain* dom = domain_;
  const ProcessId me = pid_;
  domain_->loop().schedule_after(
      delivered == 0 ? params().getpid_local : params().group_timeout,
      [dom, me, seq] {
        auto* r = dom->find(me);
        if (r != nullptr && r->alive && r->awaiting_reply &&
            r->send_seq == seq) {
          dom->complete_reply(me, msg::make_reply(ReplyCode::kTimeout));
        }
      });
  co_await sim::ParkAwaiter(rec.reply_waker, fiber_state());
  co_return rec.reply;
}

sim::Co<Envelope> Process::receive() {
  auto& rec = record();
  while (rec.mailbox.empty()) {
    rec.waiting_receive = true;
    co_await sim::ParkAwaiter(rec.recv_waker, fiber_state());
  }
  Envelope env = std::move(rec.mailbox.front());
  rec.mailbox.pop_front();
  co_return env;
}

void Process::reply(const msg::Message& reply_msg, ProcessId to) {
  ++domain_->stats_.replies_sent;
  domain_->deliver_reply(host_id(), reply_msg, to, pid_);
}

void Process::reply_with_hint(const msg::Message& reply_msg, ProcessId to,
                              const BindingHint& hint,
                              const BindingHint& origin) {
  ++domain_->stats_.replies_sent;
  domain_->deliver_reply(host_id(), reply_msg, to, pid_, hint, origin);
}

BindingHint Process::last_binding_hint() const { return record().reply_hint; }

BindingHint Process::last_origin_hint() const { return record().reply_origin; }

void Process::forward(const Envelope& env, ProcessId new_dest) {
  // "It appears as though the sender originally sent to the third process."
  ++domain_->stats_.forwards;
  ++domain_->stats_.messages_sent;
  if (!new_dest.local_to(host_id())) ++domain_->stats_.remote_messages;
  Envelope fwd{env.sender, env.request, env.segments, env.trace, env.origin};
  domain_->deliver(host_id(), std::move(fwd), new_dest);
}

void Process::forward_to_group(const Envelope& env, GroupId group) {
  ++domain_->stats_.forwards;
  std::size_t delivered = 0;
  auto it = domain_->groups_.find(group);
  if (it != domain_->groups_.end()) {
    for (ProcessId member : it->second) {
      if (!domain_->process_alive(member)) continue;
      Envelope fwd{env.sender, env.request, env.segments, env.trace,
                   env.origin};
      domain_->deliver(host_id(), std::move(fwd),
                       member, /*synth_on_dead=*/false);
      ++domain_->stats_.messages_sent;
      if (!member.local_to(host_id())) ++domain_->stats_.remote_messages;
      ++delivered;
    }
  }
  // Guard the blocked sender against a silent group: if its CURRENT send
  // is still outstanding after the timeout, answer kTimeout.  The send
  // sequence number distinguishes this send from any later one.
  Domain* dom = domain_;
  const ProcessId sender = env.sender;
  auto* sender_rec = dom->find(sender);
  if (sender_rec == nullptr) return;
  const std::uint64_t seq = sender_rec->send_seq;
  dom->loop().schedule_after(
      delivered == 0 ? params().local_hop : params().group_timeout,
      [dom, sender, seq] {
        auto* rec = dom->find(sender);
        if (rec != nullptr && rec->alive && rec->awaiting_reply &&
            rec->send_seq == seq) {
          dom->complete_reply(sender, msg::make_reply(ReplyCode::kTimeout));
        }
      });
}

sim::Co<Result<std::size_t>> Process::move_from(ProcessId src,
                                                std::span<std::byte> dest,
                                                std::size_t offset) {
  ++domain_->stats_.moves;
  domain_->stats_.bytes_moved += dest.size();
  const bool local = src.local_to(host_id());
  co_await delay(params().move_from_cost(dest.size(), local));
  auto* srec = domain_->find(src);  // validate after the transfer time
  if (srec == nullptr || !srec->alive || !srec->awaiting_reply) {
    co_return ReplyCode::kNoReply;
  }
  const auto seg = srec->exposed.read;
  if (offset + dest.size() > seg.size()) co_return ReplyCode::kBadArgs;
  if (!dest.empty()) {
    std::memcpy(dest.data(), seg.data() + offset, dest.size());
  }
  co_return dest.size();
}

sim::Co<Result<std::size_t>> Process::move_to(ProcessId dest,
                                              std::span<const std::byte> src,
                                              std::size_t offset) {
  ++domain_->stats_.moves;
  domain_->stats_.bytes_moved += src.size();
  const bool local = dest.local_to(host_id());
  co_await delay(params().move_to_cost(src.size(), local));
  auto* drec = domain_->find(dest);
  if (drec == nullptr || !drec->alive || !drec->awaiting_reply) {
    co_return ReplyCode::kNoReply;
  }
  const auto seg = drec->exposed.write;
  if (offset + src.size() > seg.size()) co_return ReplyCode::kBadArgs;
  if (!src.empty()) {
    std::memcpy(seg.data() + offset, src.data(), src.size());
  }
  co_return src.size();
}

void Process::set_pid(ServiceId service, ProcessId pid, Scope scope) {
  auto& hosts = domain_->hosts_;
  const HostId target = pid.logical_host();
  V_CHECK(target >= 1 && target <= hosts.size());
  hosts[target - 1]->register_service(service, pid, scope);
}

sim::Co<ProcessId> Process::get_pid(ServiceId service, Scope scope) {
  co_await delay(params().getpid_local);
  auto& hosts = domain_->hosts_;
  const HostId here = host_id();
  if (scope != Scope::kRemote) {
    const ProcessId p = hosts[here - 1]->lookup_local(service);
    if (p.valid() && domain_->process_alive(p)) co_return p;
  }
  if (scope != Scope::kLocal) {
    co_await delay(params().broadcast_query);
    for (const auto& host : hosts) {
      if (host->id() == here || !host->alive()) continue;
      const ProcessId p = host->lookup_remote(service);
      if (p.valid() && domain_->process_alive(p)) co_return p;
    }
  }
  co_return ProcessId::invalid();
}

void Process::join_group(GroupId group) {
  auto& members = domain_->groups_[group];
  for (ProcessId m : members) {
    if (m == pid_) return;
  }
  members.push_back(pid_);
}

void Process::leave_group(GroupId group) {
  auto it = domain_->groups_.find(group);
  if (it == domain_->groups_.end()) return;
  std::erase(it->second, pid_);
}

// ---------------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------------

Host::Host(Domain& domain, HostId id, std::string name)
    : domain_(domain), id_(id), name_(std::move(name)) {
  // Paper section 4.2: "process identifiers are always allocated randomly".
  next_local_pid_ = static_cast<std::uint16_t>(
      domain_.rng().uniform(1, 0xefff));
}

ProcessId Host::spawn(std::string name,
                      std::function<sim::Co<void>(Process)> body) {
  V_CHECK(alive_);
  auto& rec = domain_.create_record(*this, std::move(name));
  Process handle(&domain_, rec.pid);
  std::string label = rec.name;
  Domain* dom = &domain_;
  rec.body_keepalive = std::move(body);
  rec.fiber.emplace(rec.body_keepalive(handle),
                    [dom, label](std::exception_ptr error) {
    if (error) {
      ++dom->failures_;
      if (dom->first_failure_.empty()) {
        try {
          std::rethrow_exception(error);
        } catch (const std::exception& e) {
          dom->first_failure_ = label + ": " + e.what();
        } catch (...) {
          dom->first_failure_ = label + ": unknown exception";
        }
      }
    }
  });
  // Stamp the fiber with its pid so the ambient context (VLOG prefixes,
  // event-loop profiling) can attribute work to the simulated process.
  rec.fiber->state()->pid = rec.pid.raw;
  auto* recp = &rec;
  domain_.loop().schedule_after(0, [recp] {
    if (recp->alive && recp->fiber) recp->fiber->start();
  });
  ++spawned_;
  return rec.pid;
}

std::vector<ProcessId> Host::spawn_team(
    const std::string& base, std::size_t count,
    std::function<sim::Co<void>(Process, std::size_t)> body) {
  std::vector<ProcessId> members;
  members.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    members.push_back(spawn(base + "." + std::to_string(i),
                            [body, i](Process p) { return body(p, i); }));
  }
  return members;
}

void Host::crash() {
  if (!alive_) return;
  alive_ = false;
  services_.clear();
  for (auto& rec : domain_.records_) {
    if (rec->host == this && rec->alive) domain_.kill_process(*rec);
  }
  // Sweep: senders anywhere in the domain blocked on a process that just
  // died get a synthesized kNoReply (transport-level failure detection).
  for (auto& rec : domain_.records_) {
    if (rec->alive && rec->awaiting_reply &&
        rec->blocked_on.valid() && rec->blocked_on.logical_host() == id_) {
      domain_.synth_reply(rec->pid, ReplyCode::kNoReply);
    }
  }
}

void Host::restart() {
  V_CHECK(!alive_);
  alive_ = true;
}

void Host::register_service(ServiceId service, ProcessId pid, Scope scope) {
  services_[service] = detail::Registration{pid, scope};
}

ProcessId Host::lookup_local(ServiceId service) const {
  auto it = services_.find(service);
  if (it == services_.end()) return ProcessId::invalid();
  if (it->second.scope == Scope::kRemote) return ProcessId::invalid();
  return it->second.pid;
}

ProcessId Host::lookup_remote(ServiceId service) const {
  auto it = services_.find(service);
  if (it == services_.end()) return ProcessId::invalid();
  if (it->second.scope == Scope::kLocal) return ProcessId::invalid();
  return it->second.pid;
}

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

Domain::Domain(CalibrationParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  // Typical installations run tens of processes; teams multiply that.
  // Reserving up front keeps record creation out of rehash/regrow churn,
  // but stays modest so that cheap throwaway domains (unit tests,
  // micro-benchmarks) don't pay for a big empty bucket array.
  records_.reserve(64);
  by_pid_.reserve(64);
#if V_TRACE_ENABLED
  // Mirror the kernel's own counters into the metrics registry as callback
  // entries, so one snapshot (JSON or a [metrics] Read) covers everything.
  // DomainStats stays the source of truth — existing accessors unchanged.
  auto mirror = [this](const char* scope, const char* name,
                       const std::uint64_t* field) {
    metrics_.register_callback(scope, name, [field] {
      return static_cast<double>(*field);
    });
  };
  mirror("ipc", "messages_sent", &stats_.messages_sent);
  mirror("ipc", "replies_sent", &stats_.replies_sent);
  mirror("ipc", "forwards", &stats_.forwards);
  mirror("ipc", "remote_messages", &stats_.remote_messages);
  mirror("ipc", "moves", &stats_.moves);
  mirror("ipc", "bytes_moved", &stats_.bytes_moved);
  const auto& lc = lint_.counters();
  mirror("lint", "requests_checked", &lc.requests_checked);
  mirror("lint", "replies_checked", &lc.replies_checked);
  mirror("lint", "client_rejects", &lc.client_rejects);
  mirror("lint", "server_violations", &lc.server_violations);
  mirror("lint", "stale_context_forwards", &lc.stale_context_forwards);
  mirror("lint", "invalid_context_requests", &lc.invalid_context_requests);
  metrics_.register_callback("loop", "events_executed", [this] {
    return static_cast<double>(loop_.events_executed());
  });
  metrics_.register_callback("loop", "sim_time_ms", [this] {
    return static_cast<double>(loop_.now()) / 1e6;
  });
  metrics_.register_callback("loop", "wall_ns", [this] {
    return static_cast<double>(loop_.stats().wall_ns);
  });
  metrics_.register_callback("loop", "wall_vs_sim", [this] {
    return loop_.wall_vs_sim();
  });
  mirror("loop", "negative_delay_clamps",
         &loop_.stats().negative_delay_clamps);
#endif
}

Domain::~Domain() = default;

Host& Domain::add_host(std::string name) {
  const auto id = static_cast<HostId>(hosts_.size() + 1);
  hosts_.push_back(std::make_unique<Host>(*this, id, std::move(name)));
  return *hosts_.back();
}

std::string Domain::process_name(ProcessId pid) const {
  const auto* rec = find(pid);
  return rec != nullptr ? rec->name : std::string{};
}

bool Domain::process_alive(ProcessId pid) const {
  const auto* rec = find(pid);
  return rec != nullptr && rec->alive;
}

detail::ProcessRecord* Domain::find(ProcessId pid) {
  auto it = by_pid_.find(pid.raw);
  return it != by_pid_.end() ? it->second : nullptr;
}

const detail::ProcessRecord* Domain::find(ProcessId pid) const {
  auto it = by_pid_.find(pid.raw);
  return it != by_pid_.end() ? it->second : nullptr;
}

detail::ProcessRecord& Domain::create_record(Host& host, std::string name) {
  // Allocate a fresh local pid, skipping ones still in the table (records
  // are retained after death, which also maximizes time-before-reuse).
  std::uint16_t local = host.next_local_pid_;
  ProcessId pid;
  for (;;) {
    if (local == 0) local = 1;
    pid = ProcessId::make(host.id(), local);
    ++local;
    if (by_pid_.find(pid.raw) == by_pid_.end()) break;
  }
  host.next_local_pid_ = local;

  auto rec = std::make_unique<detail::ProcessRecord>();
  rec->pid = pid;
  rec->name = std::move(name);
  rec->host = &host;
  auto* raw = rec.get();
  records_.push_back(std::move(rec));
  by_pid_[pid.raw] = raw;
  return *raw;
}

void Domain::deliver(HostId from_host, Envelope env, ProcessId dest) {
  deliver(from_host, std::move(env), dest, /*synth_on_dead=*/true);
}

void Domain::deliver(HostId from_host, Envelope env, ProcessId dest,
                     bool synth_on_dead) {
  const bool local = dest.local_to(from_host);
  loop_.schedule_after(
      params_.hop(local),
      [this, env = std::move(env), dest, synth_on_dead]() mutable {
        auto* rec = find(dest);
        if (rec == nullptr || !rec->alive) {
          if (synth_on_dead) synth_reply(env.sender, ReplyCode::kNoReply);
          return;
        }
        // Protocol lint (V-check layer 2): validate the header invariants
        // before the server ever sees the message.  Malformed requests are
        // rejected here with a synthesized error reply, exactly as a
        // conformant server would answer, plus a decoded dump for triage.
        if (const auto reject = lint_.check_request(
                env.request, env.sender.raw, env.segments.read.size(),
                dest.raw, static_cast<std::uint64_t>(loop_.now()))) {
          synth_reply(env.sender, *reject);
          return;
        }
        // Track where the blocked sender's request currently lives so crash
        // sweeps can find it (updated again on each forward delivery).
        if (auto* sender = find(env.sender); sender != nullptr) {
          sender->blocked_on = dest;
        }
#if V_TRACE_ENABLED
        // Queue-wait measurement starts the moment the message lands in the
        // receiver's mailbox (the hop delay itself is not queue time).
        if (env.trace.trace_id != 0) env.trace.enqueued_at = loop_.now();
#endif
        rec->mailbox.push_back(std::move(env));
        if (rec->waiting_receive && rec->recv_waker.armed()) {
          rec->waiting_receive = false;
          rec->recv_waker.wake(loop_);
        }
      });
}

void Domain::deliver_reply(HostId from_host, msg::Message reply,
                           ProcessId to, ProcessId from,
                           const BindingHint& hint,
                           const BindingHint& origin) {
  // Protocol lint: replies from registered server-team pids must carry a
  // standard reply code.  Violations are recorded but still delivered.
  lint_.check_reply(reply, from.raw, to.raw,
                    static_cast<std::uint64_t>(loop_.now()));
  const bool local = to.local_to(from_host);
  loop_.schedule_after(params_.hop(local), [this, reply, to, hint, origin] {
    complete_reply(to, reply, hint, origin);
  });
}

void Domain::synth_reply(ProcessId to, ReplyCode code) {
  loop_.schedule_after(params_.local_hop, [this, to, code] {
    complete_reply(to, msg::make_reply(code));
  });
}

void Domain::complete_reply(ProcessId to, const msg::Message& reply,
                            const BindingHint& hint,
                            const BindingHint& origin) {
  auto* rec = find(to);
  if (rec == nullptr || !rec->alive || !rec->awaiting_reply) {
    return;  // late/duplicate reply (e.g. second group answer): discarded
  }
  rec->awaiting_reply = false;
  rec->blocked_on = ProcessId::invalid();
  rec->reply = reply;
  rec->reply_hint = hint;      // {} for unhinted and synthesized replies
  rec->reply_origin = origin;
#if V_TRACE_ENABLED
  // One outstanding Send per process, so the sender pid keys the open root
  // span; closing it here covers Reply, Forward chains and synthesized
  // replies alike.
  tracer_.end_send(to.raw, static_cast<std::uint16_t>(reply.code()),
                   loop_.now());
#endif
  if (rec->reply_waker.armed()) rec->reply_waker.wake(loop_);
}

#if V_TRACE_ENABLED
std::vector<Domain::FiberHotspot> Domain::top_fibers(std::size_t k) const {
  std::vector<FiberHotspot> rows;
  rows.reserve(records_.size());
  for (const auto& rec : records_) {
    if (!rec->fiber) continue;
    const auto state = rec->fiber->state();
    if (!state) continue;
    rows.push_back(FiberHotspot{rec->name, rec->pid.raw, state->dispatches,
                                state->wall_ns});
  }
  std::sort(rows.begin(), rows.end(),
            [](const FiberHotspot& a, const FiberHotspot& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.dispatches > b.dispatches;
            });
  if (rows.size() > k) rows.resize(k);
  return rows;
}
#endif

void Domain::kill_process(detail::ProcessRecord& rec) {
  rec.alive = false;
  rec.mailbox.clear();
  lint_.forget(rec.pid.raw);
  if (rec.fiber) {
    rec.fiber->kill();
    // Deliver the pending resume so the fiber can unwind.
    if (rec.recv_waker.armed()) rec.recv_waker.wake(loop_);
    if (rec.reply_waker.armed()) rec.reply_waker.wake(loop_);
  }
}

}  // namespace v::ipc
