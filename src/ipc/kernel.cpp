#include "ipc/kernel.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "msg/csname.hpp"
#include "sim/frame_pool.hpp"
#include "common/annotate.hpp"

namespace v::ipc {

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

V_HOT_PATH
detail::ProcessRecord& Process::record() const {
  auto* rec = domain_->find(pid_);
  V_CHECK(rec != nullptr);
  return *rec;
}

V_HOT_PATH
sim::FiberState* Process::fiber_state() const {
  return record().fiber_state;
}

sim::SimTime Process::now() const noexcept { return domain_->now(); }

const CalibrationParams& Process::params() const noexcept {
  return domain_->params();
}

sim::DelayAwaiter Process::delay(sim::SimDuration d) const {
  return sim::DelayAwaiter(domain_->loop(), d, fiber_state());
}

V_HOT_PATH
sim::Co<msg::Message> Process::send(msg::Message request, ProcessId dest,
                                    Segments segments) {
  auto& rec = record();
  V_CHECK(!rec.awaiting_reply);  // V processes have one outstanding send
  rec.awaiting_reply = true;
  rec.blocked_on = dest;
  rec.exposed = segments;
  ++rec.send_seq;
  ++domain_->stats_.messages_sent;
  if (!dest.local_to(host_id())) ++domain_->stats_.remote_messages;
  Envelope env{pid_, request, segments, {}, {}, {},
               static_cast<std::uint32_t>(rec.send_seq), {}};
#if V_TRACE_ENABLED
  rec.send_started_at = domain_->now();
  rec.last_send_code = request.code();
  if (auto& tr = domain_->tracer(); tr.active()) {
    // Head-based sampling: the keep/skip decision is made HERE, once per
    // transaction, and rides the envelope — forwarded requests are traced
    // end-to-end or not at all.  Recovery probes are always kept: they
    // only exist because something already went wrong.
    if (msg::cs::is_recovery_probe(request) ||
        tr.sampler().decide(request.code())) {
      env.trace.set_sampled();
      env.trace.trace_id = tr.begin_trace();
      const std::uint32_t root =
          tr.begin_span(env.trace.trace_id, 0,
                        std::string("send ")
                            .append(obs::opcode_label(request.code())),
                        "send", pid_.raw, domain_->now());
      tr.set_process_label(pid_.raw, rec.name);
      tr.note_send(pid_.raw, root);
      env.trace.parent_span = root;
    }
  }
  domain_->flight_.record(host_id(), obs::FlightKind::kSend, domain_->now(),
                          pid_.raw, dest.raw, request.code(), rec.send_seq,
                          env.trace.sampled() ? 1 : 0);
  if (domain_->wd_threshold_ > 0 && !domain_->wd_armed_) {
    domain_->arm_watchdog(domain_->now() + domain_->wd_period_);
  }
#endif
#if V_FAULT_ENABLED
  // Reliable transactions: every send is covered, even when the FIRST hop
  // is local (never faulted) — the receptionist may forward the request
  // across the wire, and the lost forward or lost reply is then masked by
  // retransmitting to the first hop, whose duplicate table re-drives the
  // stored forward.
  if (domain_->fault_active()) {
    domain_->arm_retransmit(env, dest, rec.send_seq);
  }
#endif
  domain_->deliver(host_id(), std::move(env), dest);
  co_await sim::ParkAwaiter(rec.reply_waker, rec.fiber_state);
  co_return rec.reply;
}

sim::Co<msg::Message> Process::send_to_group(msg::Message request,
                                             GroupId group,
                                             Segments segments) {
  auto& rec = record();
  V_CHECK(!rec.awaiting_reply);
  rec.awaiting_reply = true;
  rec.blocked_on = ProcessId::invalid();  // no single holder; timeout covers
  rec.exposed = segments;
  const auto seq = ++rec.send_seq;

  Envelope proto{pid_, request, segments, {}, {}, {},
                 static_cast<std::uint32_t>(seq), {}};
#if V_TRACE_ENABLED
  rec.send_started_at = domain_->now();
  rec.last_send_code = request.code();
  if (auto& tr = domain_->tracer(); tr.active()) {
    // Same head decision as send(); see there.  Multicast recovery probes
    // (svc::Runtime rebinding) are the forced-on case that matters here.
    if (msg::cs::is_recovery_probe(request) ||
        tr.sampler().decide(request.code())) {
      proto.trace.set_sampled();
      proto.trace.trace_id = tr.begin_trace();
      const std::uint32_t root =
          tr.begin_span(proto.trace.trace_id, 0,
                        std::string("send-group ")
                            .append(obs::opcode_label(request.code())),
                        "send", pid_.raw, domain_->now());
      tr.set_process_label(pid_.raw, rec.name);
      tr.note_send(pid_.raw, root);
      proto.trace.parent_span = root;
    }
  }
  domain_->flight_.record(host_id(), obs::FlightKind::kSend, domain_->now(),
                          pid_.raw, static_cast<std::uint32_t>(group),
                          request.code(), seq,
                          proto.trace.sampled() ? 1 : 0);
  if (domain_->wd_threshold_ > 0 && !domain_->wd_armed_) {
    domain_->arm_watchdog(domain_->now() + domain_->wd_period_);
  }
#endif
  std::size_t delivered = 0;
  auto it = domain_->groups_.find(group);
  if (it != domain_->groups_.end()) {
    for (ProcessId member : it->second) {
      if (member == pid_ || !domain_->process_alive(member)) continue;
      domain_->deliver(host_id(), proto, member,
                       /*synth_on_dead=*/false);
      ++delivered;
    }
  }
  // First reply wins; this timeout fires only if nothing answered this send.
  Domain* dom = domain_;
  const ProcessId me = pid_;
  domain_->loop().schedule_after(
      delivered == 0 ? params().getpid_local : params().group_timeout,
      [dom, me, seq] {
        auto* r = dom->find(me);
        if (r != nullptr && r->alive && r->awaiting_reply &&
            r->send_seq == seq) {
          dom->complete_reply(me, msg::make_reply(ReplyCode::kTimeout));
        }
      });
  co_await sim::ParkAwaiter(rec.reply_waker, rec.fiber_state);
  co_return rec.reply;
}

sim::Co<Envelope> Process::receive() {
  auto& rec = record();
  while (rec.mbox_head == detail::kNilEnv) {
    rec.waiting_receive = true;
    co_await sim::ParkAwaiter(rec.recv_waker, rec.fiber_state);
  }
  const std::uint32_t slot = rec.mbox_head;
  auto& node = domain_->env_node(slot);
  rec.mbox_head = node.next;
  if (rec.mbox_head == detail::kNilEnv) rec.mbox_tail = detail::kNilEnv;
  Envelope env = std::move(node.env);
  domain_->env_release(slot);
  co_return env;
}

V_HOT_PATH
void Process::reply(const msg::Message& reply_msg, ProcessId to) {
  ++domain_->stats_.replies_sent;
  domain_->deliver_reply(host_id(), reply_msg, to, pid_);
}

V_HOT_PATH
void Process::reply_with_hint(const msg::Message& reply_msg, ProcessId to,
                              const BindingHint& hint,
                              const BindingHint& origin) {
  ++domain_->stats_.replies_sent;
  domain_->deliver_reply(host_id(), reply_msg, to, pid_, hint, origin);
}

BindingHint Process::last_binding_hint() const { return record().reply_hint; }

BindingHint Process::last_origin_hint() const { return record().reply_origin; }

void Process::forward(const Envelope& env, ProcessId new_dest) {
  // "It appears as though the sender originally sent to the third process."
  ++domain_->stats_.forwards;
  ++domain_->stats_.messages_sent;
  if (!new_dest.local_to(host_id())) ++domain_->stats_.remote_messages;
  // The forwarder will never reply to this request itself: settle its
  // outstanding-request ledger entry (duplicate-reply invariant).
  domain_->lint_.note_forwarded(env.addressed.raw, env.sender.raw);
#if V_TRACE_ENABLED
  domain_->flight_.record(host_id(), obs::FlightKind::kForward,
                          domain_->now(), pid_.raw, new_dest.raw,
                          env.request.code(), env.txn_seq,
                          env.trace.sampled() ? 1 : 0);
#endif
  // Copying env.name materializes it: the forwarded envelope carries an
  // OWNED copy of any fetched name bytes (the fetch-once attachment).
  Envelope fwd{env.sender, env.request, env.segments, env.name, env.trace,
               env.origin, env.txn_seq, env.addressed};
#if V_FAULT_ENABLED
  if (domain_->fault_active()) {
    domain_->note_forward(fwd, new_dest, /*group=*/0);
  }
#endif
  domain_->deliver(host_id(), std::move(fwd), new_dest);
}

void Process::forward_to_group(const Envelope& env, GroupId group) {
  ++domain_->stats_.forwards;
  domain_->lint_.note_forwarded(env.addressed.raw, env.sender.raw);
#if V_TRACE_ENABLED
  domain_->flight_.record(host_id(), obs::FlightKind::kForward,
                          domain_->now(), pid_.raw,
                          static_cast<std::uint32_t>(group),
                          env.request.code(), env.txn_seq,
                          env.trace.sampled() ? 1 : 0);
#endif
#if V_FAULT_ENABLED
  if (domain_->fault_active()) {
    Envelope noted{env.sender, env.request, env.segments, env.name,
                   env.trace, env.origin, env.txn_seq, env.addressed};
    domain_->note_forward(noted, ProcessId::invalid(), group);
  }
#endif
  std::size_t delivered = 0;
  auto it = domain_->groups_.find(group);
  if (it != domain_->groups_.end()) {
    for (ProcessId member : it->second) {
      if (!domain_->process_alive(member)) continue;
      Envelope fwd{env.sender, env.request, env.segments, env.name,
                   env.trace, env.origin, env.txn_seq, env.addressed};
      domain_->deliver(host_id(), std::move(fwd),
                       member, /*synth_on_dead=*/false);
      ++domain_->stats_.messages_sent;
      if (!member.local_to(host_id())) ++domain_->stats_.remote_messages;
      ++delivered;
    }
  }
  // Guard the blocked sender against a silent group: if its CURRENT send
  // is still outstanding after the timeout, answer kTimeout.  The send
  // sequence number distinguishes this send from any later one.
  Domain* dom = domain_;
  const ProcessId sender = env.sender;
  auto* sender_rec = dom->find(sender);
  if (sender_rec == nullptr) return;
  const std::uint64_t seq = sender_rec->send_seq;
  dom->loop().schedule_after(
      delivered == 0 ? params().local_hop : params().group_timeout,
      [dom, sender, seq] {
        auto* rec = dom->find(sender);
        if (rec != nullptr && rec->alive && rec->awaiting_reply &&
            rec->send_seq == seq) {
          dom->complete_reply(sender, msg::make_reply(ReplyCode::kTimeout));
        }
      });
}

V_BORROWS_SPAN
sim::Co<Result<std::size_t>> Process::move_from(ProcessId src,
                                                std::span<std::byte> dest,
                                                std::size_t offset,
                                                const Envelope* txn) {
  ++domain_->stats_.moves;
  domain_->stats_.bytes_moved += dest.size();
  const bool local = src.local_to(host_id());
  co_await delay(params().move_from_cost(dest.size(), local));
  auto* srec = domain_->find(src);  // validate after the transfer time
  if (srec == nullptr || !srec->alive || !srec->awaiting_reply) {
    co_return ReplyCode::kNoReply;
  }
  if (txn != nullptr &&
      static_cast<std::uint32_t>(srec->send_seq) != txn->txn_seq) {
    co_return ReplyCode::kNoReply;  // sender moved past this transaction
  }
  // The sender's logical read segment is the pair (read, read2) addressed
  // as one contiguous range; stitch the copy across the seam.
  const Segments& seg = srec->exposed;
  if (offset + dest.size() > seg.read_size()) co_return ReplyCode::kBadArgs;
  std::size_t copied = 0;
  if (offset < seg.read.size()) {
    copied = std::min(dest.size(), seg.read.size() - offset);
    if (copied != 0) {
      std::memcpy(dest.data(), seg.read.data() + offset, copied);
    }
  }
  if (copied < dest.size()) {
    const std::size_t off2 = offset + copied - seg.read.size();
    std::memcpy(dest.data() + copied, seg.read2.data() + off2,
                dest.size() - copied);
  }
  co_return dest.size();
}

V_BORROWS_SPAN
sim::Co<Result<std::string_view>> Process::fetch_name(
    Envelope& env, std::uint16_t name_len) {
  // Bit-identity contract: same delay, same schedule position and same
  // post-delay validation as the move_from every hop used to issue.  Only
  // the host-side copy (and the moves/bytes_moved counters, which track
  // real transfers) are elided on attached and borrowed reads.
  const bool local = env.sender.local_to(host_id());
  co_await delay(params().move_from_cost(name_len, local));
  auto* srec = domain_->find(env.sender);  // validate after the transfer time
  if (srec == nullptr || !srec->alive || !srec->awaiting_reply) {
    co_return ReplyCode::kNoReply;
  }
  if (static_cast<std::uint32_t>(srec->send_seq) != env.txn_seq) {
    co_return ReplyCode::kNoReply;  // sender moved past this transaction
  }
  if (env.name.size() >= name_len) {
    // A server earlier in the forward chain already fetched (and a
    // forwarding copy attached) the bytes: fetch-once pays off here.
    co_return std::string_view(env.name.data(), name_len);
  }
  const Segments& seg = srec->exposed;
  if (name_len > seg.read_size()) co_return ReplyCode::kBadArgs;
  if (local && name_len <= seg.read.size()) {
    // Same-host first fetch: borrow the sender's bytes in place (ledgered;
    // see name_span.hpp).  Zero bytes cross the simulated wire or the host
    // heap.
    env.name.borrow(reinterpret_cast<const char*>(seg.read.data()), name_len,
                    srec->borrow_head);
  } else {
    // Remote (or seam-straddling) first fetch: the one real copy of the
    // transaction — the only place the transfer counters tick.
    ++domain_->stats_.moves;
    domain_->stats_.bytes_moved += name_len;
    char* bytes = env.name.allocate(name_len);
    const std::size_t head = std::min<std::size_t>(name_len, seg.read.size());
    if (head != 0) std::memcpy(bytes, seg.read.data(), head);
    if (name_len > head) {
      std::memcpy(bytes + head, seg.read2.data(), name_len - head);
    }
  }
  co_return std::string_view(env.name.data(), name_len);
}

V_BORROWS_SPAN
sim::Co<Result<std::size_t>> Process::move_to(ProcessId dest,
                                              std::span<const std::byte> src,
                                              std::size_t offset,
                                              const Envelope* txn) {
  ++domain_->stats_.moves;
  domain_->stats_.bytes_moved += src.size();
  const bool local = dest.local_to(host_id());
  co_await delay(params().move_to_cost(src.size(), local));
  auto* drec = domain_->find(dest);
  if (drec == nullptr || !drec->alive || !drec->awaiting_reply) {
    co_return ReplyCode::kNoReply;
  }
  if (txn != nullptr &&
      static_cast<std::uint32_t>(drec->send_seq) != txn->txn_seq) {
    co_return ReplyCode::kNoReply;  // sender moved past this transaction
  }
  const auto seg = drec->exposed.write;
  if (offset + src.size() > seg.size()) co_return ReplyCode::kBadArgs;
  if (!src.empty()) {
    std::memcpy(seg.data() + offset, src.data(), src.size());
  }
  co_return src.size();
}

void Process::set_pid(ServiceId service, ProcessId pid, Scope scope) {
  auto& hosts = domain_->hosts_;
  const HostId target = pid.logical_host();
  V_CHECK(target >= 1 && target <= hosts.size());
  hosts[target - 1]->register_service(service, pid, scope);
}

sim::Co<ProcessId> Process::get_pid(ServiceId service, Scope scope) {
  co_await delay(params().getpid_local);
  auto& hosts = domain_->hosts_;
  const HostId here = host_id();
  if (scope != Scope::kRemote) {
    const ProcessId p = hosts[here - 1]->lookup_local(service);
    if (p.valid() && domain_->process_alive(p)) co_return p;
  }
  if (scope != Scope::kLocal) {
    co_await delay(params().broadcast_query);
    for (const auto& host : hosts) {
      if (host->id() == here || !host->alive()) continue;
      const ProcessId p = host->lookup_remote(service);
      if (p.valid() && domain_->process_alive(p)) co_return p;
    }
  }
  co_return ProcessId::invalid();
}

void Process::join_group(GroupId group) {
  auto& members = domain_->groups_[group];
  for (ProcessId m : members) {
    if (m == pid_) return;
  }
  members.push_back(pid_);
}

void Process::leave_group(GroupId group) {
  auto it = domain_->groups_.find(group);
  if (it == domain_->groups_.end()) return;
  std::erase(it->second, pid_);
}

// ---------------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------------

Host::Host(Domain& domain, HostId id, std::string name)
    : domain_(domain), id_(id), name_(std::move(name)) {
  // Paper section 4.2: "process identifiers are always allocated randomly".
  next_local_pid_ = static_cast<std::uint16_t>(
      domain_.rng().uniform(1, 0xefff));
}

ProcessId Host::spawn(std::string name,
                      std::function<sim::Co<void>(Process)> body) {
  V_CHECK(alive_);
  auto& rec = domain_.create_record(*this, std::move(name));
  Process handle(&domain_, rec.pid);
  std::string label = rec.name;
  Domain* dom = &domain_;
  rec.body_keepalive = std::move(body);
  rec.fiber.emplace(rec.body_keepalive(handle),
                    [dom, label](std::exception_ptr error) {
    if (error) {
      ++dom->failures_;
      if (dom->first_failure_.empty()) {
        try {
          std::rethrow_exception(error);
        } catch (const std::exception& e) {
          dom->first_failure_ = label + ": " + e.what();
        } catch (...) {
          dom->first_failure_ = label + ": unknown exception";
        }
      }
    }
  });
  // Stamp the fiber with its pid so the ambient context (VLOG prefixes,
  // event-loop profiling) can attribute work to the simulated process.
  rec.fiber->state()->pid = rec.pid.raw;
  rec.fiber_state = rec.fiber->state().get();
  auto* recp = &rec;
  domain_.loop().schedule_after(0, [recp] {
    if (recp->alive && recp->fiber) recp->fiber->start();
  });
  ++spawned_;
  return rec.pid;
}

std::vector<ProcessId> Host::spawn_team(
    const std::string& base, std::size_t count,
    std::function<sim::Co<void>(Process, std::size_t)> body) {
  std::vector<ProcessId> members;
  members.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    members.push_back(spawn(base + "." + std::to_string(i),
                            [body, i](Process p) { return body(p, i); }));
  }
  return members;
}

void Host::crash() {
  if (!alive_) return;
#if V_TRACE_ENABLED
  domain_.flight_.record(id_, obs::FlightKind::kHostDown,
                         domain_.loop().now(), 0, 0, /*code=*/0, 0);
#endif
  alive_ = false;
  paused_ = false;
  stash_.clear();  // packets queued behind a pause die with the host
  services_.clear();
  for (auto& rec : domain_.records_) {
    if (rec->host == this && rec->alive) domain_.kill_process(*rec);
  }
  // Sweep: senders anywhere in the domain blocked on a process that just
  // died get a synthesized kNoReply (transport-level failure detection).
  for (auto& rec : domain_.records_) {
    if (rec->alive && rec->awaiting_reply &&
        rec->blocked_on.valid() && rec->blocked_on.logical_host() == id_) {
      domain_.synth_reply(rec->pid, ReplyCode::kNoReply);
    }
  }
}

void Host::restart() {
  V_CHECK(!alive_);
  alive_ = true;
#if V_TRACE_ENABLED
  domain_.flight_.record(id_, obs::FlightKind::kHostUp,
                         domain_.loop().now(), 0, 0, /*code=*/0, 0);
#endif
}

void Host::pause() {
  if (!alive_) return;
  paused_ = true;
#if V_TRACE_ENABLED
  domain_.flight_.record(id_, obs::FlightKind::kHostDown,
                         domain_.loop().now(), 0, 0, /*code=*/1, 0);
#endif
}

void Host::resume() {
  if (!paused_) return;
  paused_ = false;
#if V_TRACE_ENABLED
  domain_.flight_.record(id_, obs::FlightKind::kHostUp,
                         domain_.loop().now(), 0, 0, /*code=*/1, 0);
#endif
  // Flush in arrival order; each packet lands via a fresh zero-delay event
  // so its guards (staleness, duplicate suppression) run at resume time.
  auto stash = std::move(stash_);
  stash_.clear();
  for (auto& packet : stash) {
    domain_.loop().schedule_after(0, std::move(packet));
  }
}

void Host::register_service(ServiceId service, ProcessId pid, Scope scope) {
  services_[service] = detail::Registration{pid, scope};
}

ProcessId Host::lookup_local(ServiceId service) const {
  auto it = services_.find(service);
  if (it == services_.end()) return ProcessId::invalid();
  if (it->second.scope == Scope::kRemote) return ProcessId::invalid();
  return it->second.pid;
}

ProcessId Host::lookup_remote(ServiceId service) const {
  auto it = services_.find(service);
  if (it == services_.end()) return ProcessId::invalid();
  if (it->second.scope == Scope::kLocal) return ProcessId::invalid();
  return it->second.pid;
}

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

Domain::Domain(CalibrationParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  // Typical installations run tens of processes; teams multiply that.
  // Reserving up front keeps record creation out of rehash/regrow churn,
  // but stays modest so that cheap throwaway domains (unit tests,
  // micro-benchmarks) don't pay for a big empty bucket array.
  records_.reserve(64);
  by_pid_.reserve(64);
#if V_TRACE_ENABLED
  // Mirror the kernel's own counters into the metrics registry as callback
  // entries, so one snapshot (JSON or a [metrics] Read) covers everything.
  // DomainStats stays the source of truth — existing accessors unchanged.
  auto mirror = [this](const char* scope, const char* name,
                       const std::uint64_t* field) {
    metrics_.register_callback(scope, name, [field] {
      return static_cast<double>(*field);
    });
  };
  mirror("ipc", "messages_sent", &stats_.messages_sent);
  mirror("ipc", "replies_sent", &stats_.replies_sent);
  mirror("ipc", "forwards", &stats_.forwards);
  mirror("ipc", "remote_messages", &stats_.remote_messages);
  mirror("ipc", "moves", &stats_.moves);
  mirror("ipc", "bytes_moved", &stats_.bytes_moved);
  const auto& lc = lint_.counters();
  mirror("lint", "requests_checked", &lc.requests_checked);
  mirror("lint", "replies_checked", &lc.replies_checked);
  mirror("lint", "client_rejects", &lc.client_rejects);
  mirror("lint", "server_violations", &lc.server_violations);
  mirror("lint", "stale_context_forwards", &lc.stale_context_forwards);
  mirror("lint", "invalid_context_requests", &lc.invalid_context_requests);
  metrics_.register_callback("loop", "events_executed", [this] {
    return static_cast<double>(loop_.events_executed());
  });
  metrics_.register_callback("loop", "sim_time_ms", [this] {
    return static_cast<double>(loop_.now()) / 1e6;
  });
  metrics_.register_callback("loop", "wall_ns", [this] {
    return static_cast<double>(loop_.stats().wall_ns);
  });
  metrics_.register_callback("loop", "wall_vs_sim", [this] {
    return loop_.wall_vs_sim();
  });
  mirror("loop", "negative_delay_clamps",
         &loop_.stats().negative_delay_clamps);
  // Timer-wheel internals (DESIGN.md §4i): cascade/promotion rates expose
  // scheduler load shape, the inline/heap split flags any closure that
  // outgrew the Action inline buffer and started allocating per event.
  mirror("loop", "wheel_cascades", &loop_.stats().wheel_cascades);
  mirror("loop", "overflow_promotions", &loop_.stats().overflow_promotions);
  mirror("loop", "actions_inline", &loop_.stats().actions_inline);
  mirror("loop", "actions_heap", &loop_.stats().actions_heap);
  // Coroutine-frame pool (process-wide, not per-domain: frames recycle
  // across domains in one process — fine for the single-domain runs that
  // read metrics).
  mirror("frames", "recycled", &sim::FramePool::instance().stats().frames_recycled);
  mirror("frames", "fresh", &sim::FramePool::instance().stats().frames_fresh);
  // V-blackbox: every event-loop dispatch becomes a kTimer record in the
  // domain ring (ring 0), so a post-mortem dump shows scheduler activity
  // between the IPC events.  Host-time cost only, bounded by the ring.
  loop_.set_fire_hook(
      [](void* ctx, sim::SimTime at) noexcept {
        static_cast<Domain*>(ctx)->flight_.record(
            0, obs::FlightKind::kTimer, at, 0, 0, 0, 0);
      },
      this);
  metrics_.register_callback("flight", "records", [this] {
    return static_cast<double>(flight_.records());
  });
  metrics_.register_callback("flight", "overwritten", [this] {
    return static_cast<double>(flight_.overwritten());
  });
  metrics_.register_callback("flight", "triggers", [this] {
    return static_cast<double>(flight_.triggers());
  });
  metrics_.register_callback("trace", "sampled", [this] {
    return static_cast<double>(tracer_.sampler().sampled());
  });
  metrics_.register_callback("trace", "skipped", [this] {
    return static_cast<double>(tracer_.sampler().skipped());
  });
#endif
}

Domain::~Domain() {
  // Teardown order safety: envelopes (slab slots, stashes, coroutine
  // frames) may still hold name spans borrowed from process records.  A
  // borrowed span's destructor unlinks itself from the lender's ledger —
  // a use-after-free if the record died first — so break every borrow now
  // (reset, not materialize: nothing reads name bytes during teardown, and
  // the lender's frame may already be gone).  After this loop no span
  // points into a record and the members can die in any order.
  for (auto& rec : records_) {
    while (rec->borrow_head != nullptr) rec->borrow_head->reset();
  }
}

void Domain::grow_env_slab() {
  // vlint: allow(hot-path-alloc): slab growth, amortized over 512 reuses
  auto chunk = std::make_unique<detail::EnvNode[]>(1u << kEnvChunkBits);
  const auto base =
      static_cast<std::uint32_t>(env_chunks_.size()) << kEnvChunkBits;
  env_chunks_.push_back(std::move(chunk));
  // Thread the fresh chunk onto the free list, last slot first, so slots
  // hand out in ascending index order.
  for (std::uint32_t i = 1u << kEnvChunkBits; i-- > 0;) {
    detail::EnvNode& node = env_node(base + i);
    node.next = env_free_;
    env_free_ = base + i;
  }
}

Host& Domain::add_host(std::string name) {
  const auto id = static_cast<HostId>(hosts_.size() + 1);
  hosts_.push_back(std::make_unique<Host>(*this, id, std::move(name)));
#if V_TRACE_ENABLED
  flight_.attach_host(id, hosts_.back()->name());
#endif
  return *hosts_.back();
}

std::string Domain::process_name(ProcessId pid) const {
  const auto* rec = find(pid);
  return rec != nullptr ? rec->name : std::string{};
}

bool Domain::process_alive(ProcessId pid) const {
  const auto* rec = find(pid);
  return rec != nullptr && rec->alive;
}

V_HOT_PATH
detail::ProcessRecord* Domain::find(ProcessId pid) {
  auto it = by_pid_.find(pid.raw);
  return it != by_pid_.end() ? it->second : nullptr;
}

V_HOT_PATH
const detail::ProcessRecord* Domain::find(ProcessId pid) const {
  auto it = by_pid_.find(pid.raw);
  return it != by_pid_.end() ? it->second : nullptr;
}

detail::ProcessRecord& Domain::create_record(Host& host, std::string name) {
  // Allocate a fresh local pid, skipping ones still in the table (records
  // are retained after death, which also maximizes time-before-reuse).
  std::uint16_t local = host.next_local_pid_;
  ProcessId pid;
  for (;;) {
    if (local == 0) local = 1;
    pid = ProcessId::make(host.id(), local);
    ++local;
    if (by_pid_.find(pid.raw) == by_pid_.end()) break;
  }
  host.next_local_pid_ = local;

  auto rec = std::make_unique<detail::ProcessRecord>();
  rec->pid = pid;
  rec->name = std::move(name);
  rec->host = &host;
  auto* raw = rec.get();
  records_.push_back(std::move(rec));
  by_pid_[pid.raw] = raw;
  return *raw;
}

V_HOT_PATH
void Domain::deliver(HostId from_host, Envelope env, ProcessId dest) {
  deliver(from_host, std::move(env), dest, /*synth_on_dead=*/true);
}

V_HOT_PATH
void Domain::deliver(HostId from_host, Envelope env, ProcessId dest,
                     bool synth_on_dead) {
  const bool local = dest.local_to(from_host);
  sim::SimDuration hop = params_.hop(local);
#if V_FAULT_ENABLED
  // Link faults apply to remote packets only: local IPC never crosses the
  // wire (and MoveFrom/MoveTo model bulk transfer separately).
  if (fault_plan_ != nullptr && !local) {
    const fault::PacketDecision verdict =
        fault_plan_->on_packet(from_host, dest.logical_host());
    if (verdict.duplicate) {
#if V_TRACE_ENABLED
      flight_.record(dest.logical_host(), obs::FlightKind::kFaultDup,
                     loop_.now(), env.sender.raw, dest.raw,
                     env.request.code(), env.txn_seq,
                     env.trace.sampled() ? 1 : 0);
#endif
      // The duplicate copy never synthesizes kNoReply: it is extra traffic,
      // not the transaction's packet of record.
      const std::uint32_t dup_slot = env_acquire();
      env_node(dup_slot).env = env;
      loop_.schedule_after(hop + verdict.extra_delay + verdict.dup_delay,
                           [this, dup_slot, dest] {
                             arrive_slot(dup_slot, dest,
                                         /*synth_on_dead=*/false);
                           });
    }
    if (verdict.drop) {  // retransmission masks the loss
#if V_TRACE_ENABLED
      flight_.record(dest.logical_host(), obs::FlightKind::kFaultDrop,
                     loop_.now(), env.sender.raw, dest.raw,
                     env.request.code(), env.txn_seq,
                     env.trace.sampled() ? 1 : 0);
#endif
      return;
    }
    hop += verdict.extra_delay;
  }
#endif
  // Park the envelope in the slab and schedule a slot-index closure: the
  // capture is 24 bytes no matter how fat Envelope grows, so the delivery
  // event always stays inside the event loop's inline action buffer.
  const std::uint32_t slot = env_acquire();
  env_node(slot).env = std::move(env);
  loop_.schedule_after(hop, [this, slot, dest, synth_on_dead] {
    arrive_slot(slot, dest, synth_on_dead);
  });
}

V_HOT_PATH
void Domain::arrive_slot(std::uint32_t slot, ProcessId dest,
                         bool synth_on_dead) {
  auto* rec = find(dest);
  Envelope& env = env_node(slot).env;
#if V_FAULT_ENABLED
  // A paused host neither accepts nor loses packets: they queue until
  // resume() and land through this same gate (so all guards re-run then).
  // The envelope leaves the slab for the stash (cold path) so a crash's
  // stash_.clear() can never leak a slot.
  if (rec != nullptr && rec->host != nullptr && rec->host->paused_) {
    rec->host->stash_.push_back(
        [this, env = std::move(env), dest, synth_on_dead]() mutable {
          arrive(std::move(env), dest, synth_on_dead);
        });
    env_release(slot);
    return;
  }
#endif
  if (rec == nullptr || !rec->alive) {
    // vlint: allow(hot-path-alloc): dead-destination reply, off the hot delivery path
    if (synth_on_dead) synth_reply(env.sender, ReplyCode::kNoReply);
    env_release(slot);
    return;
  }
#if V_FAULT_ENABLED
  if (fault_plan_ != nullptr) {
    // Transaction staleness: if the sender has moved past this transaction
    // (answered by a retransmit, or gave up), the copy answers nothing —
    // processing it could only produce a reply no one is waiting for.
    if (auto* sender = find(env.sender);
        sender != nullptr &&
        (!sender->awaiting_reply ||
         static_cast<std::uint32_t>(sender->send_seq) != env.txn_seq)) {
      env_release(slot);
      return;
    }
    // At-most-once: a duplicate of a transaction this server has already
    // seen is suppressed, re-driven or replayed — never re-executed.
    if (suppress_duplicate(*rec, env)) {
      env_release(slot);
      return;
    }
  }
#endif
  // Protocol lint (V-check layer 2): validate the header invariants
  // before the server ever sees the message.  Malformed requests are
  // rejected here with a synthesized error reply, exactly as a
  // conformant server would answer, plus a decoded dump for triage.
  if (const auto reject = lint_.check_request(
          env.request, env.sender.raw, env.segments.read_size(), dest.raw,
          static_cast<std::uint64_t>(loop_.now()))) {
    // vlint: allow(hot-path-alloc): malformed-request reject, off the hot delivery path
    synth_reply(env.sender, *reject);
    env_release(slot);
    return;
  }
  // Track where the blocked sender's request currently lives so crash
  // sweeps can find it (updated again on each forward delivery).
  if (auto* sender = find(env.sender); sender != nullptr) {
    sender->blocked_on = dest;
  }
#if V_TRACE_ENABLED
  // Queue-wait measurement starts the moment the message lands in the
  // receiver's mailbox (the hop delay itself is not queue time).
  if (env.trace.trace_id != 0) env.trace.enqueued_at = loop_.now();
#endif
  env.addressed = dest;
  // Accepted: link the slot onto the destination's intrusive mailbox FIFO.
  detail::EnvNode& node = env_node(slot);
  node.next = detail::kNilEnv;
  if (rec->mbox_tail == detail::kNilEnv) {
    rec->mbox_head = slot;
  } else {
    env_node(rec->mbox_tail).next = slot;
  }
  rec->mbox_tail = slot;
  if (rec->waiting_receive && rec->recv_waker.armed()) {
    rec->waiting_receive = false;
    rec->recv_waker.wake(loop_);
  }
}

void Domain::arrive(Envelope env, ProcessId dest, bool synth_on_dead) {
  const std::uint32_t slot = env_acquire();
  env_node(slot).env = std::move(env);
  arrive_slot(slot, dest, synth_on_dead);
}

V_HOT_PATH
void Domain::deliver_reply(HostId from_host, msg::Message reply,
                           ProcessId to, ProcessId from,
                           const BindingHint& hint,
                           const BindingHint& origin) {
  // Protocol lint: replies from registered server-team pids must carry a
  // standard reply code.  Violations are recorded but still delivered.
  lint_.check_reply(reply, from.raw, to.raw,
                    static_cast<std::uint64_t>(loop_.now()));
  std::uint32_t answered_seq = 0;
#if V_FAULT_ENABLED
  if (fault_plan_ != nullptr) {
    // Close the transaction slot this reply answers, caching the reply so
    // duplicate requests replay it instead of re-executing.
    answered_seq = record_served_reply(to, reply, hint, origin);
  }
#endif
  send_reply_packet(from_host, reply, to, hint, origin, answered_seq);
}

V_HOT_PATH
void Domain::send_reply_packet(HostId from_host, const msg::Message& reply,
                               ProcessId to, const BindingHint& hint,
                               const BindingHint& origin,
                               std::uint32_t answered_seq) {
  const bool local = to.local_to(from_host);
  sim::SimDuration hop = params_.hop(local);
#if V_FAULT_ENABLED
  if (fault_plan_ != nullptr && !local) {
    const fault::PacketDecision verdict =
        fault_plan_->on_packet(from_host, to.logical_host());
    if (verdict.duplicate) {
#if V_TRACE_ENABLED
      flight_.record(to.logical_host(), obs::FlightKind::kFaultDup,
                     loop_.now(), to.raw, 0,
                     static_cast<std::uint16_t>(reply.code()), answered_seq);
#endif
      loop_.schedule_after(
          hop + verdict.extra_delay + verdict.dup_delay,
          [this, reply, to, hint, origin, answered_seq] {
            arrive_reply(to, reply, hint, origin, answered_seq);
          });
    }
    if (verdict.drop) {  // the client's retransmit re-earns the reply
#if V_TRACE_ENABLED
      flight_.record(to.logical_host(), obs::FlightKind::kFaultDrop,
                     loop_.now(), to.raw, 0,
                     static_cast<std::uint16_t>(reply.code()), answered_seq);
#endif
      return;
    }
    hop += verdict.extra_delay;
  }
#endif
  loop_.schedule_after(hop, [this, reply, to, hint, origin, answered_seq] {
    arrive_reply(to, reply, hint, origin, answered_seq);
  });
}

V_HOT_PATH
void Domain::arrive_reply(ProcessId to, const msg::Message& reply,
                          const BindingHint& hint, const BindingHint& origin,
                          std::uint32_t answered_seq) {
#if V_FAULT_ENABLED
  auto* rec = find(to);
  if (rec != nullptr && rec->host != nullptr && rec->host->paused_) {
    rec->host->stash_.push_back([this, to, reply, hint, origin,
                                 answered_seq] {
      arrive_reply(to, reply, hint, origin, answered_seq);
    });
    return;
  }
  // A tracked reply must answer the sender's CURRENT transaction: a late
  // copy of an earlier transaction's reply (duplicated in flight, or the
  // client already gave up and moved on) must not complete a newer send.
  if (answered_seq != 0 &&
      (rec == nullptr ||
       static_cast<std::uint32_t>(rec->send_seq) != answered_seq)) {
    if (fault_plan_ != nullptr) {
      ++fault_plan_->stats().stale_replies_dropped;
    }
    return;
  }
#endif
  complete_reply(to, reply, hint, origin);
}

void Domain::synth_reply(ProcessId to, ReplyCode code) {
  loop_.schedule_after(params_.local_hop, [this, to, code] {
    complete_reply(to, msg::make_reply(code));
  });
}

V_HOT_PATH
void Domain::complete_reply(ProcessId to, const msg::Message& reply,
                            const BindingHint& hint,
                            const BindingHint& origin) {
  auto* rec = find(to);
  if (rec == nullptr || !rec->alive || !rec->awaiting_reply) {
    return;  // late/duplicate reply (e.g. second group answer): discarded
  }
  rec->awaiting_reply = false;
  rec->blocked_on = ProcessId::invalid();
  rec->reply = reply;
  rec->reply_hint = hint;      // {} for unhinted and synthesized replies
  rec->reply_origin = origin;
#if V_TRACE_ENABLED
  if (rec->send_started_at >= 0) {
    const sim::SimTime now = loop_.now();
    const sim::SimDuration took = now - rec->send_started_at;
    slo_.observe(rec->last_send_code, took);
    flight_.record(to.logical_host(), obs::FlightKind::kReply, now, to.raw,
                   0, static_cast<std::uint16_t>(reply.code()),
                   static_cast<std::uint64_t>(took));
    // Tail mark for anomalies head sampling skipped: a failed send with
    // no open root span (unsampled) still leaves a closed "mark" span.
    if (tracer_.active() && reply.reply_code() != ReplyCode::kOk &&
        tracer_.open_send(to.raw) == 0) {
      tracer_.note_error_reply(to.raw,
                               static_cast<std::uint16_t>(reply.code()),
                               rec->send_started_at, now);
    }
    rec->send_started_at = -1;
  }
  // One outstanding Send per process, so the sender pid keys the open root
  // span; closing it here covers Reply, Forward chains and synthesized
  // replies alike.
  tracer_.end_send(to.raw, static_cast<std::uint16_t>(reply.code()),
                   loop_.now());
#endif
  if (rec->reply_waker.armed()) rec->reply_waker.wake(loop_);
}

#if V_FAULT_ENABLED

void Domain::install_faults(fault::FaultPlan& plan) {
  fault_plan_ = &plan;
  for (const auto& ev : plan.events()) {
    const std::uint16_t host_idx = ev.host;
    const fault::HostEvent::Kind kind = ev.kind;
    loop_.schedule_at(ev.at, [this, host_idx, kind, then = ev.then] {
      if (fault_plan_ == nullptr) return;
      if (host_idx < 1 || host_idx > hosts_.size()) return;
      Host& host = *hosts_[host_idx - 1];
      auto& fs = fault_plan_->stats();
      switch (kind) {
        case fault::HostEvent::Kind::kCrash:
          if (host.alive()) {
            host.crash();
            ++fs.crashes;
          }
          break;
        case fault::HostEvent::Kind::kRestart:
          if (!host.alive()) {
            host.restart();
            ++fs.restarts;
          }
          break;
        case fault::HostEvent::Kind::kPause:
          if (host.alive() && !host.paused()) {
            host.pause();
            ++fs.pauses;
          }
          break;
        case fault::HostEvent::Kind::kResume:
          if (host.paused()) {
            host.resume();
            ++fs.resumes;
          }
          break;
      }
      if (then) then();
    });
  }
#if V_TRACE_ENABLED
  if (!fault_metrics_registered_) {
    fault_metrics_registered_ = true;
    auto mirror = [this](const char* name,
                         std::uint64_t fault::FaultStats::*field) {
      metrics_.register_callback("fault", name, [this, field] {
        return fault_plan_ != nullptr
                   ? static_cast<double>(fault_plan_->stats().*field)
                   : 0.0;
      });
    };
    mirror("packets_seen", &fault::FaultStats::packets_seen);
    mirror("drops", &fault::FaultStats::drops);
    mirror("duplicates", &fault::FaultStats::duplicates);
    mirror("reorders", &fault::FaultStats::reorders);
    mirror("crashes", &fault::FaultStats::crashes);
    mirror("restarts", &fault::FaultStats::restarts);
    mirror("pauses", &fault::FaultStats::pauses);
    mirror("resumes", &fault::FaultStats::resumes);
    mirror("retransmits", &fault::FaultStats::retransmits);
    mirror("budget_exhausted", &fault::FaultStats::budget_exhausted);
    mirror("dup_requests_suppressed",
           &fault::FaultStats::dup_requests_suppressed);
    mirror("cached_replies_replayed",
           &fault::FaultStats::cached_replies_replayed);
    mirror("forwards_replayed", &fault::FaultStats::forwards_replayed);
    mirror("stale_replies_dropped",
           &fault::FaultStats::stale_replies_dropped);
  }
#endif
}

void Domain::arm_retransmit(const Envelope& env, ProcessId dest,
                            std::uint64_t seq) {
  const fault::RetryPolicy& policy = fault_plan_->retry();
  schedule_retransmit(env, dest, seq, policy.initial_timeout, policy.budget);
}

void Domain::schedule_retransmit(Envelope env, ProcessId dest,
                                 std::uint64_t seq, sim::SimDuration timeout,
                                 std::uint32_t remaining) {
  loop_.schedule_after(timeout, [this, env = std::move(env), dest, seq,
                                 timeout, remaining]() mutable {
    if (fault_plan_ == nullptr) return;
    auto* rec = find(env.sender);
    if (rec == nullptr || !rec->alive || !rec->awaiting_reply ||
        rec->send_seq != seq) {
      return;  // transaction closed (answered, or the sender died)
    }
    if (remaining == 0) {
      // Budget exhausted: only now does the transport admit defeat.
      ++fault_plan_->stats().budget_exhausted;
#if V_TRACE_ENABLED
      flight_.record(env.sender.logical_host(),
                     obs::FlightKind::kBudgetExhausted, loop_.now(),
                     env.sender.raw, dest.raw, env.request.code(), 0,
                     env.trace.sampled() ? 1 : 0);
      flight_.trigger(obs::kDumpRetryExhausted, loop_.now());
#endif
      complete_reply(env.sender, msg::make_reply(ReplyCode::kNoReply));
      return;
    }
    ++fault_plan_->stats().retransmits;
    ++stats_.messages_sent;
    ++stats_.remote_messages;
#if V_TRACE_ENABLED
    if (tracer_.active() && env.trace.trace_id == 0) {
      // Late promotion: a transaction that needed a retransmit is exactly
      // the kind head sampling should not have skipped.  Open its root
      // span now — hops already taken are gone (head sampling cannot
      // resurrect them), but every hop from this retransmit on is traced.
      env.trace.set_sampled();
      env.trace.trace_id = tracer_.begin_trace();
      const std::uint32_t root = tracer_.begin_span(
          env.trace.trace_id, 0,
          std::string("send ")
              .append(obs::opcode_label(env.request.code()))
              .append(" (promoted)"),
          "send", env.sender.raw, loop_.now());
      tracer_.note_send(env.sender.raw, root);
      env.trace.parent_span = root;
    }
    if (tracer_.active() && env.trace.trace_id != 0) {
      const std::uint32_t span =
          tracer_.begin_span(env.trace.trace_id, env.trace.parent_span,
                             "retransmit", "mark", env.sender.raw,
                             loop_.now());
      tracer_.end_span(span, loop_.now());
    }
    flight_.record(env.sender.logical_host(), obs::FlightKind::kRetransmit,
                   loop_.now(), env.sender.raw, dest.raw,
                   env.request.code(), remaining,
                   env.trace.sampled() ? 1 : 0);
#endif
    Envelope copy = env;
    deliver(env.sender.logical_host(), std::move(copy), dest);
    const auto backed_off = static_cast<sim::SimDuration>(
        static_cast<double>(timeout) * fault_plan_->retry().backoff);
    schedule_retransmit(std::move(env), dest, seq,
                        std::min(backed_off, fault_plan_->retry().max_timeout),
                        remaining - 1);
  });
}

bool Domain::suppress_duplicate(detail::ProcessRecord& server,
                                const Envelope& env) {
  auto it = server.dup_table.find(env.sender.raw);
  if (it == server.dup_table.end() || it->second.seq != env.txn_seq ||
      !(it->second.presented == env.request)) {
    // A new transaction from this client — or the SAME transaction
    // presented with different request bytes (a forwarding server rewrote
    // index/context en route; not a retransmission).  Open or recycle the
    // slot and let the server process it.
    auto& txn = server.dup_table[env.sender.raw];
    txn = detail::TxnState{};
    txn.seq = env.txn_seq;
    txn.presented = env.request;
    txn_holder_[env.sender.raw] = server.pid;
    return false;
  }
  detail::TxnState& txn = it->second;
  auto& fs = fault_plan_->stats();
  switch (txn.phase) {
    case detail::TxnState::Phase::kPending:
      // Still working on the original copy; drop the duplicate.
      ++fs.dup_requests_suppressed;
      return true;
    case detail::TxnState::Phase::kForwarded: {
      // The request moved on — but that hop may have been lost.  Re-drive
      // the stored forward; the next server's own suppression makes the
      // replay harmless if the hop did arrive.
      ++fs.forwards_replayed;
      const HostId from_host = server.pid.logical_host();
      if (txn.fwd_group != 0) {
        auto git = groups_.find(txn.fwd_group);
        if (git != groups_.end()) {
          for (ProcessId member : git->second) {
            if (!process_alive(member)) continue;
            Envelope copy = txn.fwd_env;
            deliver(from_host, std::move(copy), member,
                    /*synth_on_dead=*/false);
          }
        }
      } else {
        Envelope copy = txn.fwd_env;
        deliver(from_host, std::move(copy), txn.fwd_dest,
                /*synth_on_dead=*/true);
      }
      return true;
    }
    case detail::TxnState::Phase::kReplied:
      // Already served: replay the cached reply (the reply packet itself
      // may have been the loss).  At-most-once: never re-execute.
      ++fs.cached_replies_replayed;
      send_reply_packet(server.pid.logical_host(), txn.reply, env.sender,
                        txn.hint, txn.origin, txn.seq);
      return true;
  }
  return false;
}

void Domain::note_forward(const Envelope& env, ProcessId new_dest,
                          GroupId group) {
  auto* holder = find(env.addressed);
  if (holder == nullptr) return;
  auto it = holder->dup_table.find(env.sender.raw);
  if (it == holder->dup_table.end() || it->second.seq != env.txn_seq) return;
  detail::TxnState& txn = it->second;
  txn.phase = detail::TxnState::Phase::kForwarded;
  txn.fwd_env = env;
  txn.fwd_dest = new_dest;
  txn.fwd_group = group;
}

std::uint32_t Domain::record_served_reply(ProcessId to,
                                          const msg::Message& reply,
                                          const BindingHint& hint,
                                          const BindingHint& origin) {
  auto holder_it = txn_holder_.find(to.raw);
  if (holder_it == txn_holder_.end()) return 0;
  auto* server = find(holder_it->second);
  if (server == nullptr) return 0;
  auto it = server->dup_table.find(to.raw);
  if (it == server->dup_table.end()) return 0;
  detail::TxnState& txn = it->second;
  txn.phase = detail::TxnState::Phase::kReplied;
  txn.reply = reply;
  txn.hint = hint;
  txn.origin = origin;
  txn.fwd_env = Envelope{};  // release the stored forward
  return txn.seq;
}

#endif  // V_FAULT_ENABLED

#if V_TRACE_ENABLED

void Domain::set_latency_slo(std::uint16_t code, sim::SimDuration budget) {
  const bool fresh = slo_.find(code) == nullptr;
  slo_.set_budget(code, budget);
  if (!fresh) return;  // budget updated; mirrors already registered
  const std::string label(obs::opcode_label(code));
  metrics_.register_callback("slo", label + ".within", [this, code] {
    const auto* s = slo_.find(code);
    return s != nullptr ? static_cast<double>(s->within) : 0.0;
  });
  metrics_.register_callback("slo", label + ".over", [this, code] {
    const auto* s = slo_.find(code);
    return s != nullptr ? static_cast<double>(s->over) : 0.0;
  });
}

void Domain::enable_watchdog(sim::SimDuration threshold,
                             sim::SimDuration period) {
  wd_threshold_ = threshold;
  wd_period_ = period > 0 ? period : threshold / 2;
  if (wd_period_ <= 0) wd_period_ = 1;
  if (wd_threshold_ > 0 && !wd_armed_) {
    arm_watchdog(loop_.now() + wd_period_);
  }
}

void Domain::arm_watchdog(sim::SimTime at) {
  wd_armed_ = true;
  loop_.schedule_at(at, [this] { watchdog_scan(); });
}

void Domain::watchdog_scan() {
  wd_armed_ = false;
  if (wd_threshold_ <= 0) return;
  const sim::SimTime now = loop_.now();
  bool outstanding = false;
  for (const auto& rec : records_) {
    if (!rec->alive || !rec->awaiting_reply || rec->send_started_at < 0) {
      continue;
    }
    outstanding = true;
    const sim::SimDuration blocked = now - rec->send_started_at;
    if (blocked > wd_threshold_) {
      // One trip per arm: record the first overdue fiber, dump, disarm —
      // a wedged run should yield one post-mortem, not a dump per period.
      ++wd_trips_;
      flight_.record(rec->pid.logical_host(), obs::FlightKind::kWatchdog,
                     now, rec->pid.raw, rec->blocked_on.raw,
                     rec->last_send_code, static_cast<std::uint64_t>(blocked));
      flight_.trigger(obs::kDumpWatchdog, now);
      wd_threshold_ = 0;
      return;
    }
  }
  // Dormancy: with no outstanding send there is nothing to watch — stop
  // rescheduling so run_until_idle() can drain; Process::send re-arms.
  if (outstanding) arm_watchdog(now + wd_period_);
}

std::vector<Domain::FiberHotspot> Domain::top_fibers(std::size_t k) const {
  std::vector<FiberHotspot> rows;
  rows.reserve(records_.size());
  for (const auto& rec : records_) {
    if (!rec->fiber) continue;
    const auto state = rec->fiber->state();
    if (!state) continue;
    rows.push_back(FiberHotspot{rec->name, rec->pid.raw, state->dispatches,
                                state->wall_ns});
  }
  std::sort(rows.begin(), rows.end(),
            [](const FiberHotspot& a, const FiberHotspot& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.dispatches > b.dispatches;
            });
  if (rows.size() > k) rows.resize(k);
  return rows;
}
#endif

void Domain::kill_process(detail::ProcessRecord& rec) {
  // Name bytes borrowed from this sender's frame must become owned copies
  // BEFORE the frame can unwind: any dispatch still holding a borrow keeps
  // reading correct bytes and the event sequence does not change.
  while (rec.borrow_head != nullptr) rec.borrow_head->materialize();
  rec.alive = false;
  // Return the queued envelopes' slab slots.
  for (std::uint32_t slot = rec.mbox_head; slot != detail::kNilEnv;) {
    const std::uint32_t next = env_node(slot).next;
    env_release(slot);
    slot = next;
  }
  rec.mbox_head = detail::kNilEnv;
  rec.mbox_tail = detail::kNilEnv;
  lint_.forget(rec.pid.raw);
  if (rec.fiber) {
    rec.fiber->kill();
    // Deliver the pending resume so the fiber can unwind.
    if (rec.recv_waker.armed()) rec.recv_waker.wake(loop_);
    if (rec.reply_waker.armed()) rec.reply_waker.wake(loop_);
  }
}

}  // namespace v::ipc
