// V process identifiers and service names (paper section 4.1-4.2).
//
// A pid is a 32-bit value, structured as (logical host | local pid), unique
// within one V domain.  Pids are the only absolute names in a domain; all
// other names are relative to a pid.  The subfield structure gives an O(1)
// local/remote test and lets each host allocate pids independently.
#pragma once

#include <cstdint>
#include <functional>
#include "common/annotate.hpp"

namespace v::ipc {

/// Logical host number (upper 16 bits of a pid).
using HostId = std::uint16_t;

/// A V process identifier.
struct ProcessId {
  std::uint32_t raw = 0;

  V_HOT_PATH
  static constexpr ProcessId invalid() noexcept { return ProcessId{0}; }
  static constexpr ProcessId make(HostId host, std::uint16_t local) noexcept {
    return ProcessId{(static_cast<std::uint32_t>(host) << 16) | local};
  }

  /// Logical host subfield: which kernel this process lives on.
  [[nodiscard]] constexpr HostId logical_host() const noexcept {
    return static_cast<HostId>(raw >> 16);
  }
  /// Local pid subfield: which process on that host.
  [[nodiscard]] constexpr std::uint16_t local_pid() const noexcept {
    return static_cast<std::uint16_t>(raw & 0xffff);
  }
  [[nodiscard]] constexpr bool valid() const noexcept { return raw != 0; }

  /// The paper's "efficiently determine whether the named process is local"
  /// property: a pure bit-field comparison.
  [[nodiscard]] constexpr bool local_to(HostId host) const noexcept {
    return logical_host() == host;
  }

  friend constexpr bool operator==(ProcessId a, ProcessId b) noexcept {
    return a.raw == b.raw;
  }
  friend constexpr bool operator!=(ProcessId a, ProcessId b) noexcept {
    return a.raw != b.raw;
  }
  friend constexpr bool operator<(ProcessId a, ProcessId b) noexcept {
    return a.raw < b.raw;
  }
};

/// Well-known service identifiers used with SetPid/GetPid.  The kernel's
/// service registry binds these to the process currently implementing the
/// service (paper section 4.2: programs are written in terms of services,
/// binding happens at time of use).
enum class ServiceId : std::uint16_t {
  kNone = 0,
  kTimeServer = 1,
  kContextPrefixServer = 2,
  kStorageServer = 3,
  kPrinterServer = 4,
  kInternetServer = 5,
  kTeamServer = 6,
  kMailServer = 7,
  kTerminalServer = 8,
  kCentralNameServer = 9,  ///< baseline model only
  kExceptionServer = 10,
};

/// Registration scope (paper: "local", "remote", or "both").
enum class Scope : std::uint8_t {
  kLocal = 1,   ///< visible only to GetPid on the same host
  kRemote = 2,  ///< visible only to GetPid from other hosts
  kBoth = 3,    ///< visible to both
};

/// Process group identifier for multicast Send (paper section 7 future
/// work; the group mechanism of Cheriton & Zwaenepoel, SIGCOMM '84).
using GroupId = std::uint32_t;

}  // namespace v::ipc

template <>
struct std::hash<v::ipc::ProcessId> {
  std::size_t operator()(v::ipc::ProcessId pid) const noexcept {
    return std::hash<std::uint32_t>{}(pid.raw);
  }
};
