// Cost model calibration (DESIGN.md section 3, "Calibration").
//
// Every latency the simulation reports is a sum of these parameters.  The
// SunWorkstation3Mbit preset is fitted so the composite paths reproduce the
// paper's published numbers:
//   - 32 B Send-Receive-Reply: 0.77 ms local / 2.56 ms remote (section 3.1)
//   - 64 KB MoveTo program load: ~338 ms (section 3.1)
//   - sequential 512 B page read: ~17 ms/page with a 15 ms/page disk
//   - Open: 1.21/3.70 ms direct, 5.14/7.69 ms via context prefix (section 6)
// The structural claims (prefix delta independent of target locality, etc.)
// hold for ANY parameter choice; tests assert them on a second, deliberately
// different preset to prove that.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace v::ipc {

/// All simulated-time costs, in nanoseconds (see sim/time.hpp helpers).
struct CalibrationParams {
  // --- message transport ---------------------------------------------------
  sim::SimDuration local_hop;   ///< one-way delivery, same host
  sim::SimDuration remote_hop;  ///< one-way delivery, across the network

  // --- MoveFrom / MoveTo bulk transfer -------------------------------------
  // cost = setup + (bytes/packet_bytes) * per_packet + bytes * per_byte
  // MoveFrom pays an extra fetch round trip remotely, hence separate setups.
  sim::SimDuration move_from_setup_local;
  sim::SimDuration move_from_setup_remote;
  sim::SimDuration move_to_setup_local;
  sim::SimDuration move_to_setup_remote;
  sim::SimDuration per_packet_local;   ///< per full packet_bytes
  sim::SimDuration per_packet_remote;
  sim::SimDuration per_byte_local;
  sim::SimDuration per_byte_remote;
  std::size_t packet_bytes;

  // --- kernel service registry ---------------------------------------------
  sim::SimDuration getpid_local;      ///< local table check
  sim::SimDuration broadcast_query;   ///< network broadcast + first answer
  sim::SimDuration group_timeout;     ///< give up waiting for a group reply

  // --- client run-time library ---------------------------------------------
  sim::SimDuration send_build;        ///< stub builds a request message

  // --- name handling (charged by CsnhServer / prefix server code) ----------
  sim::SimDuration csname_parse;         ///< fixed per CSname request
  sim::SimDuration per_component_parse;  ///< per path component examined
  sim::SimDuration prefix_processing;    ///< context prefix server work per
                                         ///< request (parse + lookup + rewrite)
  sim::SimDuration descriptor_fabricate; ///< per context-directory entry

  // --- storage --------------------------------------------------------------
  sim::SimDuration disk_page;      ///< disk latency per page
  std::size_t disk_page_bytes;

  /// Preset fitted to the paper's hardware: 10 MHz SUN workstations on a
  /// 3 Mbit Ethernet, VAX/UNIX storage servers.
  static constexpr CalibrationParams SunWorkstation3Mbit() {
    using namespace sim;
    return CalibrationParams{
        .local_hop = 385 * kMicrosecond,
        .remote_hop = 1280 * kMicrosecond,
        .move_from_setup_local = 30 * kMicrosecond,
        .move_from_setup_remote = 700 * kMicrosecond,
        .move_to_setup_local = 20 * kMicrosecond,
        .move_to_setup_remote = 200 * kMicrosecond,
        .per_packet_local = 20 * kMicrosecond,
        .per_packet_remote = 1300 * kMicrosecond,
        .per_byte_local = 50 * kNanosecond,
        .per_byte_remote = 3900 * kNanosecond,
        .packet_bytes = 1024,
        .getpid_local = 50 * kMicrosecond,
        .broadcast_query = 2 * kMillisecond,
        .group_timeout = 100 * kMillisecond,
        .send_build = 120 * kMicrosecond,
        .csname_parse = 180 * kMicrosecond,
        .per_component_parse = 80 * kMicrosecond,
        .prefix_processing = 3500 * kMicrosecond,
        .descriptor_fabricate = 150 * kMicrosecond,
        .disk_page = 15 * kMillisecond,
        .disk_page_bytes = 512,
    };
  }

  /// A deliberately different machine (fast CPU, slow WAN-ish link) used by
  /// tests to show the structural claims are calibration-independent.
  static constexpr CalibrationParams SlowNetworkFastCpu() {
    using namespace sim;
    return CalibrationParams{
        .local_hop = 20 * kMicrosecond,
        .remote_hop = 8 * kMillisecond,
        .move_from_setup_local = 5 * kMicrosecond,
        .move_from_setup_remote = 4 * kMillisecond,
        .move_to_setup_local = 5 * kMicrosecond,
        .move_to_setup_remote = 1 * kMillisecond,
        .per_packet_local = 2 * kMicrosecond,
        .per_packet_remote = 6 * kMillisecond,
        .per_byte_local = 5 * kNanosecond,
        .per_byte_remote = 400 * kNanosecond,
        .packet_bytes = 1024,
        .getpid_local = 5 * kMicrosecond,
        .broadcast_query = 12 * kMillisecond,
        .group_timeout = 500 * kMillisecond,
        .send_build = 10 * kMicrosecond,
        .csname_parse = 15 * kMicrosecond,
        .per_component_parse = 6 * kMicrosecond,
        .prefix_processing = 250 * kMicrosecond,
        .descriptor_fabricate = 12 * kMicrosecond,
        .disk_page = 4 * kMillisecond,
        .disk_page_bytes = 512,
    };
  }

  /// One-way message hop between two logical hosts.
  [[nodiscard]] constexpr sim::SimDuration hop(bool local) const noexcept {
    return local ? local_hop : remote_hop;
  }

  /// Bulk transfer cost (shared by MoveFrom/MoveTo after their setups).
  [[nodiscard]] constexpr sim::SimDuration bulk(std::size_t bytes,
                                                bool local) const noexcept {
    const auto per_packet = local ? per_packet_local : per_packet_remote;
    const auto per_byte = local ? per_byte_local : per_byte_remote;
    // Fractional packets: cost scales with bytes, not with a cliff at the
    // packet boundary (the wire does not round up; per-packet CPU roughly
    // amortizes for partial packets in the V driver).
    const double packets =
        static_cast<double>(bytes) / static_cast<double>(packet_bytes);
    return static_cast<sim::SimDuration>(packets *
                                         static_cast<double>(per_packet)) +
           static_cast<sim::SimDuration>(bytes) * per_byte;
  }

  /// Full MoveFrom cost for `bytes` between hosts.
  [[nodiscard]] constexpr sim::SimDuration move_from_cost(
      std::size_t bytes, bool local) const noexcept {
    return (local ? move_from_setup_local : move_from_setup_remote) +
           bulk(bytes, local);
  }

  /// Full MoveTo cost for `bytes` between hosts.
  [[nodiscard]] constexpr sim::SimDuration move_to_cost(
      std::size_t bytes, bool local) const noexcept {
    return (local ? move_to_setup_local : move_to_setup_remote) +
           bulk(bytes, local);
  }
};

}  // namespace v::ipc
