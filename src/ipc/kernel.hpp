// The simulated distributed V kernel (paper section 3).
//
// A Domain is one V installation: a set of logical hosts on one network,
// over which kernel operations are transparent with respect to machine
// boundaries.  Each Host runs processes (coroutine fibers).  The IPC
// primitives implement the Thoth-derived model:
//
//   Send        blocks the sender until the receiver Replies
//   Receive     blocks until a message arrives
//   Reply       unblocks a sender
//   Forward     re-addresses a received message; the original sender stays
//               blocked and the eventual Reply goes straight back to it
//   MoveFrom /  the receiver of a message reads/writes the blocked sender's
//   MoveTo      memory segments (bulk data path)
//
// plus the service registry (SetPid/GetPid with local/remote/both scopes and
// broadcast lookup) and process groups with multicast Send (the paper's
// stated future-work mechanism).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "chk/ledger.hpp"
#include "common/flat_map.hpp"
#include "chk/protocol_lint.hpp"
#include "common/result.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ipc/calibration.hpp"
#include "ipc/name_span.hpp"
#include "ipc/process_id.hpp"
#include "msg/message.hpp"
#include "sim/awaitables.hpp"
#include "sim/condition.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "common/annotate.hpp"

namespace v::ipc {

class Domain;
class Host;
class Process;

/// Memory segments a sender exposes for the duration of one Send.  The
/// receiver (or whoever the request is forwarded to) accesses them with
/// MoveFrom/MoveTo.  Spans must stay valid until the reply arrives — they
/// normally point into the sending coroutine's frame, which the simulator
/// keeps alive while the sender is blocked.
struct Segments {
  std::span<const std::byte> read;   ///< receiver may MoveFrom this
  /// Optional second read extent: MoveFrom addresses `read` and `read2` as
  /// one contiguous range (scatter-gather), so a sender whose logical
  /// segment is "name bytes + payload bytes" exposes both pieces in place
  /// instead of staging a concatenation buffer.
  std::span<const std::byte> read2;
  std::span<std::byte> write;        ///< receiver may MoveTo this

  /// Total readable bytes across both extents (the bound MoveFrom checks).
  [[nodiscard]] std::size_t read_size() const noexcept {
    return read.size() + read2.size();
  }
};

/// Where a name interpretation actually ended: the final server, the
/// context it dispatched the leaf in, that context's generation, and how
/// many name bytes the resolution chain consumed before the leaf.
/// Piggybacked on successful CSname replies as a *simulation extra*
/// (PROTOCOL.md §11) — like obs::TraceContext, but travelling in the reply
/// direction — so clients learn validated bindings with zero extra
/// messages.  An all-zero hint means "no hint".
struct BindingHint {
  std::uint32_t server_pid = 0;  ///< receptionist pid of the final server
  std::uint32_t context_id = 0;  ///< context the leaf was dispatched in
  std::uint32_t generation = 0;  ///< that context's generation at dispatch
  std::uint16_t consumed = 0;    ///< name bytes interpreted before the leaf

  [[nodiscard]] bool valid() const noexcept { return server_pid != 0; }
};

/// A received message as seen by the receiver.
struct Envelope {
  ProcessId sender;      ///< who is blocked awaiting the reply
  msg::Message request;  ///< 32-byte request (mutable before Forward)
  Segments segments;     ///< the sender's exposed memory
  /// Fetch-once name attachment (name_span.hpp): empty until the first
  /// server fetches the request's name bytes, then carried by Forward so
  /// every later hop reads the attached bytes instead of re-copying from
  /// the sender's segment.  A host-side optimization only — each hop still
  /// charges the full simulated MoveFrom cost (see Process::fetch_name).
  NameSpan name;
  /// V-trace state, propagated by Send/Forward (NOT paper wire format —
  /// a simulation extra, PROTOCOL.md §10).  Empty with V_TRACE=OFF.
  obs::TraceContext trace;
  /// Binding of the context the CLIENT addressed, stamped by the first
  /// server before it forwards (simulation extra, PROTOCOL.md §11).  The
  /// final server echoes it in its reply hint so the client can tie the
  /// terminal binding back to the prefix entry it started from.
  BindingHint origin;
  /// Transaction id of the Send this message belongs to (low 32 bits of
  /// the sender's send sequence; PROTOCOL.md "Reliable transactions").
  /// Stamped by Send, preserved by Forward, used for duplicate suppression
  /// and retransmission-staleness checks when V-fault is active.
  std::uint32_t txn_seq = 0;
  /// The pid this envelope was delivered to (stamped on arrival).  Lets a
  /// worker that forwards or replies find the receptionist's transaction
  /// slot without plumbing extra arguments through server code.
  ProcessId addressed;
};

namespace detail {

/// Slot sentinel for the Domain's envelope slab and the intrusive mailbox
/// lists threaded through it.
inline constexpr std::uint32_t kNilEnv = 0xffffffffu;

/// One slab slot: an envelope plus the intrusive link that threads it into
/// a free list or a process's mailbox FIFO (mirrors the event loop's
/// action slab, DESIGN.md §4i).  Delivery events carry the 4-byte slot
/// index, so a scheduled packet never drags a fat Envelope through a
/// closure capture.
struct EnvNode {
  Envelope env;
  std::uint32_t next = kNilEnv;
};

#if V_FAULT_ENABLED
/// At-most-once bookkeeping for one client's current transaction at one
/// server (PROTOCOL.md "Reliable transactions").  A server record keeps one
/// slot per client pid; a new transaction id from that client recycles it.
struct TxnState {
  enum class Phase : std::uint8_t {
    kPending,    ///< request delivered, no reply or forward yet
    kForwarded,  ///< request forwarded on; duplicates re-drive the forward
    kReplied,    ///< reply sent; duplicates get the cached reply replayed
  };

  std::uint32_t seq = 0;  ///< Envelope::txn_seq this slot covers
  Phase phase = Phase::kPending;
  /// The request bytes this slot answered.  A retransmission is
  /// byte-identical; a same-txn arrival with DIFFERENT bytes is a new
  /// presentation (a forwarding server rewrote index/context before
  /// passing it on — e.g. a group member receiving both the direct
  /// multicast copy and a link-forwarded copy) and must be processed,
  /// not suppressed.
  msg::Message presented;
  // kForwarded: the rewritten envelope and where it went, so a duplicate
  // request can heal a lost server-to-server hop by re-driving it.
  Envelope fwd_env;
  ProcessId fwd_dest;      ///< invalid() when the forward went to a group
  GroupId fwd_group = 0;
  // kReplied: the served reply, replayed verbatim on duplicates.
  msg::Message reply;
  BindingHint hint;
  BindingHint origin;
};
#endif  // V_FAULT_ENABLED

/// Kernel-internal per-process state.  Retained (not freed) after process
/// death so pid lookups and pending resumes stay safe; pids are not reused
/// until 2^16 allocations wrap (paper: "maximize the time before reuse").
struct ProcessRecord {
  ProcessId pid;
  std::string name;          ///< debug label, not a protocol name
  Host* host = nullptr;
  bool alive = true;

  /// Mailbox: an intrusive FIFO of envelope-slab slot indices (EnvNode::
  /// next links them; the envelopes themselves live in the Domain's slab).
  std::uint32_t mbox_head = kNilEnv;
  std::uint32_t mbox_tail = kNilEnv;
  sim::Waker recv_waker;
  bool waiting_receive = false;

  /// Intrusive ledger of NameSpans currently borrowing from this process's
  /// exposed read segment (same-host zero-copy fetches).  Materialized by
  /// Domain::kill_process before the frame those borrows point into can
  /// unwind (see name_span.hpp lifetime rules).
  NameSpan* borrow_head = nullptr;

  // Sender-side blocking state.
  sim::Waker reply_waker;
  msg::Message reply;
  BindingHint reply_hint;    ///< final-binding hint riding the last reply
  BindingHint reply_origin;  ///< origin-binding echo riding the last reply
  bool awaiting_reply = false;
  ProcessId blocked_on;      ///< current holder of our request (updated on
                             ///< forward delivery); used by crash sweeps
  std::uint64_t send_seq = 0;  ///< distinguishes sends for timeout events
  Segments exposed;            ///< segments of the in-flight send

#if V_TRACE_ENABLED
  /// Observability bookkeeping for the in-flight send: when it started
  /// (SLO latency, watchdog overdue checks) and its opcode (SLO bucket).
  sim::SimTime send_started_at = -1;
  std::uint16_t last_send_code = 0;
#endif

#if V_FAULT_ENABLED
  /// Server-side duplicate suppression: one transaction slot per client
  /// pid (see TxnState).  Only populated while a FaultPlan is installed.
  /// Flat map: probed on every delivery under a fault plan, never erased
  /// per-entry (slots are overwritten per client, cleared on crash).
  FlatMap<std::uint32_t, TxnState> dup_table;
#endif

  std::optional<sim::Fiber> fiber;
  /// Raw cache of fiber->state().get(), set once at spawn.  The hot
  /// send/receive path parks against this instead of re-deriving it
  /// through the optional and the shared_ptr (records — and therefore the
  /// FiberState — outlive every pending event; see awaitables.hpp).
  sim::FiberState* fiber_state = nullptr;
  /// Keeps the process body callable (and its captures) alive for the whole
  /// coroutine lifetime: the frame refers to the lambda's captures in place.
  std::function<sim::Co<void>(Process)> body_keepalive;
};

struct Registration {
  ProcessId pid;
  Scope scope;
};

}  // namespace detail

/// Handle a process body uses to invoke kernel primitives.  Cheap to copy;
/// remains valid for the lifetime of the Domain (records are retained).
class Process {
 public:
  Process(Domain* domain, ProcessId pid) noexcept
      : domain_(domain), pid_(pid) {}

  [[nodiscard]] ProcessId pid() const noexcept { return pid_; }
  [[nodiscard]] Domain& domain() const noexcept { return *domain_; }
  V_HOT_PATH
  [[nodiscard]] HostId host_id() const noexcept { return pid_.logical_host(); }
  [[nodiscard]] sim::SimTime now() const noexcept;
  [[nodiscard]] const CalibrationParams& params() const noexcept;

  /// Send a request and block until the reply.  On destination death or
  /// crash the kernel synthesizes a kNoReply reply.
  [[nodiscard]] sim::Co<msg::Message> send(msg::Message request,
                                           ProcessId dest,
                                           Segments segments = {});

  /// Multicast send to a process group.  The first reply wins; later
  /// replies are discarded (V group-send semantics).  Times out with a
  /// kTimeout reply if no member answers.
  [[nodiscard]] sim::Co<msg::Message> send_to_group(msg::Message request,
                                                    GroupId group,
                                                    Segments segments = {});

  /// Receive the next message (blocks if the mailbox is empty).
  [[nodiscard]] sim::Co<Envelope> receive();

  /// Reply to a blocked sender.  Non-blocking; delivery is scheduled.
  void reply(const msg::Message& reply_msg, ProcessId to);

  /// Reply with a piggybacked binding hint (simulation extra, PROTOCOL.md
  /// §11): `hint` is where interpretation ended, `origin` echoes the
  /// envelope's origin binding.  Costs exactly what reply() costs.
  void reply_with_hint(const msg::Message& reply_msg, ProcessId to,
                       const BindingHint& hint, const BindingHint& origin);

  /// The binding hint that rode the reply to this process's last send
  /// (invalid() when the reply carried none — errors, synthesized replies,
  /// non-CSname traffic).
  [[nodiscard]] BindingHint last_binding_hint() const;
  /// The origin-binding echo from the last reply (see Envelope::origin).
  [[nodiscard]] BindingHint last_origin_hint() const;

  /// Forward a received message to another process.  The original sender
  /// stays blocked; `env.request` as passed here (possibly rewritten) is
  /// what the new destination receives.
  void forward(const Envelope& env, ProcessId new_dest);

  /// Forward a received message to every live member of a process group;
  /// the first member to Reply answers the (still blocked) original
  /// sender and later replies are discarded.  This is the paper's
  /// section 7 mechanism: "a single context could be implemented
  /// transparently by a group of servers working in cooperation."  If no
  /// member answers, the sender gets kTimeout after the group timeout.
  void forward_to_group(const Envelope& env, GroupId group);

  /// Copy `dest.size()` bytes from the blocked sender's read segment at
  /// `offset` into `dest`.  Charges the calibrated bulk-transfer time.
  /// `txn` (when non-null) binds the transfer to that envelope's
  /// transaction: if the sender has since timed out and issued a NEW send,
  /// the transfer is refused with kNoReply instead of touching the buffers
  /// of a transaction it does not belong to.  Servers must pass their
  /// envelope (use the Envelope overloads below); the unchecked form exists
  /// for transfers outside a request/reply transaction.
  [[nodiscard]] sim::Co<Result<std::size_t>> move_from(
      ProcessId src, std::span<std::byte> dest, std::size_t offset = 0,
      const Envelope* txn = nullptr);

  /// Copy `src` into the blocked sender's write segment at `offset`.
  /// See move_from for the `txn` transaction check.
  [[nodiscard]] sim::Co<Result<std::size_t>> move_to(
      ProcessId dest, std::span<const std::byte> src, std::size_t offset = 0,
      const Envelope* txn = nullptr);

  /// Transaction-checked transfers: the server-side forms.  A request can
  /// queue at a busy server long enough for its sender to time out and
  /// move on; a transfer issued afterwards must die (kNoReply), not land
  /// in whatever segment the sender exposed for its NEXT transaction.
  [[nodiscard]] sim::Co<Result<std::size_t>> move_from(
      const Envelope& env, std::span<std::byte> dest,
      std::size_t offset = 0) {
    return move_from(env.sender, dest, offset, &env);
  }
  [[nodiscard]] sim::Co<Result<std::size_t>> move_to(
      const Envelope& env, std::span<const std::byte> src,
      std::size_t offset = 0) {
    return move_to(env.sender, src, offset, &env);
  }

  /// Fetch the request's character-string name — the first `name_len`
  /// bytes of the blocked sender's read segments — fetch-once style: the
  /// first server to fetch attaches the bytes to `env` (borrowing them
  /// zero-copy when the sender is on this host), Forward carries the
  /// attachment, and later hops reuse it instead of re-copying.  EVERY hop
  /// still charges the full calibrated MoveFrom cost and re-validates the
  /// sender exactly as move_from does, so simulated behavior is
  /// bit-identical to per-hop fetching; only host-side copies (and the
  /// moves/bytes_moved counters, which track real transfers) change.  The
  /// returned view is valid for the rest of the receiving dispatch.
  [[nodiscard]] sim::Co<Result<std::string_view>> fetch_name(
      Envelope& env, std::uint16_t name_len);

  /// Park this process on `queue` until another fiber notifies it (FIFO,
  /// kill-safe).  The intra-team blocking primitive: server worker
  /// processes wait on their team's work queue with this.
  [[nodiscard]] sim::WaitQueue::Awaiter wait_on(sim::WaitQueue& queue) const {
    return queue.wait(fiber_state());
  }

  /// Consume simulated time (CPU work or waiting).
  [[nodiscard]] sim::DelayAwaiter delay(sim::SimDuration d) const;
  /// Semantic alias for CPU cost accounting.
  [[nodiscard]] sim::DelayAwaiter compute(sim::SimDuration d) const {
    return delay(d);
  }

  /// Register `pid` as implementing `service` within `scope` on THIS host.
  void set_pid(ServiceId service, ProcessId pid, Scope scope);

  /// Look up the process registered for `service`.  Checks the local table
  /// first; when that fails and scope permits, performs a (simulated)
  /// network broadcast.  Returns ProcessId::invalid() when nothing matches.
  [[nodiscard]] sim::Co<ProcessId> get_pid(ServiceId service, Scope scope);

  /// Join / leave a process group.
  void join_group(GroupId group);
  void leave_group(GroupId group);

  /// Observer handle for this process's fiber (kill flag).  Custom
  /// awaitables built outside the kernel (server-team gates and wait
  /// queues) capture it so a resume after kill throws FiberKilled.  Raw
  /// pointer: the state outlives every pending event (awaitables.hpp).
  [[nodiscard]] sim::FiberState* fiber_state() const;

 private:
  detail::ProcessRecord& record() const;

  Domain* domain_;
  ProcessId pid_;
};

/// One logical host: a kernel instance with its own process table slice and
/// service registry.
class Host {
 public:
  Host(Domain& domain, HostId id, std::string name);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] Domain& domain() noexcept { return domain_; }

  /// Create a process running `body`.  The body starts at the current
  /// simulated time via a scheduled event.  Returns its pid immediately.
  ProcessId spawn(std::string name,
                  std::function<sim::Co<void>(Process)> body);

  /// Spawn `count` processes forming one server team (paper section 3:
  /// "a server is typically implemented as a team of processes" so one
  /// slow request does not stall the service).  Members are named
  /// "`base`.N" and each body receives its member index.  All members run
  /// on this host and die with it on crash — exactly a V team's fate.
  std::vector<ProcessId> spawn_team(
      const std::string& base, std::size_t count,
      std::function<sim::Co<void>(Process, std::size_t)> body);

  /// Crash this host: every process dies, registrations vanish, blocked
  /// remote senders get kNoReply, in-flight messages to it are dropped.
  void crash();

  /// Bring a crashed host back (empty process table; servers must be
  /// respawned and re-register, which is the paper's rebinding story).
  void restart();

  /// Suspend packet arrival at this host: requests and replies addressed
  /// to its processes queue instead of landing (a transient partition /
  /// unresponsive host, as a FaultPlan kPause event).  Local execution
  /// continues.  Effective only in V_FAULT builds; resume() flushes the
  /// queued packets in arrival order.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const noexcept { return paused_; }

  /// Local service registry (used by Process::set_pid/get_pid).
  void register_service(ServiceId service, ProcessId pid, Scope scope);
  [[nodiscard]] ProcessId lookup_local(ServiceId service) const;
  [[nodiscard]] ProcessId lookup_remote(ServiceId service) const;

  /// Number of processes ever spawned (dead ones included).
  [[nodiscard]] std::size_t processes_spawned() const noexcept {
    return spawned_;
  }

 private:
  friend class Domain;

  Domain& domain_;
  HostId id_;
  std::string name_;
  bool alive_ = true;
  bool paused_ = false;
  /// Packets that arrived while paused, flushed FIFO by resume().
  // Pause stash: packets are InlineActions (not std::function) so an
  // Envelope-carrying packet never round-trips through a heap allocation
  // between stash and re-schedule.
  std::vector<sim::EventLoop::Action> stash_;
  std::uint16_t next_local_pid_;
  std::size_t spawned_ = 0;
  // Flat map: GetPid probes this on every service lookup; registrations
  // are tiny and never individually erased (crash clears wholesale).
  FlatMap<ServiceId, detail::Registration> services_;
};

/// Transport-level counters for one domain run.  Structural quantities
/// (message counts, forwards, bytes moved) that hold independent of any
/// calibration — benches report them alongside simulated latencies.
struct DomainStats {
  std::uint64_t messages_sent = 0;     ///< request deliveries attempted
  std::uint64_t replies_sent = 0;      ///< reply deliveries attempted
  std::uint64_t forwards = 0;          ///< Forward / group-forward fan-outs
  std::uint64_t remote_messages = 0;   ///< requests that crossed hosts
  std::uint64_t moves = 0;             ///< MoveTo + MoveFrom operations
  std::uint64_t bytes_moved = 0;       ///< segment bytes transferred
};

/// One V installation: hosts + network + event loop + cost model.
class Domain {
 public:
  explicit Domain(
      CalibrationParams params = CalibrationParams::SunWorkstation3Mbit(),
      std::uint64_t seed = 0x1984'0601ULL);
  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Add a logical host to the domain.  References stay valid for the
  /// Domain's lifetime.
  Host& add_host(std::string name);

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const CalibrationParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] sim::SimTime now() const noexcept { return loop_.now(); }

  /// Run the simulation until no events remain.
  void run() { loop_.run_until_idle(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Host>>& hosts()
      const noexcept {
    return hosts_;
  }

  /// Debug label of a process ("" if unknown).
  [[nodiscard]] std::string process_name(ProcessId pid) const;
  /// Is the process currently alive?
  [[nodiscard]] bool process_alive(ProcessId pid) const;

  /// Transport counters accumulated since construction.
  [[nodiscard]] const DomainStats& stats() const noexcept { return stats_; }

  /// Next value of the domain-wide name-space generation sequence.  Every
  /// context-generation assignment (server start and every gated mutation)
  /// draws from this one monotone counter, so a generation can never recur
  /// across server incarnations — a restarted (or impostor) server's
  /// contexts always mismatch a cached generation instead of silently
  /// aliasing it (the paper-§2.2 hazard).  Never returns 0 ("no
  /// expectation" on the wire).
  [[nodiscard]] std::uint32_t next_name_generation() noexcept {
    return ++name_generation_;
  }

  /// Count of fibers that died with an unexpected exception (tests assert
  /// this stays zero).
  [[nodiscard]] std::size_t process_failures() const noexcept {
    return failures_;
  }
  /// Human-readable description of the first failure, for diagnostics.
  [[nodiscard]] const std::string& first_failure() const noexcept {
    return first_failure_;
  }

  /// V-check race-detector ledger (gate holders + shared-cell accesses).
  /// A no-op shell when built with V_CHECKS=OFF.
  [[nodiscard]] chk::Ledger& checks() noexcept { return checks_; }
  /// V-check protocol conformance lint at the Send/Reply boundary.
  [[nodiscard]] chk::ProtocolLint& lint() noexcept { return lint_; }
  [[nodiscard]] const chk::ProtocolLint& lint() const noexcept {
    return lint_;
  }

  /// V-trace resolution-trace sink (inactive until tracer().enable()).
  /// An inert shell when built with V_TRACE=OFF.
  [[nodiscard]] obs::TraceSink& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::TraceSink& tracer() const noexcept {
    return tracer_;
  }
  /// V-trace metrics registry.  The DomainStats fields, event-loop stats
  /// and protocol-lint counters are mirrored in as "ipc/...", "loop/..."
  /// and "lint/..." callback entries; servers register their own scopes.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// V-blackbox flight recorder: always-on per-host rings of compact
  /// event records, dumped on failure triggers (obs/flight.hpp).  A
  /// configuration-only shell with V_TRACE=OFF.
  [[nodiscard]] obs::FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] const obs::FlightRecorder& flight() const noexcept {
    return flight_;
  }

#if V_TRACE_ENABLED
  /// Give `code` a latency SLO: every completed Send of that opcode
  /// counts as within/over `budget` (simulated ns), readable as
  /// `[metrics] slo/<opcode>.within` and `.over`.
  void set_latency_slo(std::uint16_t code, sim::SimDuration budget);
  [[nodiscard]] const obs::SloTracker& slo() const noexcept { return slo_; }

  /// Arm the event-loop watchdog: every `period` (default threshold/2) a
  /// scheduled scan looks for a fiber blocked in Send longer than
  /// `threshold` simulated time; the first such fiber records a
  /// kWatchdog flight event, fires a dump trigger, and disarms the
  /// watchdog (one trip per arm).  CSNH gate releases also compare their
  /// hold time against `threshold`.  OPT-IN because the scan schedules
  /// real events: the event sequence (and thus fuzz tie-breaking) shifts,
  /// so runs with the watchdog are deterministic per seed but not
  /// bit-comparable to runs without it.
  void enable_watchdog(sim::SimDuration threshold,
                       sim::SimDuration period = 0);
  [[nodiscard]] sim::SimDuration watchdog_threshold() const noexcept {
    return wd_threshold_;
  }
  [[nodiscard]] std::uint64_t watchdog_trips() const noexcept {
    return wd_trips_;
  }
#else
  void set_latency_slo(std::uint16_t, sim::SimDuration) noexcept {}
  void enable_watchdog(sim::SimDuration, sim::SimDuration = 0) noexcept {}
  [[nodiscard]] sim::SimDuration watchdog_threshold() const noexcept {
    return 0;
  }
  [[nodiscard]] std::uint64_t watchdog_trips() const noexcept { return 0; }
#endif

#if V_FAULT_ENABLED
  /// Arm the V-fault machinery: schedule the plan's host lifecycle events,
  /// apply its link faults to every remote packet, and turn on reliable
  /// Send transactions (retransmission + duplicate suppression) governed
  /// by its RetryPolicy.  The plan must outlive the run; its FaultStats
  /// are mirrored into the metrics registry as "fault/..." entries.
  void install_faults(fault::FaultPlan& plan);
  [[nodiscard]] bool fault_active() const noexcept {
    return fault_plan_ != nullptr;
  }
  [[nodiscard]] fault::FaultPlan* fault_plan() noexcept { return fault_plan_; }
#else
  /// V_FAULT=OFF shell: installing a plan is legal and does nothing, so
  /// harness code need not be #if-gated.
  void install_faults(fault::FaultPlan&) noexcept {}
  [[nodiscard]] bool fault_active() const noexcept { return false; }
#endif

#if V_TRACE_ENABLED
  /// One row of the event-loop profile: host CPU attributed to a fiber.
  struct FiberHotspot {
    std::string name;
    std::uint32_t pid = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t wall_ns = 0;
  };
  /// The k fibers that burned the most host CPU, descending.
  [[nodiscard]] std::vector<FiberHotspot> top_fibers(std::size_t k) const;
#endif

 private:
  friend class Host;
  friend class Process;

  detail::ProcessRecord* find(ProcessId pid);
  const detail::ProcessRecord* find(ProcessId pid) const;
  detail::ProcessRecord& create_record(Host& host, std::string name);

  // --- envelope slab (see detail::EnvNode) ---------------------------------
  V_HOT_PATH
  detail::EnvNode& env_node(std::uint32_t slot) noexcept {
    return env_chunks_[slot >> kEnvChunkBits]
                      [slot & ((1u << kEnvChunkBits) - 1)];
  }
  V_HOT_PATH
  std::uint32_t env_acquire() {
    if (env_free_ == detail::kNilEnv)
      grow_env_slab();  // vlint: allow(hot-path-alloc): cold growth branch
    const std::uint32_t slot = env_free_;
    detail::EnvNode& node = env_node(slot);
    env_free_ = node.next;
    node.next = detail::kNilEnv;
    return slot;
  }
  V_HOT_PATH
  void env_release(std::uint32_t slot) noexcept {
    detail::EnvNode& node = env_node(slot);
    // Drop the name now (frees a borrow's ledger slot / recycles a pooled
    // block); the rest of the envelope is overwritten on reuse.
    node.env.name.reset();
    node.next = env_free_;
    env_free_ = slot;
  }
  /// Cold: add one chunk of slab capacity to the free list.
  void grow_env_slab();

  /// Schedule delivery of `env` to `dest` after the appropriate hop delay
  /// from `from_host`.  Handles dead destinations with synthesized replies.
  void deliver(HostId from_host, Envelope env, ProcessId dest);
  /// As above; group sends pass synth_on_dead=false so a dead member does
  /// not beat a live member's real reply.
  void deliver(HostId from_host, Envelope env, ProcessId dest,
               bool synth_on_dead);

  /// Schedule a reply delivery to a blocked sender.  `from` identifies the
  /// replying process for the protocol lint (invalid() for kernel-
  /// synthesized replies, which are exempt from server-conformance checks).
  /// `hint`/`origin` are the piggybacked binding hints ({} for unhinted
  /// replies); they ride the scheduled delivery and cost nothing.
  void deliver_reply(HostId from_host, msg::Message reply, ProcessId to,
                     ProcessId from, const BindingHint& hint = {},
                     const BindingHint& origin = {});

  /// Synthesize a failure reply (kNoReply etc.) to a blocked sender, at a
  /// hop's delay.
  void synth_reply(ProcessId to, ReplyCode code);

  /// A request packet landing at its destination host (after the hop delay
  /// and any fault verdicts).  Runs lint, duplicate suppression and the
  /// retransmission-staleness guard, then enqueues into the mailbox.  The
  /// envelope is slab slot `slot`; accepted packets are linked into the
  /// destination's mailbox in place, rejected ones release the slot.
  void arrive_slot(std::uint32_t slot, ProcessId dest, bool synth_on_dead);
  /// Re-entry shim for packets that left the slab (pause-stash flushes):
  /// re-acquires a slot and lands through arrive_slot.
  void arrive(Envelope env, ProcessId dest, bool synth_on_dead);
  /// Put one reply packet on the wire toward `to`, applying fault verdicts.
  /// `answered_seq` is the transaction the reply answers (0 = untracked).
  void send_reply_packet(HostId from_host, const msg::Message& reply,
                         ProcessId to, const BindingHint& hint,
                         const BindingHint& origin,
                         std::uint32_t answered_seq);
  /// A reply packet landing at the blocked sender's host: drops replies to
  /// superseded transactions, stashes under pause, else completes.
  void arrive_reply(ProcessId to, const msg::Message& reply,
                    const BindingHint& hint, const BindingHint& origin,
                    std::uint32_t answered_seq);

  void complete_reply(ProcessId to, const msg::Message& reply,
                      const BindingHint& hint = {},
                      const BindingHint& origin = {});
  void kill_process(detail::ProcessRecord& rec);

#if V_FAULT_ENABLED
  /// Client-side retransmission: re-deliver a copy of the send every
  /// (backed-off) timeout until the transaction closes or the budget is
  /// exhausted, then surface kNoReply.
  void arm_retransmit(const Envelope& env, ProcessId dest,
                      std::uint64_t seq);
  void schedule_retransmit(Envelope env, ProcessId dest, std::uint64_t seq,
                           sim::SimDuration timeout, std::uint32_t remaining);
  /// Server-side at-most-once filter.  True = the envelope was a duplicate
  /// and has been fully handled (suppressed / forward re-driven / cached
  /// reply replayed); false = genuinely new, deliver it.
  bool suppress_duplicate(detail::ProcessRecord& server, const Envelope& env);
  /// Record that the received envelope was forwarded (rewritten as `env`),
  /// so a duplicate of the original request re-drives the forward.
  void note_forward(const Envelope& env, ProcessId new_dest, GroupId group);
  /// Record a served reply in the transaction slot it answers.  Returns
  /// that transaction's seq (0 when the reply closes no tracked slot).
  std::uint32_t record_served_reply(ProcessId to, const msg::Message& reply,
                                    const BindingHint& hint,
                                    const BindingHint& origin);
#endif

  CalibrationParams params_;
  sim::EventLoop loop_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  // Stable storage: records never move or die before the Domain does.
  std::vector<std::unique_ptr<detail::ProcessRecord>> records_;
  // Open-addressing flat map: pid lookup is on every deliver/reply/move
  // hot path; one probe normally hits one cache line instead of chasing a
  // bucket pointer.  Pids carry no useful ordering (allocated randomly).
  FlatMap<std::uint32_t, detail::ProcessRecord*> by_pid_;
  // Multicast order is NOT this table's order: each group's members live
  // in an insertion-ordered vector, so fan-out is deterministic no matter
  // how the group ids hash.
  FlatMap<GroupId, std::vector<ProcessId>> groups_;
  // Envelope slab (mirrors the event loop's action slab): chunked stable
  // storage recycled through a free list, so in-flight and queued
  // envelopes never churn the allocator and delivery closures stay tiny.
  static constexpr std::uint32_t kEnvChunkBits = 9;  // 512 envelopes/chunk
  std::vector<std::unique_ptr<detail::EnvNode[]>> env_chunks_;
  std::uint32_t env_free_ = detail::kNilEnv;
  DomainStats stats_;
  std::uint32_t name_generation_ = 0;
  std::size_t failures_ = 0;
  std::string first_failure_;
  chk::Ledger checks_;
  chk::ProtocolLint lint_;
  obs::TraceSink tracer_;
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder flight_;
#if V_TRACE_ENABLED
  obs::SloTracker slo_;
  // Watchdog state (enable_watchdog): scans are self-rescheduling events
  // that go dormant when nothing is blocked, so an idle loop still drains.
  void watchdog_scan();
  void arm_watchdog(sim::SimTime at);
  sim::SimDuration wd_threshold_ = 0;  ///< 0 = watchdog disabled
  sim::SimDuration wd_period_ = 0;
  bool wd_armed_ = false;
  std::uint64_t wd_trips_ = 0;
#endif
#if V_FAULT_ENABLED
  fault::FaultPlan* fault_plan_ = nullptr;
  /// client pid -> server record currently holding its transaction slot
  /// (the last server a request of that client was delivered to), so the
  /// reply path can find the slot without plumbing envelopes through
  /// server code.
  FlatMap<std::uint32_t, ProcessId> txn_holder_;
  bool fault_metrics_registered_ = false;
#endif
};

}  // namespace v::ipc
