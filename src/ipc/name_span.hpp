// Fetch-once name bytes riding an Envelope (DESIGN.md §4l).
//
// The paper's interpretation chain re-reads the SAME character-string name
// at every server the request visits: each hop issues a MoveFrom against
// the blocked client's read segment.  The simulated wire cost of that is
// the protocol (and stays charged per hop, bit-identically) — but the
// HOST-side work (an allocation plus a memcpy per hop) is pure simulator
// overhead.  NameSpan is where the first fetch parks the bytes: it lives
// inside ipc::Envelope, Forward copies it along, and every later hop reads
// the attached bytes instead of re-staging its own buffer.
//
// Storage modes:
//   kEmptyMode     no bytes attached (every envelope starts here)
//   kInlineMode    owned, ≤ kInlineCapacity bytes in the object (SBO)
//   kPooledMode    owned, heap block recycled through a process-wide free
//                  list (plain exact-size new[]/delete[] under ASan, so
//                  use-after-free of name bytes stays detectable — same
//                  policy as sim::FramePool)
//   kBorrowedMode  NOT owned: a view straight into the blocked sender's
//                  exposed read segment (the same-host zero-copy case)
//
// Lifetime rules (the part that makes borrowing safe):
//   * A borrowed span registers itself on an intrusive ledger anchored at
//     the lending sender's ProcessRecord.  Moving the span relinks it;
//     destroying it unlinks it.
//   * COPYING a NameSpan always materializes: the copy owns its bytes and
//     never appears on any ledger.  Forward/group fan-out/retransmit/
//     dup-table snapshots all go through the copy constructor, so borrowed
//     views never escape the first hop's dispatch frame.
//   * Before a kill destroys the sender's coroutine frame (the memory a
//     borrow points into), Domain::kill_process materializes every span on
//     the sender's ledger — dispatch in flight keeps reading correct bytes
//     and the event sequence does not change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "sim/frame_pool.hpp"

namespace v::ipc {

/// Process-wide free list of fixed-size name blocks (names longer than the
/// inline capacity; the protocol caps them at naming::kMaxNameLength =
/// 4096).  Single-threaded by design, deliberately leaks its free list at
/// process exit — exactly the sim::FramePool policy, and disabled under
/// ASan by the same switch so poisoned-memory detection keeps working.
class NamePool {
 public:
  static constexpr std::size_t kBlockBytes = 4096;

  static char* acquire(std::size_t bytes) {
#if V_FRAME_POOL_ENABLED
    (void)bytes;  // one size class: every long name gets a full block
    auto& bin = free_list();
    if (!bin.empty()) {
      char* block = bin.back();
      bin.pop_back();
      return block;
    }
    return new char[kBlockBytes];
#else
    return new char[bytes];  // exact-size: ASan redzones hug the name
#endif
  }

  static void release(char* block) noexcept {
#if V_FRAME_POOL_ENABLED
    free_list().push_back(block);
#else
    delete[] block;
#endif
  }

 private:
#if V_FRAME_POOL_ENABLED
  static std::vector<char*>& free_list() {
    static std::vector<char*> bin;
    return bin;
  }
#endif
};

class NameSpan {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  NameSpan() noexcept = default;
  ~NameSpan() { reset(); }

  NameSpan(const NameSpan& other) { copy_from(other); }
  NameSpan& operator=(const NameSpan& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  NameSpan(NameSpan&& other) noexcept { steal(other); }
  NameSpan& operator=(NameSpan&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] bool borrowed() const noexcept {
    return mode_ == kBorrowedMode;
  }

  [[nodiscard]] const char* data() const noexcept {
    switch (mode_) {
      case kPooledMode: return pooled_;
      case kBorrowedMode: return borrowed_;
      default: return inline_;
    }
  }
  [[nodiscard]] std::string_view view() const noexcept {
    return {data(), len_};
  }

  /// Drop the bytes: unlink a borrow, recycle a pooled block.  Forced
  /// inline: every Envelope move and destruction lands here (eight times
  /// per IPC transaction), and the usual case is a no-op on an empty span
  /// — two stores, not worth a call.
  [[gnu::always_inline]] inline void reset() noexcept {
    if (mode_ == kBorrowedMode) {
      unlink();
    } else if (mode_ == kPooledMode) {
      NamePool::release(pooled_);
    }
    mode_ = kEmptyMode;
    len_ = 0;
  }

  /// Set up owned storage for `n` bytes and return it for the caller to
  /// fill (the remote-fetch path memcpys a stitched segment pair into it).
  char* allocate(std::size_t n) {
    reset();
    len_ = static_cast<std::uint16_t>(n);
    if (n <= kInlineCapacity) {
      mode_ = kInlineMode;
      return inline_;
    }
    mode_ = kPooledMode;
    pooled_ = NamePool::acquire(n);
    return pooled_;
  }

  /// Borrow `n` bytes at `bytes` without copying, registering on the
  /// owner's ledger (`head` is ProcessRecord::borrow_head of the process
  /// whose memory `bytes` points into).
  void borrow(const char* bytes, std::size_t n, NameSpan*& head) noexcept {
    reset();
    mode_ = kBorrowedMode;
    len_ = static_cast<std::uint16_t>(n);
    borrowed_ = bytes;
    next_ = head;
    if (next_ != nullptr) next_->pprev_ = &next_;
    pprev_ = &head;
    head = this;
  }

  /// Turn a borrowed view into an owned copy and leave the ledger.  The
  /// lender's memory must still be readable (Domain::kill_process calls
  /// this BEFORE the lender's frame unwinds).  No-op for owned spans.
  void materialize() {
    if (mode_ != kBorrowedMode) return;
    const char* src = borrowed_;  // the union slot is about to be reused
    unlink();
    if (len_ <= kInlineCapacity) {
      mode_ = kInlineMode;
      std::memcpy(inline_, src, len_);
    } else {
      mode_ = kPooledMode;
      char* block = NamePool::acquire(len_);
      std::memcpy(block, src, len_);
      pooled_ = block;
    }
  }

 private:
  enum Mode : std::uint8_t {
    kEmptyMode,
    kInlineMode,
    kPooledMode,
    kBorrowedMode,
  };

  void unlink() noexcept {
    if (pprev_ != nullptr) {
      *pprev_ = next_;
      if (next_ != nullptr) next_->pprev_ = pprev_;
      pprev_ = nullptr;
      next_ = nullptr;
    }
  }

  /// Copies always own their bytes (never borrow, never touch a ledger):
  /// this is what turns the first hop's fetch into the forwarded
  /// attachment every later hop reads.
  void copy_from(const NameSpan& other) {
    len_ = other.len_;
    if (other.mode_ == kEmptyMode) {
      mode_ = kEmptyMode;
      return;
    }
    if (len_ <= kInlineCapacity) {
      mode_ = kInlineMode;
      std::memcpy(inline_, other.data(), len_);
    } else {
      mode_ = kPooledMode;
      char* block = NamePool::acquire(len_);
      std::memcpy(block, other.data(), len_);
      pooled_ = block;
    }
  }

  /// Moves transfer ownership; a borrowed span hands over its ledger slot.
  void steal(NameSpan& other) noexcept {
    mode_ = other.mode_;
    len_ = other.len_;
    switch (mode_) {
      case kEmptyMode:
        break;
      case kInlineMode:
        std::memcpy(inline_, other.inline_, len_);
        break;
      case kPooledMode:
        pooled_ = other.pooled_;
        break;
      case kBorrowedMode:
        borrowed_ = other.borrowed_;
        next_ = other.next_;
        pprev_ = other.pprev_;
        if (pprev_ != nullptr) *pprev_ = this;
        if (next_ != nullptr) next_->pprev_ = &next_;
        other.next_ = nullptr;
        other.pprev_ = nullptr;
        break;
    }
    other.mode_ = kEmptyMode;
    other.len_ = 0;
  }

  union {
    char inline_[kInlineCapacity];
    char* pooled_;
    const char* borrowed_;
  };
  std::uint16_t len_ = 0;
  Mode mode_ = kEmptyMode;
  // Intrusive borrow ledger (linux-hlist shape: a back-pointer to whatever
  // points at us, so unlink needs no list head).  Only used while borrowed.
  NameSpan* next_ = nullptr;
  NameSpan** pprev_ = nullptr;
};

}  // namespace v::ipc
