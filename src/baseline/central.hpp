// The centralized naming model of paper section 2.1 — built as the baseline
// for the section 2.2 comparison benches (bench_naming_models).
//
// A single distinguished name server maps full pathname strings to
// (server-pid, context-id, leaf) bindings.  Clients resolve names here
// first, then operate directly on the object's server.  The design exhibits
// exactly the drawbacks the paper argues about:
//
//   * Efficiency: one extra server interaction per fresh lookup.
//   * Consistency: deleting/renaming an object at its home server leaves a
//     stale registry entry unless a second update reaches the name server
//     (no multi-server atomicity here, as in most real systems of the era).
//   * Reliability: if the name server's host is down, objects that are
//     perfectly reachable can no longer be named.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.hpp"
#include "ipc/kernel.hpp"
#include "msg/message.hpp"
#include "naming/types.hpp"
#include "sim/task.hpp"

namespace v::baseline {

// Request codes (non-CSname range 0x03xx; names travel in the read segment
// with their length at kOffNameLen).
inline constexpr std::uint16_t kRegisterName = 0x0310;
inline constexpr std::uint16_t kLookupName = 0x0311;
inline constexpr std::uint16_t kUnregisterName = 0x0312;
inline constexpr std::uint16_t kCountNames = 0x0313;

inline constexpr std::size_t kOffNameLen = 2;      // u16 (all requests)
inline constexpr std::size_t kOffServerPid = 4;    // u32 (register + reply)
inline constexpr std::size_t kOffContextId = 8;    // u32
inline constexpr std::size_t kOffLeafLen = 12;     // u16 leaf suffix length
inline constexpr std::size_t kOffCount = 4;        // u32 (count reply)

/// A registry binding: the object's home context and its leaf name there.
struct Binding {
  naming::ContextPair home;
  std::string leaf;
};

/// The central name server state.  The process body is run(); keep the
/// object alive for the domain's lifetime.
class CentralNameServer {
 public:
  sim::Co<void> run(ipc::Process self);

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] ipc::ProcessId pid() const noexcept { return pid_; }

  /// Pre-run bulk population (benchmarks).
  void preload(std::string name, Binding binding);

 private:
  std::map<std::string, Binding, std::less<>> table_;
  ipc::ProcessId pid_;
};

/// Client-side stubs for the centralized model.
class CentralClient {
 public:
  CentralClient(ipc::Process self, ipc::ProcessId name_server) noexcept
      : self_(self), name_server_(name_server) {}

  /// Register `name` as naming `binding`.
  sim::Co<ReplyCode> register_name(std::string_view name,
                                   const Binding& binding);

  /// Resolve `name` to its binding.  kNoReply when the name server is down.
  sim::Co<Result<Binding>> lookup(std::string_view name);

  sim::Co<ReplyCode> unregister_name(std::string_view name);

  sim::Co<Result<std::uint32_t>> count();

 private:
  sim::Co<msg::Message> send_with_name(msg::Message request,
                                       std::string_view name,
                                       std::span<std::byte> write_segment);

  ipc::Process self_;
  ipc::ProcessId name_server_;
};

}  // namespace v::baseline
