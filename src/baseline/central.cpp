#include "baseline/central.hpp"

#include <cstring>
#include <vector>

#include "naming/parse.hpp"
#include "common/annotate.hpp"

namespace v::baseline {

void CentralNameServer::preload(std::string name, Binding binding) {
  table_[std::move(name)] = std::move(binding);
}

sim::Co<void> CentralNameServer::run(ipc::Process self) {
  pid_ = self.pid();
  self.set_pid(ipc::ServiceId::kCentralNameServer, self.pid(),
               ipc::Scope::kBoth);
  for (;;) {
    auto env = co_await self.receive();
    const std::uint16_t code = env.request.code();
    if (code == kCountNames) {
      msg::Message reply = msg::make_reply(ReplyCode::kOk);
      reply.set_u32(kOffCount, static_cast<std::uint32_t>(table_.size()));
      self.reply(reply, env.sender);
      continue;
    }
    if (code != kRegisterName && code != kLookupName &&
        code != kUnregisterName) {
      self.reply(msg::make_reply(ReplyCode::kIllegalRequest), env.sender);
      continue;
    }
    const std::uint16_t name_len = env.request.u16(kOffNameLen);
    if (name_len == 0 || name_len > naming::kMaxNameLength) {
      self.reply(msg::make_reply(ReplyCode::kBadArgs), env.sender);
      continue;
    }
    std::string name(name_len, '\0');
    auto fetched = co_await self.move_from(
        env, std::as_writable_bytes(std::span(name)), 0);
    if (!fetched.ok()) continue;
    // Registry work: comparable per-request cost to a CSNH server's parse.
    co_await self.compute(self.params().csname_parse);

    msg::Message reply;
    switch (code) {
      case kRegisterName: {
        Binding binding;
        binding.home.server =
            ipc::ProcessId{env.request.u32(kOffServerPid)};
        binding.home.context = env.request.u32(kOffContextId);
        const std::uint16_t leaf_len = env.request.u16(kOffLeafLen);
        if (!binding.home.valid() || leaf_len > name.size()) {
          reply = msg::make_reply(ReplyCode::kBadArgs);
          break;
        }
        binding.leaf = name.substr(name.size() - leaf_len);
        table_[name] = std::move(binding);
        reply = msg::make_reply(ReplyCode::kOk);
        break;
      }
      case kLookupName: {
        auto it = table_.find(name);
        if (it == table_.end()) {
          reply = msg::make_reply(ReplyCode::kNotFound);
          break;
        }
        reply = msg::make_reply(ReplyCode::kOk);
        reply.set_u32(kOffServerPid, it->second.home.server.raw);
        reply.set_u32(kOffContextId, it->second.home.context);
        reply.set_u16(kOffLeafLen,
                      static_cast<std::uint16_t>(it->second.leaf.size()));
        // The leaf suffix is implicit in the name the client sent; no bulk
        // reply needed.
        break;
      }
      case kUnregisterName: {
        reply = msg::make_reply(table_.erase(name) > 0
                                    ? ReplyCode::kOk
                                    : ReplyCode::kNotFound);
        break;
      }
      default:
        reply = msg::make_reply(ReplyCode::kIllegalRequest);
        break;
    }
    self.reply(reply, env.sender);
  }
}

V_BORROWS_SPAN
sim::Co<msg::Message> CentralClient::send_with_name(
    msg::Message request, std::string_view name,
    std::span<std::byte> write_segment) {
  co_await self_.compute(self_.params().send_build);
  request.set_u16(kOffNameLen, static_cast<std::uint16_t>(name.size()));
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(name.data(), name.size()));
  segments.write = write_segment;
  co_return co_await self_.send(request, name_server_, segments);
}

sim::Co<ReplyCode> CentralClient::register_name(std::string_view name,
                                                const Binding& binding) {
  msg::Message request;
  request.set_code(kRegisterName);
  request.set_u32(kOffServerPid, binding.home.server.raw);
  request.set_u32(kOffContextId, binding.home.context);
  request.set_u16(kOffLeafLen,
                  static_cast<std::uint16_t>(binding.leaf.size()));
  const auto reply = co_await send_with_name(request, name, {});
  co_return reply.reply_code();
}

V_BORROWS_SPAN
sim::Co<Result<Binding>> CentralClient::lookup(std::string_view name) {
  msg::Message request;
  request.set_code(kLookupName);
  const auto reply = co_await send_with_name(request, name, {});
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  Binding binding;
  binding.home.server = ipc::ProcessId{reply.u32(kOffServerPid)};
  binding.home.context = reply.u32(kOffContextId);
  const std::uint16_t leaf_len = reply.u16(kOffLeafLen);
  if (leaf_len > name.size()) co_return ReplyCode::kBadArgs;
  binding.leaf = std::string(name.substr(name.size() - leaf_len));
  co_return binding;
}

sim::Co<ReplyCode> CentralClient::unregister_name(std::string_view name) {
  msg::Message request;
  request.set_code(kUnregisterName);
  const auto reply = co_await send_with_name(request, name, {});
  co_return reply.reply_code();
}

sim::Co<Result<std::uint32_t>> CentralClient::count() {
  co_await self_.compute(self_.params().send_build);
  msg::Message request;
  request.set_code(kCountNames);
  const auto reply = co_await self_.send(request, name_server_);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return reply.u32(kOffCount);
}

}  // namespace v::baseline
