// V-trace domain metrics registry.
//
// One counting substrate for the whole simulation: counters, gauges and
// histograms keyed (scope, name), where scope is a server's process name
// ("alpha-fs") or a subsystem ("ipc", "loop", "lint", "client").  The
// kernel's DomainStats fields, the protocol-lint violation counts and the
// event-loop stats are mirrored in as callback entries, so one read path
// covers everything.
//
// Two export paths:
//   * to_json() — snapshot for benches (`--metrics <path>` in bench_util);
//   * the MetricsServer (src/servers/metrics_server.hpp), which mounts the
//     registry as a `[metrics]` context — the paper's own context-directory
//     mechanism (section 5.6) turned on the system itself, so a client can
//     Open/Read "[metrics]fileserver/requests" like any file.
//
// With V_TRACE=OFF the registry is an inline empty shell: the query surface
// stays (so the MetricsServer compiles and serves an empty context), but no
// registration/update entry point exists — update sites are compiled out
// under #if V_TRACE_ENABLED and no v::obs:: symbol survives.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#if V_TRACE_ENABLED
#include <cstdint>
#include <functional>
#include <map>

#include "sim/stats.hpp"
#endif

namespace v::obs {

#if V_TRACE_ENABLED

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level; remembers its high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t high_water() const noexcept {
    return high_water_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

/// Sample distribution (count/mean/percentiles via sim::Accumulator).
class Histogram {
 public:
  void add(double v) { acc_.add(v); }
  [[nodiscard]] const sim::Accumulator& data() const noexcept { return acc_; }

 private:
  sim::Accumulator acc_;
};

class MetricsRegistry {
 public:
  /// Find-or-create.  References stay valid for the registry's lifetime,
  /// so hot paths can cache them.
  Counter& counter(std::string_view scope, std::string_view name);
  Gauge& gauge(std::string_view scope, std::string_view name);
  Histogram& histogram(std::string_view scope, std::string_view name);

  /// Register a live read-through entry (mirrors external counters such as
  /// DomainStats fields without moving their storage).
  void register_callback(std::string_view scope, std::string_view name,
                         std::function<double()> read);

  /// Scopes in first-registration order (stable within a run; the
  /// MetricsServer derives context ids from this order).
  [[nodiscard]] const std::vector<std::string>& scopes() const noexcept {
    return scope_order_;
  }
  /// Metric names within a scope, sorted.
  [[nodiscard]] std::vector<std::string> names(std::string_view scope) const;
  /// Current value rendered as one text line ("42\n"; histograms render
  /// their summary stats).  nullopt when (scope, name) is unknown.
  [[nodiscard]] std::optional<std::string> value_text(
      std::string_view scope, std::string_view name) const;

  /// Whole registry as a JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Metric {
    enum class Kind { kCounter, kGauge, kHistogram, kCallback };
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
    std::function<double()> callback;
  };
  using ScopeMap = std::map<std::string, Metric, std::less<>>;

  Metric& entry(std::string_view scope, std::string_view name,
                Metric::Kind kind);
  static std::string render(const Metric& metric);

  // std::map: node stability backs the returned references.
  std::map<std::string, ScopeMap, std::less<>> scopes_;
  std::vector<std::string> scope_order_;
};

#else  // !V_TRACE_ENABLED

/// Query-only shell: the MetricsServer serves an empty registry; all update
/// sites are compiled out under #if V_TRACE_ENABLED.
class MetricsRegistry {
 public:
  [[nodiscard]] const std::vector<std::string>& scopes() const noexcept {
    return empty_;
  }
  [[nodiscard]] std::vector<std::string> names(std::string_view) const {
    return {};
  }
  [[nodiscard]] std::optional<std::string> value_text(std::string_view,
                                                      std::string_view) const {
    return std::nullopt;
  }
  [[nodiscard]] std::string to_json() const { return "{}\n"; }

 private:
  std::vector<std::string> empty_;
};

#endif  // V_TRACE_ENABLED

}  // namespace v::obs
