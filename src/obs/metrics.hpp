// V-trace domain metrics registry.
//
// One counting substrate for the whole simulation: counters, gauges and
// histograms keyed (scope, name), where scope is a server's process name
// ("alpha-fs") or a subsystem ("ipc", "loop", "lint", "client").  The
// kernel's DomainStats fields, the protocol-lint violation counts and the
// event-loop stats are mirrored in as callback entries, so one read path
// covers everything.
//
// Two export paths:
//   * to_json() — snapshot for benches (`--metrics <path>` in bench_util);
//   * the MetricsServer (src/servers/metrics_server.hpp), which mounts the
//     registry as a `[metrics]` context — the paper's own context-directory
//     mechanism (section 5.6) turned on the system itself, so a client can
//     Open/Read "[metrics]fileserver/requests" like any file.
//
// With V_TRACE=OFF the registry is an inline empty shell: the query surface
// stays (so the MetricsServer compiles and serves an empty context), but no
// registration/update entry point exists — update sites are compiled out
// under #if V_TRACE_ENABLED and no v::obs:: symbol survives.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotate.hpp"

#if V_TRACE_ENABLED
#include <functional>
#include <map>

#include "sim/time.hpp"
#endif

namespace v::obs {

/// HdrHistogram-style log-bucketed histogram: 16 linear sub-buckets per
/// power-of-two octave over a 64-bit value range, so record() is a couple
/// of bit operations into a fixed ~7.6 KiB table and percentile reads
/// carry at most 1/16 ≈ 6.25% relative error.  This replaced the metrics
/// registry's sim::Accumulator in PR 8: storing every sample and sorting
/// per read is fine for a 20-row bench table and fatal for millions of
/// E12 opens.  Values are non-negative doubles (typically simulated
/// milliseconds), quantized to 1/1024 of the input unit (~1 µs for ms).
///
/// Deliberately OUTSIDE the V_TRACE guard: it is a header-only value type
/// with no registry ties (no v::obs:: symbol exists for it), and bench /
/// workload harness code streams samples through it in every build
/// flavour — observability gating applies to the domain's registries, not
/// to a client-side statistics accumulator.
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 4;  ///< 16 sub-buckets per octave
  static constexpr double kQuantum = 1024.0;  ///< count units per input unit

  V_HOT_PATH
  void record(double v) noexcept {
    if (!(v > 0.0)) v = 0.0;  // negatives and NaN clamp to the zero bucket
    const double scaled = v * kQuantum;
    const std::uint64_t u =
        scaled >= 18446744073709549568.0  // largest double below 2^64
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(scaled);
    counts_[index_of(u)] += 1;
    sum_ += v;
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    ++count_;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(count_);
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Percentile (q in [0,1]) as the midpoint of the bucket holding the
  /// rank, clamped to the observed [min, max] so sparse distributions
  /// never report a value outside what was recorded.
  [[nodiscard]] double percentile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cum += counts_[i];
      if (cum >= target) {
        const double v = value_of(i);
        return v < min_ ? min_ : (v > max_ ? max_ : v);
      }
    }
    return max_;
  }

  /// Raw bucket table (tests; renderers wanting full shape).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kBucketCount ? counts_[i] : 0;
  }
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBucketBits + 1) << kSubBucketBits;

 private:
  static constexpr std::size_t kSubBucketCount = 1u << kSubBucketBits;

  V_HOT_PATH
  static std::size_t index_of(std::uint64_t u) noexcept {
    if (u < kSubBucketCount) return static_cast<std::size_t>(u);
    const int msb = 63 - std::countl_zero(u);
    const int block = msb - kSubBucketBits + 1;
    const auto sub = static_cast<std::size_t>(
        (u >> (msb - kSubBucketBits)) & (kSubBucketCount - 1));
    return (static_cast<std::size_t>(block) << kSubBucketBits) + sub;
  }

  /// Midpoint of bucket i, back in input units.
  [[nodiscard]] static double value_of(std::size_t i) noexcept {
    const std::size_t block = i >> kSubBucketBits;
    const std::size_t sub = i & (kSubBucketCount - 1);
    if (block == 0) return (static_cast<double>(sub) + 0.5) / kQuantum;
    const int msb = static_cast<int>(block) + kSubBucketBits - 1;
    const double lo =
        static_cast<double>(std::uint64_t{1} << msb) +
        static_cast<double>(sub) *
            static_cast<double>(std::uint64_t{1} << (msb - kSubBucketBits));
    const double width =
        static_cast<double>(std::uint64_t{1} << (msb - kSubBucketBits));
    return (lo + width * 0.5) / kQuantum;
  }

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

#if V_TRACE_ENABLED

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level; remembers its high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t high_water() const noexcept {
    return high_water_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

/// Sample distribution (count/mean/percentiles via obs::LogHistogram —
/// see its comment for why the registry no longer stores raw samples).
class Histogram {
 public:
  void add(double v) { hist_.record(v); }
  [[nodiscard]] const LogHistogram& data() const noexcept { return hist_; }

 private:
  LogHistogram hist_;
};

/// Per-opcode latency SLO counters: each opcode with a configured budget
/// counts replies that landed within it vs over it.  observe() sits on
/// the kernel's reply-completion path, so it is a linear scan over a
/// handful of entries and nothing else; opcodes without a budget cost one
/// failed scan.  Exported through `[metrics] slo/` as
/// "<opcode>.within" / "<opcode>.over" callback mirrors.
class SloTracker {
 public:
  struct Slo {
    sim::SimDuration budget = 0;  ///< simulated ns
    std::uint64_t within = 0;
    std::uint64_t over = 0;
    std::uint16_t code = 0;
  };

  /// Set (or reset) the budget for one opcode.  Counters persist across a
  /// budget change.
  void set_budget(std::uint16_t code, sim::SimDuration budget) {
    for (Slo& s : slos_) {
      if (s.code == code) {
        s.budget = budget;
        return;
      }
    }
    slos_.push_back({budget, 0, 0, code});
  }

  /// Entry for one opcode; nullptr when it has no budget.  Look up by
  /// code, not by held reference — set_budget may reallocate.
  [[nodiscard]] const Slo* find(std::uint16_t code) const noexcept {
    for (const Slo& s : slos_) {
      if (s.code == code) return &s;
    }
    return nullptr;
  }

  V_HOT_PATH
  void observe(std::uint16_t code, sim::SimDuration took) noexcept {
    for (Slo& s : slos_) {
      if (s.code == code) {
        if (took <= s.budget) {
          ++s.within;
        } else {
          ++s.over;
        }
        return;
      }
    }
  }

  [[nodiscard]] const std::vector<Slo>& entries() const noexcept {
    return slos_;
  }

 private:
  std::vector<Slo> slos_;
};

class MetricsRegistry {
 public:
  /// Find-or-create.  References stay valid for the registry's lifetime,
  /// so hot paths can cache them.
  Counter& counter(std::string_view scope, std::string_view name);
  Gauge& gauge(std::string_view scope, std::string_view name);
  Histogram& histogram(std::string_view scope, std::string_view name);

  /// Register a live read-through entry (mirrors external counters such as
  /// DomainStats fields without moving their storage).
  void register_callback(std::string_view scope, std::string_view name,
                         std::function<double()> read);

  /// Scopes in first-registration order (stable within a run; the
  /// MetricsServer derives context ids from this order).
  [[nodiscard]] const std::vector<std::string>& scopes() const noexcept {
    return scope_order_;
  }
  /// Metric names within a scope, sorted.
  [[nodiscard]] std::vector<std::string> names(std::string_view scope) const;
  /// Current value rendered as one text line ("42\n"; histograms render
  /// their summary stats).  nullopt when (scope, name) is unknown.
  [[nodiscard]] std::optional<std::string> value_text(
      std::string_view scope, std::string_view name) const;

  /// Whole registry as a JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Metric {
    enum class Kind { kCounter, kGauge, kHistogram, kCallback };
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
    std::function<double()> callback;
  };
  using ScopeMap = std::map<std::string, Metric, std::less<>>;

  Metric& entry(std::string_view scope, std::string_view name,
                Metric::Kind kind);
  static std::string render(const Metric& metric);

  // std::map: node stability backs the returned references.
  std::map<std::string, ScopeMap, std::less<>> scopes_;
  std::vector<std::string> scope_order_;
};

#else  // !V_TRACE_ENABLED

/// Query-only shell: the MetricsServer serves an empty registry; all update
/// sites are compiled out under #if V_TRACE_ENABLED.
class MetricsRegistry {
 public:
  [[nodiscard]] const std::vector<std::string>& scopes() const noexcept {
    return empty_;
  }
  [[nodiscard]] std::vector<std::string> names(std::string_view) const {
    return {};
  }
  [[nodiscard]] std::optional<std::string> value_text(std::string_view,
                                                      std::string_view) const {
    return std::nullopt;
  }
  [[nodiscard]] std::string to_json() const { return "{}\n"; }

 private:
  std::vector<std::string> empty_;
};

#endif  // V_TRACE_ENABLED

}  // namespace v::obs
