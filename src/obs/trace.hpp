// V-trace resolution tracing (observability layer).
//
// The paper's central mechanism — a CSname request wandering server to
// server via Forward until someone answers — is exactly the behavior that
// is invisible in aggregate counters.  V-trace records the path: the kernel
// opens a root span when a traced process Sends, every CSNH server opens a
// hop span (split into queue-wait and service segments) when it dispatches
// the request, and forwarding re-parents the next hop under the current
// one, so a completed request yields a causally-ordered hop tree.
//
// Spans carry SIMULATED time only and recording never consumes simulated
// time, so enabling a TraceSink cannot change a single measured number —
// the same guarantee V-check made, enforced by the same CI gate (bench
// reports bit-identical with V_TRACE=OFF).
//
// Exports: Chrome trace-event JSON (load trace.json in Perfetto / about:
// tracing; `ts`/`dur` are simulated microseconds) and an indented text
// rendering for terminals and tests.
//
// Build flag: V_TRACE (default ON).  With V_TRACE=OFF this header provides
// empty shells, every call site is compiled out, and CI proves no v::obs::
// symbol survives in linked binaries.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <cstdint>
#include <string>

#include "common/annotate.hpp"
#include "obs/flight.hpp"
#include "sim/time.hpp"

#if V_TRACE_ENABLED
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>
#endif

namespace v::obs {

/// True when the build carries the obs tooling; usable in `if constexpr`.
constexpr bool enabled() noexcept { return V_TRACE_ENABLED != 0; }

#if V_TRACE_ENABLED

/// Human label for a request code.  Standard protocol codes return views
/// over static string literals (no allocation, no copy); unknown codes
/// render as "op-0x####" interned once per code, so every returned view is
/// valid for the life of the process.
std::string_view opcode_label(std::uint16_t code);

/// Low-level Chrome trace-event JSON emitters.  Both renderers — the
/// TraceSink hop trees and the FlightRecorder ring dumps — go through
/// these, so a flight dump loads in Perfetto exactly like a trace and the
/// document shape is defined in one place.  arg() must only be called
/// between begin_complete() and end_complete().
namespace chrome {
std::string escape(std::string_view in);
void begin_doc(std::string& out, std::string_view process_name);
void thread_meta(std::string& out, std::uint32_t tid, std::string_view name);
void begin_complete(std::string& out, double ts_us, double dur_us,
                    std::uint32_t tid, std::string_view name,
                    std::string_view category);
void arg(std::string& out, std::string_view key, std::string_view value);
void end_complete(std::string& out);
void end_doc(std::string& out);
}  // namespace chrome

/// Trace state carried inside ipc::Envelope and propagated by Send /
/// Forward / forward_to_group.  NOT part of the paper's 32-byte wire
/// format — a simulation extra, documented as such in PROTOCOL.md §10.
///
/// The sampled bit is the head-based sampling decision: set once at the
/// root span by SamplePolicy::decide() (flight.hpp) and then only copied,
/// so a request is traced end-to-end or not at all.  trace_id stays 0 for
/// unsampled requests — every downstream hop guard already checks it.
struct TraceContext {
  static constexpr std::uint8_t kSampled = 0x01;

  std::uint64_t trace_id = 0;    ///< 0 = request is not being traced
  std::uint32_t parent_span = 0; ///< span the next hop hangs under
  sim::SimTime enqueued_at = -1; ///< kernel delivery time (queue-wait start)
  std::uint8_t flags = 0;        ///< kSampled when the head decision kept it

  [[nodiscard]] bool sampled() const noexcept {
    return (flags & kSampled) != 0;
  }
  void set_sampled() noexcept { flags |= kSampled; }
};

/// One node of the hop tree.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint32_t id = 0;      ///< 1-based; also index+1 into TraceSink::spans
  std::uint32_t parent = 0;  ///< 0 = root
  sim::SimTime start = 0;
  sim::SimTime end = -1;     ///< -1 while still open
  std::string name;          ///< e.g. "send open", "hop alpha-fs", "queue"
  std::string category;      ///< "send" | "hop" | "queue" | "service" | "mark"
  std::uint32_t pid = 0;     ///< process the span is attributed to
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-Domain span collector.  Inert until enable(); all times are
/// simulated, so collection never perturbs the run.
class TraceSink {
 public:
  void enable() noexcept { active_ = true; }
  void disable() noexcept { active_ = false; }
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Allocate a fresh trace id (one per traced Send).
  std::uint64_t begin_trace() { return next_trace_++; }

  std::uint32_t begin_span(std::uint64_t trace_id, std::uint32_t parent,
                           std::string name, std::string category,
                           std::uint32_t pid, sim::SimTime start);
  void end_span(std::uint32_t id, sim::SimTime end);
  void annotate(std::uint32_t id, std::string key, std::string value);

  /// Remember a display label for a pid (Chrome thread_name metadata).
  void set_process_label(std::uint32_t pid, std::string_view label);

  // Root-span bookkeeping for kernel sends.  A V process has exactly one
  // outstanding Send, so the open root span is keyed by the sender's pid.
  void note_send(std::uint32_t sender_pid, std::uint32_t span_id);
  [[nodiscard]] std::uint32_t open_send(std::uint32_t sender_pid) const;
  /// Close the sender's root span (no-op when it has none open).  The
  /// empty check is inline: this sits on every reply delivery, and with
  /// the tracer idle (the default) the map is empty — no hash probe, no
  /// out-of-line call.
  V_HOT_PATH
  void end_send(std::uint32_t sender_pid, std::uint16_t reply_code,
                sim::SimTime now) {
    if (open_sends_.empty()) return;
    end_send_slow(sender_pid, reply_code, now);
  }

  /// Head-based sampling policy (kernel consults it at the root span).
  [[nodiscard]] SamplePolicy& sampler() noexcept { return sampler_; }
  [[nodiscard]] const SamplePolicy& sampler() const noexcept {
    return sampler_;
  }

  /// Tail record for an anomaly the head decision skipped: a failed send
  /// whose envelope was unsampled still leaves a closed "mark" span (its
  /// hops are gone — head sampling cannot resurrect them — but the error,
  /// its latency, and its trace-less-ness are on the timeline, and the
  /// flight recorder has the per-host event stream).
  void note_error_reply(std::uint32_t sender_pid, std::uint16_t reply_code,
                        sim::SimTime started, sim::SimTime now);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const Span* find(std::uint32_t id) const noexcept {
    return id >= 1 && id <= spans_.size() ? &spans_[id - 1] : nullptr;
  }
  [[nodiscard]] std::uint64_t trace_count() const noexcept {
    return next_trace_ - 1;
  }

  /// Indented text rendering of one trace's hop tree.
  [[nodiscard]] std::string render_text(std::uint64_t trace_id) const;
  /// All traces as one Chrome trace-event JSON document.
  [[nodiscard]] std::string chrome_json() const;
  /// Write chrome_json() to `path`.  Returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  void clear();

 private:
  [[nodiscard]] Span* find_mut(std::uint32_t id) noexcept {
    return id >= 1 && id <= spans_.size() ? &spans_[id - 1] : nullptr;
  }

  void end_send_slow(std::uint32_t sender_pid, std::uint16_t reply_code,
                     sim::SimTime now);

  bool active_ = false;
  std::uint64_t next_trace_ = 1;
  std::vector<Span> spans_;
  std::unordered_map<std::uint32_t, std::uint32_t> open_sends_;
  std::unordered_map<std::uint32_t, std::string> process_labels_;
  SamplePolicy sampler_;
};

#else  // !V_TRACE_ENABLED

// Compiled-out shells: the envelope field costs nothing and the sink
// answers "inactive" so any remaining `if (tracer.active())` guard folds
// away.  Recording calls must sit under `#if V_TRACE_ENABLED` at the call
// site; the shells deliberately do not provide them.
struct TraceContext {};

class TraceSink {
 public:
  void enable() noexcept {}
  void disable() noexcept {}
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] SamplePolicy& sampler() noexcept { return sampler_; }
  [[nodiscard]] const SamplePolicy& sampler() const noexcept {
    return sampler_;
  }

 private:
  SamplePolicy sampler_;
};

#endif  // V_TRACE_ENABLED

}  // namespace v::obs
