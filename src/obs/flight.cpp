#include "obs/flight.hpp"

#if V_BLACKBOX_ENABLED

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"

namespace v::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const char* trigger_label(std::uint16_t code) {
  switch (code) {
    case kDumpChaosOracle: return "chaos-oracle";
    case kDumpRetryExhausted: return "retry-exhausted";
    case kDumpWatchdog: return "watchdog";
    case kDumpOnDemand: return "on-demand";
    default: return "trigger";
  }
}

}  // namespace

std::string_view flight_kind_label(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kSend: return "send";
    case FlightKind::kReply: return "reply";
    case FlightKind::kForward: return "forward";
    case FlightKind::kTimer: return "timer";
    case FlightKind::kGateAcquire: return "gate-acquire";
    case FlightKind::kGateRelease: return "gate-release";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kFaultDrop: return "fault-drop";
    case FlightKind::kFaultDup: return "fault-dup";
    case FlightKind::kHostDown: return "host-down";
    case FlightKind::kHostUp: return "host-up";
    case FlightKind::kBudgetExhausted: return "budget-exhausted";
    case FlightKind::kWatchdog: return "watchdog";
    case FlightKind::kDump: return "dump";
  }
  return "event";
}

void FlightRecorder::reset_rings(std::size_t count) {
  std::size_t shift = 0;
  while ((std::size_t{1} << shift) < mask_ + 1) ++shift;
  shift_ = shift;
  heads_.assign(count, 0);
  buf_.assign(count << shift_, FlightEvent{});
  if (labels_.size() < count) labels_.resize(count);
  if (labels_[0].empty()) labels_[0] = "domain";
}

void FlightRecorder::set_capacity(std::size_t events_per_ring) {
  mask_ = round_up_pow2(std::max<std::size_t>(events_per_ring, 8)) - 1;
  reset_rings(heads_.size());
}

void FlightRecorder::attach_host(std::uint16_t host, std::string_view label) {
  if (host >= heads_.size()) {
    heads_.resize(host + 1, 0);
    labels_.resize(host + 1);
    buf_.resize(heads_.size() << shift_, FlightEvent{});
  }
  labels_[host] = std::string(label);
}

std::uint64_t FlightRecorder::records() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t head : heads_) total += head;
  return total;
}

std::uint64_t FlightRecorder::overwritten() const noexcept {
  std::uint64_t lost = 0;
  for (const std::uint64_t head : heads_) {
    if (head > mask_ + 1) lost += head - (mask_ + 1);
  }
  return lost;
}

bool FlightRecorder::trigger(std::uint16_t trigger_code, sim::SimTime at) {
  ++triggers_;
  record(0, FlightKind::kDump, at, 0, 0, trigger_code, triggers_);
  if (dump_path_.empty()) return false;
  return write_chrome_json(dump_path_);
}

std::string FlightRecorder::chrome_json() const {
  // Merge every ring's surviving records in (at, seq) order.  seq is the
  // global append counter, so ties at one simulated instant keep their
  // true causal order and the document is deterministic for a fixed seed.
  std::vector<std::pair<const FlightEvent*, std::uint16_t>> merged;
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    const FlightEvent* ring = buf_.data() + (h << shift_);
    const std::uint64_t head = heads_[h];
    const std::uint64_t count = std::min<std::uint64_t>(head, mask_ + 1);
    for (std::uint64_t i = head - count; i < head; ++i) {
      merged.emplace_back(&ring[i & mask_], static_cast<std::uint16_t>(h));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) {
              if (a.first->at != b.first->at) return a.first->at < b.first->at;
              return a.first->seq < b.first->seq;
            });

  std::string out;
  chrome::begin_doc(out, "v-flight (last events per host, simulated time)");
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    chrome::thread_meta(out, static_cast<std::uint32_t>(h),
                        labels_[h].empty() ? "host" : labels_[h]);
  }
  char buf[32];
  for (const auto& [ev, host] : merged) {
    const FlightKind kind = static_cast<FlightKind>(ev->kind);
    std::string name(flight_kind_label(kind));
    if (kind == FlightKind::kDump) {
      name += " ";
      name += trigger_label(ev->code);
    } else if (ev->code != 0 && kind != FlightKind::kHostDown &&
               kind != FlightKind::kHostUp) {
      name += " ";
      name += opcode_label(ev->code);
    }
    std::string cat = "flight-";
    cat += flight_kind_label(kind);
    chrome::begin_complete(out, static_cast<double>(ev->at) / 1000.0, 0.0,
                           static_cast<std::uint32_t>(host), name, cat);
    std::snprintf(buf, sizeof buf, "%u", ev->seq);
    chrome::arg(out, "seq", buf);
    if (ev->actor != 0) {
      std::snprintf(buf, sizeof buf, "%u", ev->actor);
      chrome::arg(out, "actor", buf);
    }
    if (ev->peer != 0) {
      std::snprintf(buf, sizeof buf, "%u", ev->peer);
      chrome::arg(out, "peer", buf);
    }
    if (ev->code != 0) {
      std::snprintf(buf, sizeof buf, "%u", ev->code);
      chrome::arg(out, "code", buf);
    }
    if (ev->arg != 0) {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(ev->arg));
      chrome::arg(out, "arg", buf);
    }
    if ((ev->flags & 0x1) != 0) chrome::arg(out, "sampled", "1");
    chrome::end_complete(out);
  }
  chrome::end_doc(out);
  return out;
}

bool FlightRecorder::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

void FlightRecorder::clear() {
  std::fill(heads_.begin(), heads_.end(), 0);
  std::fill(buf_.begin(), buf_.end(), FlightEvent{});
  next_seq_ = 0;
  triggers_ = 0;
}

}  // namespace v::obs

#endif  // V_BLACKBOX_ENABLED
