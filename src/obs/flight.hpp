// V-blackbox flight recorder (observability layer, round 2).
//
// The ROADMAP's production-day workloads (thousands of hosts, millions of
// Zipf-distributed opens) make PR 3's record-everything V-trace both the
// bottleneck and useless: unbounded JSON, and no way to find the one bad
// open among millions.  The flight recorder is the other half of the
// answer (head-based sampling in trace.hpp is the first): a fixed-size
// per-host ring of compact 32-byte binary event records — send / reply /
// forward, timer fires, gate acquire/release, retransmits, fault
// injections — cheap enough to stay on for every run.  Nothing is written
// anywhere until a dump trigger fires (chaos-oracle failure, kNoReply
// retry-budget exhaustion, the event-loop watchdog, or an on-demand read
// of `[metrics] flight dump`), at which point the last N events on every
// involved host render through the same Chrome trace-event emitter as
// V-trace, so a failed chaos seed yields a Perfetto-loadable post-mortem.
//
// Events carry SIMULATED time and deterministic sequence numbers only, so
// a dump of the same seed is byte-identical across runs — the dump IS a
// reproduction artifact, not a log file.
//
// Build gating: the recorder compiles out with V_TRACE=OFF exactly like
// the rest of v::obs (CI proves the untraced binary symbol-free), but it
// deliberately guards its code with the derived macro V_BLACKBOX_ENABLED
// rather than V_TRACE_ENABLED: tools/vlint treats V_TRACE_ENABLED regions
// as compiled-out-of-measurement and skips them in the hot-path rule,
// and the whole point of PR 8's satellite is that V-lint PROVES
// FlightRecorder::record() and SamplePolicy::decide() allocation-free.
// The derived macro keeps the preprocessor behavior identical while
// leaving the bodies visible to the lint.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#define V_BLACKBOX_ENABLED V_TRACE_ENABLED

#include <cstdint>
#include <string>

#include "common/annotate.hpp"
#include "sim/time.hpp"

#if V_BLACKBOX_ENABLED
#include <string_view>
#include <vector>
#endif

namespace v::obs {

/// Events kept per ring (one ring per host + ring 0 for the domain/loop).
/// 512 × 32 B = 16 KiB per host — small enough to be always-on, deep
/// enough to cover several retry budgets of traffic around a failure.
inline constexpr std::size_t kDefaultFlightCapacity = 512;

#if V_BLACKBOX_ENABLED

/// What a flight-recorder record describes.  Values are part of the dump
/// format documented in DESIGN.md §4k — append, don't renumber.
enum class FlightKind : std::uint8_t {
  kSend = 1,         ///< kernel Send accepted (actor=sender, peer=dest)
  kReply = 2,        ///< reply delivered (actor=replier, peer=sender)
  kForward = 3,      ///< Forward re-targeted a transaction
  kTimer = 4,        ///< event-loop dispatched a scheduled action
  kGateAcquire = 5,  ///< CSNH mutation gate acquired (arg=gate hash)
  kGateRelease = 6,  ///< CSNH mutation gate released (arg=held ns)
  kRetransmit = 7,   ///< kernel retransmitted an unanswered Send
  kFaultDrop = 8,    ///< fault plan dropped a packet
  kFaultDup = 9,     ///< fault plan duplicated a packet
  kHostDown = 10,    ///< host crashed or paused (code: 0=crash, 1=pause)
  kHostUp = 11,      ///< host restarted or resumed (code: 0=restart, 1=resume)
  kBudgetExhausted = 12,  ///< retry budget spent, kNoReply synthesized
  kWatchdog = 13,    ///< watchdog tripped (arg=blocked ns)
  kDump = 14,        ///< a dump trigger fired (code: trigger id)
};

/// Human label for a FlightKind ("send", "timer", ...).
std::string_view flight_kind_label(FlightKind kind) noexcept;

/// One 32-byte flight-recorder record.  Fixed layout, simulated time only.
struct FlightEvent {
  sim::SimTime at = 0;       ///< simulated ns
  std::uint64_t arg = 0;     ///< kind-specific (trace id, gate hash, ns)
  std::uint32_t actor = 0;   ///< pid the event is attributed to
  std::uint32_t peer = 0;    ///< counterparty pid (0 when n/a)
  std::uint32_t seq = 0;     ///< global record sequence (dump ordering)
  std::uint16_t code = 0;    ///< request/reply code (0 when n/a)
  std::uint8_t kind = 0;     ///< FlightKind
  std::uint8_t flags = 0;    ///< bit 0: envelope had the sampled bit
};
static_assert(sizeof(FlightEvent) == 32, "flight records are 32-byte PODs");

namespace detail {

/// splitmix64 finalizer (same mix the event loop uses for fuzz tie keys):
/// pure integer arithmetic, the sampler's only moving part.
V_HOT_PATH
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Head-based sampling policy for V-trace: the keep/skip decision is made
/// ONCE at the root span (kernel Send) and carried in the envelope's
/// sampled bit, so a forwarded request is either traced end-to-end or not
/// at all.  Decisions come from a private splitmix64 counter — never from
/// the domain's RNG and never from sim state — so enabling or tuning
/// sampling cannot change a single measured number.
class SamplePolicy {
 public:
  /// Default keep probability, [0, 1].  1.0 (the default) samples every
  /// trace — existing single-workload tests and examples see no change.
  void set_rate(double rate) { default_rate_ = clamp01(rate); }
  [[nodiscard]] double rate() const noexcept { return default_rate_; }

  /// Per-opcode override (e.g. keep 1% of opens but every make-context).
  void set_opcode_rate(std::uint16_t code, double rate) {
    for (OpcodeRate& o : opcode_rates_) {
      if (o.code == code) {
        o.rate = clamp01(rate);
        return;
      }
    }
    opcode_rates_.push_back({clamp01(rate), code});
  }

  /// The head decision for one root span.  Deterministic: the Nth call
  /// with the same configuration always answers the same way.
  V_HOT_PATH
  bool decide(std::uint16_t code) noexcept {
    double rate = default_rate_;
    for (const OpcodeRate& o : opcode_rates_) {
      if (o.code == code) {
        rate = o.rate;
        break;
      }
    }
    if (rate >= 1.0) {
      ++sampled_;
      return true;
    }
    bool keep = false;
    if (rate > 0.0) {
      // 53-bit uniform draw in [0, 1) from the private counter.
      const std::uint64_t draw = detail::mix(seq_);
      keep = static_cast<double>(draw >> 11) * 0x1.0p-53 < rate;
    }
    ++seq_;
    if (keep) {
      ++sampled_;
    } else {
      ++skipped_;
    }
    return keep;
  }

  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }
  [[nodiscard]] std::uint64_t skipped() const noexcept { return skipped_; }

 private:
  static double clamp01(double r) noexcept {
    return r < 0.0 ? 0.0 : (r > 1.0 ? 1.0 : r);
  }

  struct OpcodeRate {
    double rate = 1.0;
    std::uint16_t code = 0;
  };

  double default_rate_ = 1.0;
  std::vector<OpcodeRate> opcode_rates_;  // tiny; linear scan beats hashing
  std::uint64_t seq_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t skipped_ = 0;
};

/// The per-domain flight recorder: ring 0 for domain-scope events (timer
/// fires, watchdog) plus one ring per attached host.  record() is the
/// always-on path and is proven allocation-free by V-lint; everything
/// else (attach, dump, render) is cold.
class FlightRecorder {
 public:
  FlightRecorder() { reset_rings(1); }

  /// Events kept per ring.  Rounded up to a power of two.  Re-sizing
  /// clears recorded history (capacity is a construction-time decision;
  /// the setter exists for benches probing overhead vs depth).
  void set_capacity(std::size_t events_per_ring);
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Make `host` (1-based, dense — ipc::Domain::add_host order) a ring.
  /// `label` names the ring's Perfetto track.
  void attach_host(std::uint16_t host, std::string_view label);

  /// Append one record to `host`'s ring (0 or an unattached id lands in
  /// the domain ring).  Always-on: a bounds check, a masked store, and a
  /// counter bump — nothing else.  The rings live in ONE flat buffer
  /// (ring h occupies slots [h << shift, (h+1) << shift)) so the slot
  /// address needs no pointer chase through a per-ring vector.
  V_HOT_PATH
  void record(std::uint16_t host, FlightKind kind, sim::SimTime at,
              std::uint32_t actor, std::uint32_t peer, std::uint16_t code,
              std::uint64_t arg, std::uint8_t flags = 0) noexcept {
    if (host >= heads_.size()) host = 0;
    const std::uint64_t head = heads_[host];
    heads_[host] = head + 1;
    FlightEvent& ev =
        buf_[(static_cast<std::size_t>(host) << shift_) +
             static_cast<std::size_t>(head & mask_)];
    ev.at = at;
    ev.arg = arg;
    ev.actor = actor;
    ev.peer = peer;
    ev.seq = next_seq_++;
    ev.code = code;
    ev.kind = static_cast<std::uint8_t>(kind);
    ev.flags = flags;
  }

  /// Total records ever written / overwritten (ring wrap losses).
  [[nodiscard]] std::uint64_t records() const noexcept;
  [[nodiscard]] std::uint64_t overwritten() const noexcept;
  [[nodiscard]] std::uint64_t triggers() const noexcept { return triggers_; }
  [[nodiscard]] std::size_t rings() const noexcept { return heads_.size(); }

  /// Where trigger() writes its dump ("" = render in memory only).
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& dump_path() const noexcept {
    return dump_path_;
  }

  /// Fire a dump trigger: records a kDump event (code = `trigger_code`,
  /// so the dump itself shows why it exists) and, when a dump path is
  /// set, writes the rendered document there.  Returns true when a file
  /// was written.  Cold by design — triggers mean something went wrong.
  bool trigger(std::uint16_t trigger_code, sim::SimTime at);

  /// All rings' surviving records, merged in (at, seq) order, as a Chrome
  /// trace-event document (same shape as TraceSink::chrome_json: one
  /// Perfetto track per ring, instant-style zero-duration slices).
  [[nodiscard]] std::string chrome_json() const;
  /// Write chrome_json() to `path`.  Returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  void clear();

 private:
  void reset_rings(std::size_t count);

  std::vector<FlightEvent> buf_;      ///< all rings, capacity() slots each
  std::vector<std::uint64_t> heads_;  ///< per ring: total appended
  std::vector<std::string> labels_;
  std::size_t mask_ = kDefaultFlightCapacity - 1;
  std::size_t shift_ = 0;  ///< log2(capacity()): ring h starts at h << shift
  std::uint32_t next_seq_ = 0;
  std::uint64_t triggers_ = 0;
  std::string dump_path_;
};

/// Dump-trigger codes recorded in the kDump event (DESIGN.md §4k).
inline constexpr std::uint16_t kDumpChaosOracle = 1;
inline constexpr std::uint16_t kDumpRetryExhausted = 2;
inline constexpr std::uint16_t kDumpWatchdog = 3;
inline constexpr std::uint16_t kDumpOnDemand = 4;

#else  // !V_BLACKBOX_ENABLED

// Compiled-out shells.  Recording call sites are gated out at the call
// site; what survives is configuration surface used by benches, which
// must answer with the same defaults as the instrumented build so that
// bench reports stay byte-identical across presets.
class SamplePolicy {
 public:
  void set_rate(double) {}
  [[nodiscard]] double rate() const noexcept { return 1.0; }
  void set_opcode_rate(std::uint16_t, double) {}
};

class FlightRecorder {
 public:
  void set_capacity(std::size_t) {}
  [[nodiscard]] std::size_t capacity() const noexcept {
    return kDefaultFlightCapacity;
  }
  void set_dump_path(std::string) {}
};

#endif  // V_BLACKBOX_ENABLED

}  // namespace v::obs
