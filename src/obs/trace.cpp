#include "obs/trace.hpp"

#if V_TRACE_ENABLED

#include <algorithm>
#include <cstdio>
#include <map>

#include "msg/request_codes.hpp"

namespace v::obs {

namespace {

std::string format_ms(sim::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", sim::to_ms(t));
  return buf;
}

}  // namespace

namespace chrome {

/// Escape a string for embedding in a JSON string literal.
std::string escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void begin_doc(std::string& out, std::string_view process_name) {
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out += "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"";
  out += escape(process_name);
  out += "\"}}";
}

void thread_meta(std::string& out, std::uint32_t tid, std::string_view name) {
  char head[96];
  std::snprintf(head, sizeof head,
                ",\n  {\"ph\": \"M\", \"name\": \"thread_name\", "
                "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": \"",
                tid);
  out += head;
  out += escape(name);
  out += "\"}}";
}

void begin_complete(std::string& out, double ts_us, double dur_us,
                    std::uint32_t tid, std::string_view name,
                    std::string_view category) {
  char head[160];
  std::snprintf(head, sizeof head,
                ",\n  {\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                "\"pid\": 1, \"tid\": %u, ",
                ts_us, dur_us, tid);
  out += head;
  out += "\"name\": \"";
  out += escape(name);
  out += "\", \"cat\": \"";
  out += escape(category);
  out += "\", \"args\": {";
}

void arg(std::string& out, std::string_view key, std::string_view value) {
  if (!out.empty() && out.back() != '{') out += ", ";
  out += "\"";
  out += escape(key);
  out += "\": \"";
  out += escape(value);
  out += "\"";
}

void end_complete(std::string& out) { out += "}}"; }

void end_doc(std::string& out) { out += "\n]}\n"; }

}  // namespace chrome

std::string_view opcode_label(std::uint16_t code) {
  switch (code) {
    case msg::kMapContextName: return "map-context";
    case msg::kQueryName: return "query";
    case msg::kModifyName: return "modify";
    case msg::kRemoveName: return "remove";
    case msg::kRenameName: return "rename";
    case msg::kAddContextName: return "add-name";
    case msg::kDeleteContextName: return "delete-name";
    case msg::kCreateInstance: return "open";
    case msg::kCreateName: return "create";
    case msg::kMakeContext: return "make-context";
    case msg::kLinkContext: return "link-context";
    case msg::kGetContextName: return "get-context-name";
    case msg::kGetFileName: return "get-file-name";
    case msg::kQueryInstance: return "query-instance";
    case msg::kReadInstance: return "read-instance";
    case msg::kWriteInstance: return "write-instance";
    case msg::kReleaseInstance: return "release-instance";
    case msg::kGetTime: return "get-time";
    case msg::kLoadProgram: return "load-program";
    default: {
      // Unknown codes are cold (custom servers, tests): intern the label
      // once per code so the view stays valid for the process lifetime.
      // The sim is single-threaded, so a plain function-local map is safe;
      // std::map nodes never move, so views into values stay stable.
      static std::map<std::uint16_t, std::string> interned;
      auto [it, inserted] = interned.try_emplace(code);
      if (inserted) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "op-0x%04x", code);
        it->second = buf;
      }
      return it->second;
    }
  }
}

std::uint32_t TraceSink::begin_span(std::uint64_t trace_id,
                                    std::uint32_t parent, std::string name,
                                    std::string category, std::uint32_t pid,
                                    sim::SimTime start) {
  Span span;
  span.trace_id = trace_id;
  span.id = static_cast<std::uint32_t>(spans_.size() + 1);
  span.parent = parent;
  span.start = start;
  span.name = std::move(name);
  span.category = std::move(category);
  span.pid = pid;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceSink::end_span(std::uint32_t id, sim::SimTime end) {
  if (Span* span = find_mut(id)) span->end = end;
}

void TraceSink::annotate(std::uint32_t id, std::string key,
                         std::string value) {
  if (Span* span = find_mut(id)) {
    span->args.emplace_back(std::move(key), std::move(value));
  }
}

void TraceSink::set_process_label(std::uint32_t pid, std::string_view label) {
  if (label.empty()) return;
  auto [it, inserted] = process_labels_.try_emplace(pid);
  if (inserted) it->second = std::string(label);
}

void TraceSink::note_send(std::uint32_t sender_pid, std::uint32_t span_id) {
  open_sends_[sender_pid] = span_id;
}

std::uint32_t TraceSink::open_send(std::uint32_t sender_pid) const {
  auto it = open_sends_.find(sender_pid);
  return it != open_sends_.end() ? it->second : 0;
}

void TraceSink::end_send_slow(std::uint32_t sender_pid,
                              std::uint16_t reply_code, sim::SimTime now) {
  auto it = open_sends_.find(sender_pid);
  if (it == open_sends_.end()) return;
  const std::uint32_t id = it->second;
  open_sends_.erase(it);
  end_span(id, now);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u", reply_code);
  annotate(id, "reply_code", buf);
}

void TraceSink::note_error_reply(std::uint32_t sender_pid,
                                 std::uint16_t reply_code,
                                 sim::SimTime started, sim::SimTime now) {
  if (started < 0) started = now;
  const std::uint32_t id =
      begin_span(begin_trace(), 0, "error-reply", "mark", sender_pid,
                 started);
  end_span(id, now);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u", reply_code);
  annotate(id, "reply_code", buf);
  annotate(id, "unsampled", "1");
}

void TraceSink::clear() {
  spans_.clear();
  open_sends_.clear();
  process_labels_.clear();
  next_trace_ = 1;
}

std::string TraceSink::render_text(std::uint64_t trace_id) const {
  // Collect the trace's spans and index children in creation order (which
  // is also simulated-time order: spans open as the request progresses).
  std::vector<const Span*> roots;
  std::map<std::uint32_t, std::vector<const Span*>> children;
  sim::SimTime t_min = 0;
  sim::SimTime t_max = 0;
  bool any = false;
  for (const Span& span : spans_) {
    if (span.trace_id != trace_id) continue;
    if (!any) {
      t_min = span.start;
      any = true;
    }
    t_min = std::min(t_min, span.start);
    t_max = std::max(t_max, std::max(span.start, span.end));
    if (span.parent == 0 || find(span.parent) == nullptr ||
        find(span.parent)->trace_id != trace_id) {
      roots.push_back(&span);
    } else {
      children[span.parent].push_back(&span);
    }
  }
  std::string out = "trace #" + std::to_string(trace_id);
  if (!any) return out + ": (no spans)\n";
  out += " (" + format_ms(t_max - t_min) + " ms)\n";

  struct Frame {
    const Span* span;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Span& span = *frame.span;
    out.append(static_cast<std::size_t>(frame.depth) * 2, ' ');
    out += span.name;
    out += " [" + format_ms(span.start - t_min) + "–" +
           format_ms((span.end >= 0 ? span.end : t_max) - t_min) + " ms";
    if (span.end < 0) out += ", open";
    out += "]";
    for (const auto& [key, value] : span.args) {
      out += " " + key + "=" + value;
    }
    out += "\n";
    auto kids = children.find(span.id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back({*it, frame.depth + 1});
      }
    }
  }
  return out;
}

std::string TraceSink::chrome_json() const {
  // Chrome trace-event format: "X" complete events with simulated-time
  // microsecond timestamps, plus "M" metadata naming the (single) process
  // and one "thread" per simulated pid.  Assembled through the shared
  // chrome:: emitters so the flight recorder's dumps are the same dialect.
  std::string out;
  chrome::begin_doc(out, "v-domain (simulated time)");
  // Sorted for a stable document (unordered_map iteration order varies).
  std::map<std::uint32_t, const std::string*> labels;
  for (const auto& [pid, label] : process_labels_) {
    labels.emplace(pid, &label);
  }
  for (const auto& [pid, label] : labels) {
    chrome::thread_meta(out, pid, *label);
  }
  sim::SimTime t_max = 0;
  for (const Span& span : spans_) {
    t_max = std::max(t_max, std::max(span.start, span.end));
  }
  for (const Span& span : spans_) {
    const sim::SimTime end = span.end >= 0 ? span.end : t_max;
    chrome::begin_complete(out, static_cast<double>(span.start) / 1000.0,
                           static_cast<double>(end - span.start) / 1000.0,
                           span.pid, span.name, span.category);
    chrome::arg(out, "trace", std::to_string(span.trace_id));
    chrome::arg(out, "span", std::to_string(span.id));
    chrome::arg(out, "parent", std::to_string(span.parent));
    for (const auto& [key, value] : span.args) {
      chrome::arg(out, key, value);
    }
    if (span.end < 0) chrome::arg(out, "open", "1");
    chrome::end_complete(out);
  }
  chrome::end_doc(out);
  return out;
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace v::obs

#endif  // V_TRACE_ENABLED
