#include "obs/metrics.hpp"

#if V_TRACE_ENABLED

#include <cmath>
#include <cstdio>
#include <utility>

namespace v::obs {

namespace {

/// Render a double the way both JSON and the `[metrics]` files need it:
/// integral values print without a fraction so counter mirrors read back
/// as plain integers.
std::string number_text(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::entry(std::string_view scope,
                                                std::string_view name,
                                                Metric::Kind kind) {
  auto scope_it = scopes_.find(scope);
  if (scope_it == scopes_.end()) {
    scope_it = scopes_.emplace(std::string(scope), ScopeMap{}).first;
    scope_order_.emplace_back(scope);
  }
  auto it = scope_it->second.find(name);
  if (it == scope_it->second.end()) {
    it = scope_it->second.emplace(std::string(name), Metric{}).first;
    it->second.kind = kind;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view scope,
                                  std::string_view name) {
  return entry(scope, name, Metric::Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view scope, std::string_view name) {
  return entry(scope, name, Metric::Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view scope,
                                      std::string_view name) {
  return entry(scope, name, Metric::Kind::kHistogram).histogram;
}

void MetricsRegistry::register_callback(std::string_view scope,
                                        std::string_view name,
                                        std::function<double()> read) {
  entry(scope, name, Metric::Kind::kCallback).callback = std::move(read);
}

std::vector<std::string> MetricsRegistry::names(std::string_view scope) const {
  std::vector<std::string> out;
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [name, metric] : it->second) out.push_back(name);
  return out;
}

std::string MetricsRegistry::render(const Metric& metric) {
  switch (metric.kind) {
    case Metric::Kind::kCounter:
      return std::to_string(metric.counter.value());
    case Metric::Kind::kGauge:
      return std::to_string(metric.gauge.high_water());
    case Metric::Kind::kCallback:
      return metric.callback ? number_text(metric.callback()) : "0";
    case Metric::Kind::kHistogram: {
      const LogHistogram& hist = metric.histogram.data();
      if (hist.empty()) return "count=0";
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "count=%zu mean=%.4f p50=%.4f p99=%.4f max=%.4f",
                    hist.count(), hist.mean(), hist.percentile(0.5),
                    hist.percentile(0.99), hist.max());
      return buf;
    }
  }
  return "?";
}

std::optional<std::string> MetricsRegistry::value_text(
    std::string_view scope, std::string_view name) const {
  auto scope_it = scopes_.find(scope);
  if (scope_it == scopes_.end()) return std::nullopt;
  auto it = scope_it->second.find(name);
  if (it == scope_it->second.end()) return std::nullopt;
  return render(it->second) + "\n";
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n";
  for (std::size_t s = 0; s < scope_order_.size(); ++s) {
    const std::string& scope = scope_order_[s];
    out += "  \"" + json_escape(scope) + "\": {\n";
    const ScopeMap& metrics = scopes_.find(scope)->second;
    std::size_t i = 0;
    for (const auto& [name, metric] : metrics) {
      out += "    \"" + json_escape(name) + "\": ";
      const std::string value = render(metric);
      const bool numeric = metric.kind != Metric::Kind::kHistogram;
      if (numeric) {
        out += value;
      } else {
        out += "\"" + json_escape(value) + "\"";
      }
      out += ++i < metrics.size() ? ",\n" : "\n";
    }
    out += s + 1 < scope_order_.size() ? "  },\n" : "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace v::obs

#endif  // V_TRACE_ENABLED
