#include "svc/runtime.hpp"

#include <cstring>

#include "msg/request_codes.hpp"
#include "naming/parse.hpp"
#include "naming/protocol.hpp"

namespace v::svc {

using msg::Message;
using msg::RequestCode;
using naming::ContextPair;
using naming::ObjectDescriptor;

sim::Co<Rt> Rt::attach(ipc::Process self, naming::ContextPair current) {
  const auto prefix_server = co_await self.get_pid(
      ipc::ServiceId::kContextPrefixServer, ipc::Scope::kLocal);
  co_return Rt(self, NameEnv{prefix_server, current});
}

sim::Co<msg::Message> Rt::send_csname(msg::Message request,
                                      std::string_view name,
                                      std::span<const std::byte> payload,
                                      std::span<std::byte> write_segment) {
  co_await self_.compute(self_.params().send_build);
  // Read segment layout: name bytes, then the operation payload.
  std::vector<std::byte> read_buffer(name.size() + payload.size());
  if (!name.empty()) {
    std::memcpy(read_buffer.data(), name.data(), name.size());
  }
  if (!payload.empty()) {
    std::memcpy(read_buffer.data() + name.size(), payload.data(),
                payload.size());
  }
  msg::cs::set_name_length(request, static_cast<std::uint16_t>(name.size()));
  msg::cs::set_name_index(request, 0);

  // The '['-check: route to the context prefix server or to the server of
  // the current context.  (Localized here, as in the paper.)
  ipc::ProcessId dest;
  if (naming::has_prefix_syntax(name)) {
    if (!env_.prefix_server.valid()) {
      co_return msg::make_reply(ReplyCode::kNotFound);
    }
    dest = env_.prefix_server;
    msg::cs::set_context_id(request, naming::kDefaultContext);
  } else {
    if (!env_.current.valid()) {
      co_return msg::make_reply(ReplyCode::kInvalidContext);
    }
    dest = env_.current.server;
    msg::cs::set_context_id(request, env_.current.context);
  }
  ipc::Segments segments;
  segments.read = read_buffer;
  segments.write = write_segment;
  co_return co_await self_.send(request, dest, segments);
}

sim::Co<Result<Rt::OpenedFile>> Rt::open_detailed(std::string_view name,
                                                  std::uint16_t mode) {
  Message request;
  request.set_code(RequestCode::kCreateInstance);
  msg::cs::set_mode(request, mode);
  const Message reply = co_await send_csname(request, name);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  io::InstanceInfo info;
  info.size_bytes = reply.u32(io::kOffCreateSize);
  info.block_bytes = reply.u16(io::kOffCreateBlock);
  info.flags = reply.u16(io::kOffCreateFlags);
  const auto instance =
      static_cast<io::InstanceId>(reply.u16(io::kOffCreateInstance));
  // Open may have been forwarded through several servers; the reply names
  // the one that finally implements the instance, and all further I/O goes
  // straight to it without remapping (paper section 4.2).
  const ipc::ProcessId server{reply.u32(io::kOffCreateServerPid)};
  const naming::ContextPair directory{server,
                                      reply.u32(io::kOffCreateContextId)};
  co_return OpenedFile{File(self_, server, instance, info), directory};
}

sim::Co<Result<File>> Rt::open(std::string_view name, std::uint16_t mode) {
  auto opened = co_await open_detailed(name, mode);
  if (!opened.ok()) co_return opened.code();
  co_return opened.take().file;
}

namespace {
/// Split a name into (directory-part, leaf).  An empty directory means
/// "interpret in the current context" — nothing cacheable.
struct SplitName {
  std::string_view dir;
  std::string_view leaf;
};
SplitName split_dir_leaf(std::string_view name) {
  const auto slash = name.rfind('/');
  if (slash != std::string_view::npos) {
    return {name.substr(0, slash), name.substr(slash + 1)};
  }
  if (naming::has_prefix_syntax(name)) {
    const auto close = name.find(naming::kPrefixClose);
    if (close != std::string_view::npos) {
      return {name.substr(0, close + 1), name.substr(close + 1)};
    }
  }
  return {std::string_view{}, name};
}
}  // namespace

sim::Co<Result<File>> Rt::open_cached(NameCache& cache,
                                      std::string_view name,
                                      std::uint16_t mode) {
  const SplitName split = split_dir_leaf(name);
  if (!split.dir.empty()) {
    const auto hit = cache.find(split.dir);
#if V_TRACE_ENABLED
    self_.domain()
        .metrics()
        .counter("client", hit ? "name_cache_hits" : "name_cache_misses")
        .inc();
#endif
    if (hit) {
      // Skip interpretation of the directory part: address the cached
      // context directly with the leaf alone.
      const naming::ContextPair saved = env_.current;
      env_.current = *hit;
      auto direct = co_await open_detailed(split.leaf, mode);
      env_.current = saved;
      if (direct.ok()) co_return direct.take().file;
      if (direct.code() == ReplyCode::kInvalidContext ||
          direct.code() == ReplyCode::kNoReply) {
        cache.erase(split.dir);  // stale: fall through to a full walk
      } else {
        // Possibly a WRONG answer if the context id was silently reused —
        // the inconsistency the paper warns about; we cannot detect it.
        co_return direct.code();
      }
    }
  }
  auto full = co_await open_detailed(name, mode);
  if (!full.ok()) co_return full.code();
  auto opened = full.take();
  if (!split.dir.empty() && opened.directory.valid()) {
    cache.put(split.dir, opened.directory);
  }
  co_return opened.file;
}

namespace {
/// Decode a buffer of concatenated descriptor records.
std::vector<ObjectDescriptor> decode_records(
    const std::vector<std::byte>& data) {
  std::vector<ObjectDescriptor> records;
  for (std::size_t off = 0; off + ObjectDescriptor::kWireSize <= data.size();
       off += ObjectDescriptor::kWireSize) {
    auto rec = ObjectDescriptor::decode(
        std::span(data).subspan(off, ObjectDescriptor::kWireSize));
    if (rec.ok()) records.push_back(rec.take());
  }
  return records;
}
}  // namespace

sim::Co<Result<std::vector<naming::ObjectDescriptor>>> Rt::list_matching(
    std::string_view ctx_name, std::string_view pattern) {
  std::string name(ctx_name);
  if (!name.empty() && name.back() != '/' &&
      name.back() != naming::kPrefixClose) {
    name.push_back('/');
  }
  name.append(pattern);
  auto opened = co_await open(
      name, naming::wire::kOpenRead | naming::wire::kOpenDirectory |
                naming::wire::kOpenPattern);
  if (!opened.ok()) co_return opened.code();
  File dir = opened.take();
  auto bytes = co_await dir.read_all();
  const ReplyCode closed = co_await dir.close();
  if (!bytes.ok()) co_return bytes.code();
  if (!v::ok(closed)) co_return closed;
  co_return decode_records(bytes.value());
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>> Rt::list_context(
    std::string_view name) {
  auto opened = co_await open(name, naming::wire::kOpenRead |
                                        naming::wire::kOpenDirectory);
  if (!opened.ok()) co_return opened.code();
  File dir = opened.take();
  auto bytes = co_await dir.read_all();
  const ReplyCode closed = co_await dir.close();
  if (!bytes.ok()) co_return bytes.code();
  if (!v::ok(closed)) co_return closed;
  co_return decode_records(bytes.value());
}

sim::Co<Result<naming::ContextPair>> Rt::map_context(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kMapContextName);
  const Message reply = co_await send_csname(request, name);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return naming::wire::get_map_reply(reply);
}

sim::Co<ReplyCode> Rt::change_context(std::string_view name) {
  auto mapped = co_await map_context(name);
  if (!mapped.ok()) co_return mapped.code();
  env_.current = mapped.value();
  co_return ReplyCode::kOk;
}

sim::Co<Result<naming::ObjectDescriptor>> Rt::query(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kQueryName);
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  const Message reply = co_await send_csname(request, name, {}, record);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return ObjectDescriptor::decode(record);
}

sim::Co<ReplyCode> Rt::modify(std::string_view name,
                              const naming::ObjectDescriptor& desc) {
  Message request;
  request.set_code(RequestCode::kModifyName);
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  desc.encode(record);
  const Message reply = co_await send_csname(request, name, record);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::remove(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kRemoveName);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::rename(std::string_view name,
                              std::string_view new_leaf) {
  Message request;
  request.set_code(RequestCode::kRenameName);
  request.set_u16(naming::wire::kOffRenameNewLength,
                  static_cast<std::uint16_t>(new_leaf.size()));
  const Message reply = co_await send_csname(
      request, name,
      std::as_bytes(std::span(new_leaf.data(), new_leaf.size())));
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::create(std::string_view name, std::uint16_t mode) {
  Message request;
  request.set_code(RequestCode::kCreateName);
  msg::cs::set_mode(request, mode);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::make_context(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kMakeContext);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::link(std::string_view name,
                            naming::ContextPair target) {
  Message request;
  request.set_code(RequestCode::kLinkContext);
  request.set_u32(naming::wire::kOffLinkServerPid, target.server.raw);
  request.set_u32(naming::wire::kOffLinkContextId, target.context);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

std::string Rt::bracket(std::string_view prefix) {
  if (naming::has_prefix_syntax(prefix)) return std::string(prefix);
  std::string name;
  name.reserve(prefix.size() + 2);
  name.push_back(naming::kPrefixOpen);
  name.append(prefix);
  name.push_back(naming::kPrefixClose);
  return name;
}

sim::Co<ReplyCode> Rt::add_prefix(std::string_view prefix,
                                  naming::ContextPair target) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddServerPid, target.server.raw);
  request.set_u32(naming::wire::kOffAddContextId, target.context);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::add_logical_prefix(std::string_view prefix,
                                          ipc::ServiceId service,
                                          naming::ContextId context) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddContextId, context);
  request.set_u16(naming::wire::kOffAddFlags, naming::wire::kAddFlagLogical);
  request.set_u16(naming::wire::kOffAddService,
                  static_cast<std::uint16_t>(service));
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::add_group_prefix(std::string_view prefix,
                                        ipc::GroupId group,
                                        naming::ContextId context) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddServerPid, group);
  request.set_u32(naming::wire::kOffAddContextId, context);
  request.set_u16(naming::wire::kOffAddFlags, naming::wire::kAddFlagGroup);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::delete_prefix(std::string_view prefix) {
  Message request;
  request.set_code(RequestCode::kDeleteContextName);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<Result<std::string>> Rt::context_name(naming::ContextPair ctx) {
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kGetContextName);
  request.set_u32(naming::wire::kOffInvContextId, ctx.context);
  std::vector<std::byte> buffer(naming::kMaxNameLength);
  ipc::Segments segments;
  segments.write = buffer;
  const Message reply = co_await self_.send(request, ctx.server, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  const std::uint16_t len = reply.u16(naming::wire::kOffInvNameLength);
  if (len > buffer.size()) co_return ReplyCode::kBadArgs;
  co_return std::string(reinterpret_cast<const char*>(buffer.data()), len);
}

sim::Co<Result<std::string>> Rt::file_name(ipc::ProcessId server,
                                           io::InstanceId instance) {
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kGetFileName);
  request.set_u16(naming::wire::kOffInvInstanceId, instance);
  std::vector<std::byte> buffer(naming::kMaxNameLength);
  ipc::Segments segments;
  segments.write = buffer;
  const Message reply = co_await self_.send(request, server, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  const std::uint16_t len = reply.u16(naming::wire::kOffInvNameLength);
  if (len > buffer.size()) co_return ReplyCode::kBadArgs;
  co_return std::string(reinterpret_cast<const char*>(buffer.data()), len);
}

}  // namespace v::svc
