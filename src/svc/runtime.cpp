#include "svc/runtime.hpp"

#include <cstring>

#include "msg/request_codes.hpp"
#include "naming/parse.hpp"
#include "naming/protocol.hpp"
#include "common/annotate.hpp"

namespace v::svc {

using msg::Message;
using msg::RequestCode;
using naming::ContextPair;
using naming::ObjectDescriptor;

sim::Co<Rt> Rt::attach(ipc::Process self, naming::ContextPair current) {
  const auto prefix_server = co_await self.get_pid(
      ipc::ServiceId::kContextPrefixServer, ipc::Scope::kLocal);
  co_return Rt(self, NameEnv{prefix_server, current});
}

V_BORROWS_SPAN
sim::Co<msg::Message> Rt::send_csname(msg::Message request,
                                      std::string_view name,
                                      std::span<const std::byte> payload,
                                      std::span<std::byte> write_segment) {
  co_await self_.compute(self_.params().send_build);
  // Read segment layout: name bytes, then the operation payload.  Both
  // pieces outlive the blocking send in the caller's storage, so expose
  // them as the kernel's scatter-gather pair (Segments::read/read2)
  // instead of staging a concatenation buffer — MoveFrom addresses them as
  // one contiguous range.
  msg::cs::set_name_length(request, static_cast<std::uint16_t>(name.size()));
  msg::cs::set_name_index(request, 0);

  // The '['-check: route to the context prefix server or to the server of
  // the current context.  (Localized here, as in the paper.)
  ipc::ProcessId dest;
  if (naming::has_prefix_syntax(name)) {
    if (!env_.prefix_server.valid()) {
      co_return msg::make_reply(ReplyCode::kNotFound);
    }
    dest = env_.prefix_server;
    msg::cs::set_context_id(request, naming::kDefaultContext);
  } else {
    if (!env_.current.valid()) {
      co_return msg::make_reply(ReplyCode::kInvalidContext);
    }
    dest = env_.current.server;
    msg::cs::set_context_id(request, env_.current.context);
  }
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(name.data(), name.size()));
  segments.read2 = payload;
  segments.write = write_segment;
  const Message reply = co_await self_.send(request, dest, segments);
  observe_reply_hints();
  co_return reply;
}

void Rt::set_cache(NameCache* cache) {
  cache_ = cache;
#if V_TRACE_ENABLED
  if (cache_ != nullptr) {
    // Materialize the namecache scope so "[metrics]namecache" is listable
    // before the first hit/miss.
    auto& metrics = self_.domain().metrics();
    metrics.counter("namecache", "hits");
    metrics.counter("namecache", "misses");
    metrics.counter("namecache", "stale");
    metrics.counter("namecache", "fallbacks");
  }
#endif
}

V_HOT_PATH
void Rt::observe_reply_hints() {
  if (cache_ == nullptr) return;
  // The origin hint reports the entry binding the request travelled
  // through; the binding hint reports the final one, which doubles as an
  // origin observation for requests that never forwarded (e.g. this
  // client's own prefix-table edits).
  cache_->observe_origin(self_.last_origin_hint());
  cache_->observe_origin(self_.last_binding_hint());
}

V_HOT_PATH
Rt::OpenedFile Rt::decode_open_reply(ipc::Process self, const Message& reply) {
  io::InstanceInfo info;
  info.size_bytes = reply.u32(io::kOffCreateSize);
  info.block_bytes = reply.u16(io::kOffCreateBlock);
  info.flags = reply.u16(io::kOffCreateFlags);
  const auto instance =
      static_cast<io::InstanceId>(reply.u16(io::kOffCreateInstance));
  // Open may have been forwarded through several servers; the reply names
  // the one that finally implements the instance, and all further I/O goes
  // straight to it without remapping (paper section 4.2).
  const ipc::ProcessId server{reply.u32(io::kOffCreateServerPid)};
  const naming::ContextPair directory{server,
                                      reply.u32(io::kOffCreateContextId)};
  return Rt::OpenedFile{File(self, server, instance, info), directory};
}

/// Split a name into (directory-part, leaf).  An empty directory means
/// "interpret in the current context" — nothing cacheable.
Rt::SplitName Rt::split_dir_leaf(std::string_view name) {
  const auto slash = name.rfind('/');
  if (slash != std::string_view::npos) {
    return {name.substr(0, slash), name.substr(slash + 1)};
  }
  if (naming::has_prefix_syntax(name)) {
    const auto close = name.find(naming::kPrefixClose);
    if (close != std::string_view::npos) {
      return {name.substr(0, close + 1), name.substr(close + 1)};
    }
  }
  return {std::string_view{}, name};
}

V_BORROWS_SPAN
sim::Co<Result<Rt::OpenedFile>> Rt::open_resolved(std::string_view name,
                                                  std::uint16_t mode) {
  Message request;
  request.set_code(RequestCode::kCreateInstance);
  msg::cs::set_mode(request, mode);
  const Message reply = co_await send_csname(request, name);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  if (cache_ != nullptr) {
    // Learn the directory binding from the piggybacked hint.  Only cache
    // it when the server's leaf boundary agrees with our split — custom
    // name syntaxes may disagree, and such a binding could not be reused.
    const ipc::BindingHint hint = self_.last_binding_hint();
    const SplitName split = split_dir_leaf(name);
    // The server's boundary may sit ON the separator our split strips.
    const std::size_t leaf_start = name.size() - split.leaf.size();
    const bool boundary_agrees =
        hint.consumed == leaf_start ||
        (hint.consumed + 1 == leaf_start && name[hint.consumed] == '/');
    if (hint.valid() && !split.dir.empty() && boundary_agrees) {
      cache_->put(split.dir,
                  NameCache::Binding{
                      {ipc::ProcessId{hint.server_pid}, hint.context_id},
                      hint.generation, hint.consumed,
                      self_.last_origin_hint()});
    }
  }
  co_return decode_open_reply(self_, reply);
}

V_BORROWS_SPAN
V_HOT_PATH
sim::Co<msg::Message> Rt::open_at(naming::ContextPair target,
                                  std::string_view name,
                                  std::uint16_t name_index,
                                  std::uint16_t mode,
                                  std::uint32_t expected_generation) {
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kCreateInstance);
  msg::cs::set_mode(request, mode);
  msg::cs::set_name_length(request, static_cast<std::uint16_t>(name.size()));
  // Address the target context directly, with the name index already past
  // whatever part the binding covers — the server interprets only the rest
  // — and demand the generation the binding was learned under.
  msg::cs::set_name_index(request, name_index);
  msg::cs::set_context_id(request, target.context);
  msg::cs::set_expected_generation(request, expected_generation);
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(name.data(), name.size()));
  const Message reply = co_await self_.send(request, target.server, segments);
  observe_reply_hints();
  co_return reply;
}

V_BORROWS_SPAN
V_HOT_PATH
sim::Co<Result<Rt::OpenedFile>> Rt::open_via_binding(
    std::string_view name, std::uint16_t mode,
    const NameCache::Binding& binding, SplitName split) {
  const Message reply = co_await open_at(
      binding.target, name,
      static_cast<std::uint16_t>(name.size() - split.leaf.size()), mode,
      binding.generation);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  // Refresh the entry from the reply hint: a create-mode open legitimately
  // advanced the generation, and the next cached open must expect the new
  // one.
  const ipc::BindingHint hint = self_.last_binding_hint();
  if (hint.valid()) {
    cache_->put(split.dir,
                NameCache::Binding{
                    {ipc::ProcessId{hint.server_pid}, hint.context_id},
                    hint.generation, hint.consumed, binding.origin});
  }
  co_return decode_open_reply(self_, reply);
}

V_BORROWS_SPAN
sim::Co<Result<Rt::OpenedFile>> Rt::open_via_rebind(std::string_view name,
                                                    std::uint16_t mode,
                                                    ReplyCode original) {
  const SplitName split = split_dir_leaf(name);
  // The group members are ordinary object servers: they do not speak the
  // prefix syntax, so a "[prefix]" head is stripped — the remainder names
  // the directory inside each member's own name space (possibly empty:
  // probe their default context).
  std::string_view dir = split.dir;
  if (naming::has_prefix_syntax(dir)) {
    const auto close = dir.find(naming::kPrefixClose);
    if (close != std::string_view::npos) dir = dir.substr(close + 1);
  }
  co_await self_.compute(self_.params().send_build);
  Message probe;
  probe.set_code(RequestCode::kMapContextName);
  msg::cs::set_name_length(probe, static_cast<std::uint16_t>(dir.size()));
  msg::cs::set_name_index(probe, 0);
  msg::cs::set_context_id(probe, naming::kDefaultContext);
  // Recovery probe: members that cannot map `dir` stay silent, so the
  // first (= only) reply names a server that really implements it.
  msg::cs::set_recovery_probe(probe);
  ipc::Segments probe_segments;
  probe_segments.read = std::as_bytes(std::span(dir.data(), dir.size()));
  const Message probe_reply = co_await self_.send_to_group(
      probe, recovery_.rebind_group, probe_segments);
  observe_reply_hints();
  if (probe_reply.reply_code() != ReplyCode::kOk) {
    co_return original;  // nobody answered: the probe changed nothing
  }
  const ContextPair rebound = naming::wire::get_map_reply(probe_reply);

  // Open the leaf directly against the member that answered: context id
  // from the probe reply, name index already past the directory part.
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kCreateInstance);
  msg::cs::set_mode(request, mode);
  msg::cs::set_name_length(request, static_cast<std::uint16_t>(name.size()));
  msg::cs::set_name_index(
      request, static_cast<std::uint16_t>(name.size() - split.leaf.size()));
  msg::cs::set_context_id(request, rebound.context);
  ipc::Segments segments;
  segments.read = std::as_bytes(std::span(name.data(), name.size()));
  const Message reply = co_await self_.send(request, rebound.server,
                                            segments);
  observe_reply_hints();
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  if (cache_ != nullptr) {
    // Feed the repaired binding to the cache so the NEXT open goes to the
    // new incarnation in one hop.
    const ipc::BindingHint hint = self_.last_binding_hint();
    if (hint.valid() && !split.dir.empty()) {
      cache_->put(split.dir,
                  NameCache::Binding{
                      {ipc::ProcessId{hint.server_pid}, hint.context_id},
                      hint.generation, hint.consumed,
                      self_.last_origin_hint()});
    }
  }
  co_return decode_open_reply(self_, reply);
}

V_BORROWS_SPAN
sim::Co<Result<Rt::OpenedFile>> Rt::open_detailed(std::string_view name,
                                                  std::uint16_t mode) {
  if (cache_ != nullptr) {
    const SplitName split = split_dir_leaf(name);
    if (!split.dir.empty()) {
      if (const auto hit = cache_->find(split.dir)) {
#if V_TRACE_ENABLED
        self_.domain().metrics().counter("namecache", "hits").inc();
#endif
        auto direct = co_await open_via_binding(name, mode, *hit, split);
        const ReplyCode code = direct.ok() ? ReplyCode::kOk : direct.code();
        if (code != ReplyCode::kStaleContext &&
            code != ReplyCode::kInvalidContext &&
            code != ReplyCode::kNoReply) {
          // Success, or an authoritative negative from a validated binding.
          co_return direct;
        }
        if (code == ReplyCode::kStaleContext) {
          cache_->note_stale();
#if V_TRACE_ENABLED
          self_.domain().metrics().counter("namecache", "stale").inc();
#endif
        }
        cache_->erase(split.dir);
        cache_->note_fallback();
#if V_TRACE_ENABLED
        self_.domain().metrics().counter("namecache", "fallbacks").inc();
#endif
      } else {
#if V_TRACE_ENABLED
        self_.domain().metrics().counter("namecache", "misses").inc();
#endif
      }
    }
  }
  // Full resolution, with the recovery policy on top: transport errors
  // (kNoReply / kTimeout) are retried up to noreply_retries times, then —
  // like authoritative kInvalidContext — handed to multicast rebinding
  // when a rebind group is configured (paper §2.3/§4 repair).
  std::size_t retries = recovery_.noreply_retries;
  for (;;) {
    auto resolved = co_await open_resolved(name, mode);
    const ReplyCode code = resolved.ok() ? ReplyCode::kOk : resolved.code();
    const bool transport =
        code == ReplyCode::kNoReply || code == ReplyCode::kTimeout;
    if (transport && retries > 0) {
      --retries;
      continue;
    }
    if ((transport || code == ReplyCode::kInvalidContext) &&
        recovery_.rebind_group != 0) {
      co_return co_await open_via_rebind(name, mode, code);
    }
    co_return resolved;
  }
}

sim::Co<Result<File>> Rt::open(std::string_view name, std::uint16_t mode) {
  auto opened = co_await open_detailed(name, mode);
  if (!opened.ok()) co_return opened.code();
  co_return opened.take().file;
}

sim::Co<Result<File>> Rt::open_cached(NameCache& cache,
                                      std::string_view name,
                                      std::uint16_t mode) {
  NameCache* const saved = cache_;
  set_cache(&cache);
  auto opened = co_await open_detailed(name, mode);
  set_cache(saved);
  if (!opened.ok()) co_return opened.code();
  co_return opened.take().file;
}

namespace {
/// Decode a buffer of concatenated descriptor records.
std::vector<ObjectDescriptor> decode_records(
    const std::vector<std::byte>& data) {
  std::vector<ObjectDescriptor> records;
  for (std::size_t off = 0; off + ObjectDescriptor::kWireSize <= data.size();
       off += ObjectDescriptor::kWireSize) {
    auto rec = ObjectDescriptor::decode(
        std::span(data).subspan(off, ObjectDescriptor::kWireSize));
    if (rec.ok()) records.push_back(rec.take());
  }
  return records;
}
}  // namespace

sim::Co<Result<std::vector<naming::ObjectDescriptor>>> Rt::list_matching(
    std::string_view ctx_name, std::string_view pattern) {
  std::string name(ctx_name);
  if (!name.empty() && name.back() != '/' &&
      name.back() != naming::kPrefixClose) {
    name.push_back('/');
  }
  name.append(pattern);
  auto opened = co_await open(
      name, naming::wire::kOpenRead | naming::wire::kOpenDirectory |
                naming::wire::kOpenPattern);
  if (!opened.ok()) co_return opened.code();
  File dir = opened.take();
  auto bytes = co_await dir.read_all();
  const ReplyCode closed = co_await dir.close();
  if (!bytes.ok()) co_return bytes.code();
  if (!v::ok(closed)) co_return closed;
  co_return decode_records(bytes.value());
}

sim::Co<Result<std::vector<naming::ObjectDescriptor>>> Rt::list_context(
    std::string_view name) {
  auto opened = co_await open(name, naming::wire::kOpenRead |
                                        naming::wire::kOpenDirectory);
  if (!opened.ok()) co_return opened.code();
  File dir = opened.take();
  auto bytes = co_await dir.read_all();
  const ReplyCode closed = co_await dir.close();
  if (!bytes.ok()) co_return bytes.code();
  if (!v::ok(closed)) co_return closed;
  co_return decode_records(bytes.value());
}

sim::Co<Result<naming::ContextPair>> Rt::map_context(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kMapContextName);
  const Message reply = co_await send_csname(request, name);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return naming::wire::get_map_reply(reply);
}

sim::Co<ReplyCode> Rt::change_context(std::string_view name) {
  auto mapped = co_await map_context(name);
  if (!mapped.ok()) co_return mapped.code();
  env_.current = mapped.value();
  co_return ReplyCode::kOk;
}

sim::Co<Result<naming::ObjectDescriptor>> Rt::query(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kQueryName);
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  const Message reply = co_await send_csname(request, name, {}, record);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return ObjectDescriptor::decode(record);
}

sim::Co<ReplyCode> Rt::modify(std::string_view name,
                              const naming::ObjectDescriptor& desc) {
  Message request;
  request.set_code(RequestCode::kModifyName);
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  desc.encode(record);
  const Message reply = co_await send_csname(request, name, record);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::remove(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kRemoveName);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::rename(std::string_view name,
                              std::string_view new_leaf) {
  Message request;
  request.set_code(RequestCode::kRenameName);
  request.set_u16(naming::wire::kOffRenameNewLength,
                  static_cast<std::uint16_t>(new_leaf.size()));
  const Message reply = co_await send_csname(
      request, name,
      std::as_bytes(std::span(new_leaf.data(), new_leaf.size())));
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::create(std::string_view name, std::uint16_t mode) {
  Message request;
  request.set_code(RequestCode::kCreateName);
  msg::cs::set_mode(request, mode);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::make_context(std::string_view name) {
  Message request;
  request.set_code(RequestCode::kMakeContext);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::link(std::string_view name,
                            naming::ContextPair target) {
  Message request;
  request.set_code(RequestCode::kLinkContext);
  request.set_u32(naming::wire::kOffLinkServerPid, target.server.raw);
  request.set_u32(naming::wire::kOffLinkContextId, target.context);
  const Message reply = co_await send_csname(request, name);
  co_return reply.reply_code();
}

std::string Rt::bracket(std::string_view prefix) {
  if (naming::has_prefix_syntax(prefix)) return std::string(prefix);
  std::string name;
  name.reserve(prefix.size() + 2);
  name.push_back(naming::kPrefixOpen);
  name.append(prefix);
  name.push_back(naming::kPrefixClose);
  return name;
}

sim::Co<ReplyCode> Rt::add_prefix(std::string_view prefix,
                                  naming::ContextPair target) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddServerPid, target.server.raw);
  request.set_u32(naming::wire::kOffAddContextId, target.context);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::add_logical_prefix(std::string_view prefix,
                                          ipc::ServiceId service,
                                          naming::ContextId context) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddContextId, context);
  request.set_u16(naming::wire::kOffAddFlags, naming::wire::kAddFlagLogical);
  request.set_u16(naming::wire::kOffAddService,
                  static_cast<std::uint16_t>(service));
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::add_group_prefix(std::string_view prefix,
                                        ipc::GroupId group,
                                        naming::ContextId context) {
  Message request;
  request.set_code(RequestCode::kAddContextName);
  request.set_u32(naming::wire::kOffAddServerPid, group);
  request.set_u32(naming::wire::kOffAddContextId, context);
  request.set_u16(naming::wire::kOffAddFlags, naming::wire::kAddFlagGroup);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<ReplyCode> Rt::delete_prefix(std::string_view prefix) {
  Message request;
  request.set_code(RequestCode::kDeleteContextName);
  const std::string bracketed = bracket(prefix);
  const Message reply = co_await send_csname(request, bracketed);
  co_return reply.reply_code();
}

sim::Co<Result<std::string>> Rt::context_name(naming::ContextPair ctx) {
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kGetContextName);
  request.set_u32(naming::wire::kOffInvContextId, ctx.context);
  std::vector<std::byte> buffer(naming::kMaxNameLength);
  ipc::Segments segments;
  segments.write = buffer;
  const Message reply = co_await self_.send(request, ctx.server, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  const std::uint16_t len = reply.u16(naming::wire::kOffInvNameLength);
  if (len > buffer.size()) co_return ReplyCode::kBadArgs;
  co_return std::string(reinterpret_cast<const char*>(buffer.data()), len);
}

sim::Co<Result<std::string>> Rt::file_name(ipc::ProcessId server,
                                           io::InstanceId instance) {
  co_await self_.compute(self_.params().send_build);
  Message request;
  request.set_code(RequestCode::kGetFileName);
  request.set_u16(naming::wire::kOffInvInstanceId, instance);
  std::vector<std::byte> buffer(naming::kMaxNameLength);
  ipc::Segments segments;
  segments.write = buffer;
  const Message reply = co_await self_.send(request, server, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  const std::uint16_t len = reply.u16(naming::wire::kOffInvNameLength);
  if (len > buffer.size()) co_return ReplyCode::kBadArgs;
  co_return std::string(reinterpret_cast<const char*>(buffer.data()), len);
}

}  // namespace v::svc
