// Byte-stream view over an open File — the client-side "session protocol"
// convenience of the V I/O protocol (paper section 3.2: the I/O protocol
// provides "uniform connection of program input and output to a variety of
// data sources and sinks").
//
// Stream keeps a one-block buffer and exposes byte/line-oriented reads and
// appends over the block-oriented instance operations, so application code
// (the executive, mail readers, ...) need not think in blocks.
#pragma once

#include <optional>
#include <string>

#include "common/result.hpp"
#include "svc/file.hpp"

namespace v::svc {

class Stream {
 public:
  explicit Stream(File file) : file_(std::move(file)) {}

  [[nodiscard]] File& file() noexcept { return file_; }
  [[nodiscard]] std::size_t position() const noexcept { return position_; }
  [[nodiscard]] bool eof() const noexcept { return eof_; }

  /// Read up to `out.size()` bytes from the current position.  Returns the
  /// count (0 at end of stream).
  [[nodiscard]] sim::Co<Result<std::size_t>> read(std::span<std::byte> out);

  /// Read bytes up to and excluding the next '\n' (which is consumed).
  /// Returns nullopt-like kEndOfFile when the stream is exhausted.
  [[nodiscard]] sim::Co<Result<std::string>> read_line();

  /// Read the remainder of the stream as a string.
  [[nodiscard]] sim::Co<Result<std::string>> read_rest();

  /// Append `text` at the current end of the stream (write-through).
  [[nodiscard]] sim::Co<ReplyCode> append(std::string_view text);

  /// Reposition the read cursor (no server interaction).
  void seek(std::size_t position) noexcept {
    position_ = position;
    eof_ = false;
    buffer_block_ = kNoBlock;
  }

  /// Release the underlying instance.
  [[nodiscard]] sim::Co<ReplyCode> close() { return file_.close(); }

 private:
  static constexpr std::uint32_t kNoBlock = 0xffffffff;

  /// Ensure buffer_ holds the block containing `position_`.
  [[nodiscard]] sim::Co<ReplyCode> fill();

  File file_;
  std::size_t position_ = 0;
  bool eof_ = false;
  std::uint32_t buffer_block_ = kNoBlock;
  std::size_t buffer_len_ = 0;
  std::array<std::byte, 4096> buffer_{};  // >= any server block size
};

}  // namespace v::svc
