#include "svc/stream.hpp"

#include <algorithm>
#include <cstring>
#include "common/annotate.hpp"

namespace v::svc {

sim::Co<ReplyCode> Stream::fill() {
  const std::size_t block_bytes = file_.block_bytes();
  const auto block = static_cast<std::uint32_t>(position_ / block_bytes);
  if (block == buffer_block_) co_return ReplyCode::kOk;
  auto got = co_await file_.read_block(
      block, std::span(buffer_).first(block_bytes));
  if (!got.ok()) {
    if (got.code() == ReplyCode::kEndOfFile) {
      buffer_block_ = block;
      buffer_len_ = 0;
      eof_ = true;
      co_return ReplyCode::kOk;
    }
    co_return got.code();
  }
  buffer_block_ = block;
  buffer_len_ = got.value();
  co_return ReplyCode::kOk;
}

V_BORROWS_SPAN
sim::Co<Result<std::size_t>> Stream::read(std::span<std::byte> out) {
  std::size_t produced = 0;
  const std::size_t block_bytes = file_.block_bytes();
  while (produced < out.size()) {
    const auto filled = co_await fill();
    if (!v::ok(filled)) co_return filled;
    const std::size_t in_block = position_ % block_bytes;
    if (in_block >= buffer_len_) {
      eof_ = true;
      break;  // past the valid bytes of the final block
    }
    const std::size_t n =
        std::min(out.size() - produced, buffer_len_ - in_block);
    std::memcpy(out.data() + produced, buffer_.data() + in_block, n);
    produced += n;
    position_ += n;
    if (buffer_len_ < block_bytes && position_ % block_bytes == 0) {
      // The block was short: that was the end of the stream.
      eof_ = true;
      break;
    }
  }
  co_return produced;
}

sim::Co<Result<std::string>> Stream::read_line() {
  if (eof_) co_return ReplyCode::kEndOfFile;
  std::string line;
  const std::size_t block_bytes = file_.block_bytes();
  for (;;) {
    const auto filled = co_await fill();
    if (!v::ok(filled)) co_return filled;
    const std::size_t in_block = position_ % block_bytes;
    if (in_block >= buffer_len_) {
      eof_ = true;
      if (line.empty()) co_return ReplyCode::kEndOfFile;
      co_return line;  // final unterminated line
    }
    const auto* begin =
        reinterpret_cast<const char*>(buffer_.data()) + in_block;
    const std::size_t available = buffer_len_ - in_block;
    const auto* newline =
        static_cast<const char*>(std::memchr(begin, '\n', available));
    if (newline != nullptr) {
      const std::size_t n = static_cast<std::size_t>(newline - begin);
      line.append(begin, n);
      position_ += n + 1;  // consume the newline
      co_return line;
    }
    line.append(begin, available);
    position_ += available;
    if (buffer_len_ < block_bytes) {
      eof_ = true;
      if (line.empty()) co_return ReplyCode::kEndOfFile;
      co_return line;
    }
  }
}

sim::Co<Result<std::string>> Stream::read_rest() {
  std::string rest;
  std::array<std::byte, 512> chunk{};
  for (;;) {
    auto got = co_await read(chunk);
    if (!got.ok()) co_return got.code();
    rest.append(reinterpret_cast<const char*>(chunk.data()), got.value());
    if (got.value() < chunk.size()) break;
  }
  co_return rest;
}

V_BORROWS_SPAN
sim::Co<ReplyCode> Stream::append(std::string_view text) {
  const auto refreshed = co_await file_.refresh();
  if (!v::ok(refreshed)) co_return refreshed;
  const std::size_t block_bytes = file_.block_bytes();
  std::size_t offset = file_.size();
  std::size_t written = 0;
  while (written < text.size()) {
    const std::uint32_t block =
        static_cast<std::uint32_t>(offset / block_bytes);
    const std::size_t in_block = offset % block_bytes;
    const std::size_t n =
        std::min(block_bytes - in_block, text.size() - written);
    if (in_block == 0) {
      auto wrote = co_await file_.write_block(
          block, std::as_bytes(std::span(text.data() + written, n)));
      if (!wrote.ok()) co_return wrote.code();
    } else {
      // Partial tail block: read-modify-write.  Requires a readable
      // instance — failing loudly beats silently zeroing earlier bytes.
      std::array<std::byte, 4096> merged{};
      auto got = co_await file_.read_block(
          block, std::span(merged).first(block_bytes));
      if (!got.ok() && got.code() != ReplyCode::kEndOfFile) {
        co_return got.code();
      }
      const std::size_t have = got.ok() ? got.value() : 0;
      std::memcpy(merged.data() + in_block, text.data() + written, n);
      auto wrote = co_await file_.write_block(
          block,
          std::span<const std::byte>(merged.data(),
                                     std::max(have, in_block + n)));
      if (!wrote.ok()) co_return wrote.code();
    }
    written += n;
    offset += n;
  }
  buffer_block_ = kNoBlock;  // server content changed under the buffer
  co_return ReplyCode::kOk;
}

}  // namespace v::svc
