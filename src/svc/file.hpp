// Client-side file handle for the V I/O protocol.
//
// Returned by the run-time Open stub; wraps (server pid, instance id) — a
// temporary object name in the sense of paper section 4.3 — with block
// read/write/close operations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "io/instance.hpp"
#include "io/protocol.hpp"
#include "ipc/kernel.hpp"
#include "sim/task.hpp"
#include "common/annotate.hpp"

namespace v::svc {

class File {
 public:
  File() = default;
  V_HOT_PATH
  File(ipc::Process proc, ipc::ProcessId server, io::InstanceId instance,
       io::InstanceInfo info) noexcept
      : proc_(proc), server_(server), instance_(instance), info_(info) {}

  [[nodiscard]] bool valid() const noexcept { return server_.valid(); }
  [[nodiscard]] ipc::ProcessId server() const noexcept { return server_; }
  [[nodiscard]] io::InstanceId instance() const noexcept { return instance_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return info_.size_bytes;
  }
  [[nodiscard]] std::uint16_t block_bytes() const noexcept {
    return info_.block_bytes;
  }
  [[nodiscard]] std::uint16_t flags() const noexcept { return info_.flags; }

  /// Read block `block` into `out` (sized to the wanted byte count; at most
  /// one block).  Returns bytes read; kEndOfFile past the end.
  [[nodiscard]] sim::Co<Result<std::size_t>> read_block(
      std::uint32_t block, std::span<std::byte> out);

  /// Write `data` (at most one block) at block `block`.
  [[nodiscard]] sim::Co<Result<std::size_t>> write_block(
      std::uint32_t block, std::span<const std::byte> data);

  /// Sequential read of the whole instance, block by block.
  [[nodiscard]] sim::Co<Result<std::vector<std::byte>>> read_all();

  /// Whole-instance read via the bulk path: one request, one MoveTo of the
  /// entire content (the V program-loading transfer, paper section 3.1).
  [[nodiscard]] sim::Co<Result<std::vector<std::byte>>> read_bulk();

  /// Write a whole buffer from block 0, block by block.
  [[nodiscard]] sim::Co<ReplyCode> write_all(std::span<const std::byte> data);

  /// Re-query instance attributes (size may change under appends).
  [[nodiscard]] sim::Co<ReplyCode> refresh();

  /// Release the instance.
  [[nodiscard]] sim::Co<ReplyCode> close();

 private:
  ipc::Process proc_{nullptr, ipc::ProcessId::invalid()};
  ipc::ProcessId server_;
  io::InstanceId instance_ = 0;
  io::InstanceInfo info_;
};

}  // namespace v::svc
