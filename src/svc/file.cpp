#include "svc/file.hpp"

#include "msg/request_codes.hpp"
#include "common/annotate.hpp"

namespace v::svc {

using msg::Message;
using msg::RequestCode;

V_BORROWS_SPAN
sim::Co<Result<std::size_t>> File::read_block(std::uint32_t block,
                                              std::span<std::byte> out) {
  co_await proc_.compute(proc_.params().send_build);
  Message request;
  request.set_code(RequestCode::kReadInstance);
  request.set_u16(io::kOffInstance, instance_);
  request.set_u32(io::kOffBlock, block);
  request.set_u16(io::kOffByteCount, static_cast<std::uint16_t>(out.size()));
  ipc::Segments segments;
  segments.write = out;
  const Message reply = co_await proc_.send(request, server_, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return static_cast<std::size_t>(reply.u16(io::kOffXferCount));
}

V_BORROWS_SPAN
sim::Co<Result<std::size_t>> File::write_block(
    std::uint32_t block, std::span<const std::byte> data) {
  co_await proc_.compute(proc_.params().send_build);
  Message request;
  request.set_code(RequestCode::kWriteInstance);
  request.set_u16(io::kOffInstance, instance_);
  request.set_u32(io::kOffBlock, block);
  request.set_u16(io::kOffByteCount, static_cast<std::uint16_t>(data.size()));
  ipc::Segments segments;
  segments.read = data;
  const Message reply = co_await proc_.send(request, server_, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  co_return static_cast<std::size_t>(reply.u16(io::kOffXferCount));
}

sim::Co<Result<std::vector<std::byte>>> File::read_all() {
  std::vector<std::byte> data;
  std::vector<std::byte> block_buf(info_.block_bytes);
  for (std::uint32_t block = 0;; ++block) {
    auto got = co_await read_block(block, block_buf);
    if (!got.ok()) {
      if (got.code() == ReplyCode::kEndOfFile) break;
      co_return got.code();
    }
    data.insert(data.end(), block_buf.begin(),
                block_buf.begin() + static_cast<std::ptrdiff_t>(got.value()));
    if (got.value() < block_buf.size()) break;  // short block: end of data
  }
  co_return data;
}

sim::Co<Result<std::vector<std::byte>>> File::read_bulk() {
  const auto refreshed = co_await refresh();  // resync size before sizing
  if (!v::ok(refreshed)) co_return refreshed;
  std::vector<std::byte> buffer(info_.size_bytes);
  co_await proc_.compute(proc_.params().send_build);
  Message request;
  request.set_code(RequestCode::kReadInstance);
  request.set_u16(io::kOffInstance, instance_);
  request.set_u32(io::kOffBlock, 0);
  request.set_u16(io::kOffByteCount, io::kBulkRead);
  ipc::Segments segments;
  segments.write = buffer;
  const Message reply = co_await proc_.send(request, server_, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  buffer.resize(reply.u32(io::kOffXferCountLong));
  co_return buffer;
}

V_BORROWS_SPAN
sim::Co<ReplyCode> File::write_all(std::span<const std::byte> data) {
  const std::size_t block_bytes = info_.block_bytes;
  std::uint32_t block = 0;
  for (std::size_t off = 0; off < data.size(); off += block_bytes, ++block) {
    const std::size_t n = std::min(block_bytes, data.size() - off);
    auto wrote = co_await write_block(block, data.subspan(off, n));
    if (!wrote.ok()) co_return wrote.code();
  }
  if (data.empty()) co_return ReplyCode::kOk;
  co_return ReplyCode::kOk;
}

sim::Co<ReplyCode> File::refresh() {
  co_await proc_.compute(proc_.params().send_build);
  Message request;
  request.set_code(RequestCode::kQueryInstance);
  request.set_u16(io::kOffInstance, instance_);
  const Message reply = co_await proc_.send(request, server_);
  if (reply.reply_code() != ReplyCode::kOk) co_return reply.reply_code();
  info_.size_bytes = reply.u32(io::kOffCreateSize);
  info_.block_bytes = reply.u16(io::kOffCreateBlock);
  info_.flags = reply.u16(io::kOffCreateFlags);
  co_return ReplyCode::kOk;
}

sim::Co<ReplyCode> File::close() {
  co_await proc_.compute(proc_.params().send_build);
  Message request;
  request.set_code(RequestCode::kReleaseInstance);
  request.set_u16(io::kOffInstance, instance_);
  const Message reply = co_await proc_.send(request, server_);
  co_return reply.reply_code();
}

}  // namespace v::svc
