#include "svc/shard_router.hpp"

#include <array>
#include <span>

#include "common/annotate.hpp"
#include "msg/request_codes.hpp"
#include "naming/parse.hpp"

namespace v::svc {

namespace {

/// "[prefix]rest" -> "prefix" ("" when the syntax does not match; the
/// caller falls back to plain Rt routing).
std::string_view prefix_of(std::string_view name) noexcept {
  if (!naming::has_prefix_syntax(name)) return {};
  const auto close = name.find(naming::kPrefixClose);
  if (close == std::string_view::npos) return {};
  return name.substr(1, close - 1);
}

}  // namespace

sim::Co<bool> ShardRouter::refetch_map() {
  ++stats_.map_fetches;
  co_await rt_.process().compute(rt_.process().params().send_build);
  msg::Message request;
  request.set_code(msg::kFetchShardMap);
  // Zeroed every fetch: a short map over yesterday's longer one must never
  // leave stale shard records visible.  (The parse is self-delimiting, so
  // this is belt and braces, not the safety mechanism.)
  std::array<std::byte, naming::ShardMap::kMaxBytes> buffer{};
  ipc::Segments segments;
  segments.write = buffer;
  const msg::Message reply = co_await rt_.process().send_to_group(
      request, cfg_.fabric_group, segments);
  if (reply.reply_code() != ReplyCode::kOk) co_return false;
  naming::ShardMap fetched;
  if (!naming::ShardMap::parse(buffer, fetched)) co_return false;
  map_ = std::move(fetched);
  co_return true;
}

V_BORROWS_SPAN
sim::Co<Result<Rt::OpenedFile>> ShardRouter::open(std::string_view name,
                                                  std::uint16_t mode) {
  const std::string_view prefix = prefix_of(name);
  if (prefix.empty()) {
    co_return co_await rt_.open_detailed(name, mode);
  }
  ++stats_.opens;
  ReplyCode last = ReplyCode::kNoReply;
  for (std::size_t attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (map_.empty() && !co_await refetch_map()) {
      last = ReplyCode::kTimeout;  // whole fabric unreachable right now
      co_await rt_.process().delay(cfg_.retry_delay);
      continue;
    }
    const naming::ShardMap::Shard& shard = map_.shards[map_.route(prefix)];
    const msg::Message reply = co_await rt_.open_at(
        {ipc::ProcessId{shard.server_pid}, naming::kDefaultContext}, name,
        /*name_index=*/0, mode, shard.generation);
    last = reply.reply_code();
    switch (last) {
      case ReplyCode::kOk:
        co_return Rt::decode_open_reply(rt_.process(), reply);
      case ReplyCode::kStaleContext:
        // The map aged past a fabric mutation; the shard refused before
        // interpreting anything.  Refetch and go again immediately.
        ++stats_.stale_retries;
        (void)co_await refetch_map();
        break;
      case ReplyCode::kNoReply:
      case ReplyCode::kTimeout:
        ++stats_.noreply_retries;
        (void)co_await refetch_map();
        co_await rt_.process().delay(cfg_.retry_delay);
        break;
      case ReplyCode::kBusy:
        ++stats_.busy_retries;
        co_await rt_.process().delay(cfg_.retry_delay);
        break;
      default:
        // Authoritative: the generation matched, the shard interpreted the
        // name, and this is the answer.
        co_return last;
    }
  }
  ++stats_.failures;
  co_return last;
}

}  // namespace v::svc
