// Client-side name cache — the ablation of paper section 2.2.
//
// The paper argues AGAINST client caching of name resolutions: "Caching the
// name in the client would introduce inconsistency problems and only
// benefit the few applications that reuse names."  This class implements
// the cache anyway so the claim can be measured (bench_name_cache):
//
//   * an LRU map from the DIRECTORY part of a name to the (server-pid,
//     context-id) pair in which its leaves are interpreted;
//   * transparently invalidated on kInvalidContext / kNoReply (dead server
//     or recycled context) with a full re-resolution;
//   * NOT protected against silent aliasing: if a server restarts and a
//     context id is reused for a DIFFERENT directory, cached resolutions
//     return the wrong objects without any error.  That silent wrongness is
//     exactly the inconsistency the paper warns about, and the test suite
//     demonstrates it (test_name_cache.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "naming/types.hpp"

namespace v::svc {

class NameCache {
 public:
  explicit NameCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Cached resolution for a directory name, if present (refreshes LRU).
  std::optional<naming::ContextPair> find(std::string_view dir) {
    auto it = entries_.find(dir);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.position);
    return it->second.target;
  }

  /// Remember `dir` -> `target`, evicting the least-recently-used entry
  /// beyond capacity.
  void put(std::string_view dir, naming::ContextPair target) {
    auto it = entries_.find(dir);
    if (it != entries_.end()) {
      it->second.target = target;
      lru_.splice(lru_.begin(), lru_, it->second.position);
      return;
    }
    lru_.emplace_front(dir);
    entries_.emplace(std::string(dir), Entry{target, lru_.begin()});
    if (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  /// Drop a stale entry (after kInvalidContext / kNoReply).
  void erase(std::string_view dir) {
    auto it = entries_.find(dir);
    if (it == entries_.end()) return;
    ++invalidations_;
    lru_.erase(it->second.position);
    entries_.erase(it);
  }

  void clear() {
    entries_.clear();
    lru_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_;
  }

 private:
  struct Entry {
    naming::ContextPair target;
    std::list<std::string>::iterator position;
  };

  std::size_t capacity_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::list<std::string> lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace v::svc
