// Client-side validated resolution cache.
//
// The paper argues AGAINST client caching of name resolutions (section
// 2.2): "Caching the name in the client would introduce inconsistency
// problems and only benefit the few applications that reuse names."  The
// first version of this class implemented the cache naively so the claim
// could be measured — and the test suite demonstrated exactly the silent
// wrong answers the paper predicted.
//
// This version dissolves the objection with *verification on use*
// (DESIGN.md 4g).  Each entry maps the DIRECTORY part of a name to a
// generation-stamped binding:
//
//   dir -> { (server pid, context id), generation, chars consumed, origin }
//
// learned for free from the binding hint piggybacked on successful CSname
// replies (PROTOCOL.md 11).  A cached open goes straight to the final
// server carrying the expected generation; if ANY gated mutation has
// touched that context since, the server answers kStaleContext instead of
// interpreting, and the runtime transparently falls back to a full
// resolution.  Because generations are drawn from one domain-wide monotone
// sequence, a restarted server — or an impostor on a recycled pid — can
// never echo a stale generation back into validity.
//
// `origin` records the entry binding the resolution travelled through
// (normally the context prefix server's table context).  Whenever a newer
// generation is observed for an origin (e.g. the reply to this client's own
// AddContextName/DeleteContextName), every entry that depended on an older
// generation of that origin is dropped — so prefix-table edits invalidate
// the bindings they routed.  (A prefix edit made by ANOTHER client is
// detected lazily: the next resolution that travels through the prefix
// server re-observes its generation.  See DESIGN.md 4g for the residual.)
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "ipc/kernel.hpp"
#include "naming/types.hpp"

namespace v::svc {

class NameCache {
 public:
  /// A validated directory binding: where to send, what generation to
  /// expect, and where the leaf starts in a name of this directory.
  struct Binding {
    naming::ContextPair target;      ///< final server + context
    std::uint32_t generation = 0;    ///< target context's gen when learned
    std::uint16_t consumed = 0;      ///< name bytes before the leaf
    ipc::BindingHint origin;         ///< entry binding the walk went through
  };

  explicit NameCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Cached binding for a directory name, if present (refreshes LRU).
  std::optional<Binding> find(std::string_view dir) {
    auto it = entries_.find(dir);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.position);
    return it->second.binding;
  }

  /// Remember `dir` -> `binding`, evicting the least-recently-used entry
  /// beyond capacity.
  void put(std::string_view dir, const Binding& binding) {
    auto it = entries_.find(dir);
    if (it != entries_.end()) {
      it->second.binding = binding;
      lru_.splice(lru_.begin(), lru_, it->second.position);
      return;
    }
    lru_.emplace_front(dir);
    entries_.emplace(std::string(dir), Entry{binding, lru_.begin()});
    if (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  /// Drop an entry whose binding was refused (kStaleContext /
  /// kInvalidContext / kNoReply).
  void erase(std::string_view dir) {
    auto it = entries_.find(dir);
    if (it == entries_.end()) return;
    ++invalidations_;
    lru_.erase(it->second.position);
    entries_.erase(it);
  }

  /// Record an observed origin generation (from any hinted reply).  When it
  /// is NEWER than the last one seen for that (server, context) — the
  /// origin's table changed — drop every entry that was resolved through an
  /// older generation of it.
  void observe_origin(const ipc::BindingHint& origin) {
    if (!origin.valid()) return;
    const OriginKey key{origin.server_pid, origin.context_id};
    auto [it, inserted] = origins_.emplace(key, origin.generation);
    if (!inserted) {
      if (origin.generation <= it->second) return;
      it->second = origin.generation;
    }
    for (auto entry = entries_.begin(); entry != entries_.end();) {
      const ipc::BindingHint& dep = entry->second.binding.origin;
      if (dep.valid() && dep.server_pid == origin.server_pid &&
          dep.context_id == origin.context_id &&
          dep.generation < origin.generation) {
        ++invalidations_;
        lru_.erase(entry->second.position);
        entry = entries_.erase(entry);
      } else {
        ++entry;
      }
    }
  }

  void clear() {
    entries_.clear();
    lru_.clear();
    origins_.clear();
  }

  /// Counter hooks for the runtime: a kStaleContext refusal, and a
  /// transparent fallback to full resolution (any refused binding).
  void note_stale() noexcept { ++stale_; }
  void note_fallback() noexcept { ++fallbacks_; }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_;
  }
  [[nodiscard]] std::uint64_t stale() const noexcept { return stale_; }
  [[nodiscard]] std::uint64_t fallbacks() const noexcept { return fallbacks_; }

 private:
  struct Entry {
    Binding binding;
    std::list<std::string>::iterator position;
  };
  using OriginKey = std::pair<std::uint32_t, std::uint32_t>;

  std::size_t capacity_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::list<std::string> lru_;
  std::map<OriginKey, std::uint32_t> origins_;  ///< latest observed gens
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace v::svc
