// The standard run-time routines (paper section 6).
//
// "Application programs are written using a procedural interface to system
// services provided by a collection of stub routines."  Rt is that
// collection for one program:
//
//   * it carries the program's current context (a program "is passed a
//     process identifier and context identifier specifying its current
//     context" and can change it, like Unix chdir);
//   * every CSname stub checks whether the name starts with the standard
//     context prefix character '[' — if so the request goes to the
//     workstation's context prefix server, otherwise straight to the server
//     implementing the current context (the '['-check localized here is the
//     paper's "single common routine").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "ipc/kernel.hpp"
#include "msg/csname.hpp"
#include "msg/message.hpp"
#include "naming/descriptor.hpp"
#include "naming/types.hpp"
#include "svc/file.hpp"
#include "svc/name_cache.hpp"

namespace v::svc {

/// A program's naming environment.
struct NameEnv {
  ipc::ProcessId prefix_server;   ///< this workstation's context prefix server
  naming::ContextPair current;    ///< current context
};

/// How the run-time reacts when an open dies with a transport-level error
/// (kNoReply / kTimeout) or a binding-level one (kInvalidContext) — the
/// paper's §2.3/§4 repair story.
struct RecoveryPolicy {
  /// Full re-resolutions attempted after the first one fails with a
  /// TRANSPORT error (kNoReply / kTimeout — a lost race with a crash, or
  /// an unanswered multicast).  The default (1) is the classic run-time
  /// behaviour: try the same route once more before giving up.
  /// kInvalidContext is authoritative and never retried on the same
  /// route — it goes straight to rebinding.
  std::size_t noreply_retries = 1;
  /// Server group probed by multicast after the retries are spent
  /// (kGetContextId-style kMapContextName recovery probe; the member that
  /// now implements the directory answers, the rest stay silent).  0 =
  /// no rebinding; the last error is surfaced unchanged.
  ipc::GroupId rebind_group = 0;
};

class Rt {
 public:
  Rt(ipc::Process self, NameEnv env) noexcept : self_(self), env_(env) {}

  /// Build an Rt by resolving the local context prefix server with GetPid.
  /// `current` is the program's initial current context.
  [[nodiscard]] static sim::Co<Rt> attach(ipc::Process self,
                                          naming::ContextPair current);

  [[nodiscard]] const naming::ContextPair& current() const noexcept {
    return env_.current;
  }
  void set_current(naming::ContextPair ctx) noexcept { env_.current = ctx; }
  [[nodiscard]] ipc::ProcessId prefix_server() const noexcept {
    return env_.prefix_server;
  }
  [[nodiscard]] ipc::Process process() const noexcept { return self_; }

  /// Attach (or detach, with nullptr) a validated name cache.  While a
  /// cache is attached, `open` consults it: a warm hit goes straight to
  /// the cached final server in ONE message transaction, validated by the
  /// expected-generation check (PROTOCOL.md 11); refusals fall back to a
  /// full resolution transparently.  Every hinted reply also feeds the
  /// cache.  Detached (the default), the send paths are byte-for-byte the
  /// uncached protocol.
  void set_cache(NameCache* cache);
  [[nodiscard]] NameCache* cache() const noexcept { return cache_; }

  /// Configure open-failure recovery (retries + multicast rebinding).
  void set_recovery(RecoveryPolicy policy) noexcept { recovery_ = policy; }
  [[nodiscard]] const RecoveryPolicy& recovery() const noexcept {
    return recovery_;
  }

  // --- core routing ----------------------------------------------------------

  /// Send a CSname request carrying `name` (plus optional payload bytes
  /// after the name in the read segment, and a write segment for bulk
  /// replies), routed per the prefix convention.  Sets the standard CSname
  /// fields; the caller fills the variant part.
  [[nodiscard]] sim::Co<msg::Message> send_csname(
      msg::Message request, std::string_view name,
      std::span<const std::byte> payload = {},
      std::span<std::byte> write_segment = {});

  // --- file-like objects -------------------------------------------------------

  /// Open `name` (kCreateInstance).  Mode bits: naming::wire::OpenMode.
  [[nodiscard]] sim::Co<Result<File>> open(std::string_view name,
                                           std::uint16_t mode);

  /// An open result plus the (server, context) the leaf was interpreted
  /// in — what a name cache remembers for the directory part.
  struct OpenedFile {
    File file;
    naming::ContextPair directory;
  };
  [[nodiscard]] sim::Co<Result<OpenedFile>> open_detailed(
      std::string_view name, std::uint16_t mode);

  /// One-hop kCreateInstance addressed straight at `target` instead of
  /// routing by the '['-convention: the server interprets only
  /// name[name_index..] in target.context, validated against
  /// `expected_generation` (0 = no expectation).  Returns the raw reply;
  /// decode successes with decode_open_reply.  This is the shared substrate
  /// of cached opens and of shard-map routing (svc/shard_router.hpp), which
  /// both learn (server, context, generation) bindings out of band and must
  /// have them REFUSED — kStaleContext — rather than wrongly served when
  /// the binding has gone stale.
  [[nodiscard]] sim::Co<msg::Message> open_at(naming::ContextPair target,
                                              std::string_view name,
                                              std::uint16_t name_index,
                                              std::uint16_t mode,
                                              std::uint32_t expected_generation);

  /// Decode a successful (kOk) kCreateInstance reply.
  [[nodiscard]] static OpenedFile decode_open_reply(ipc::Process self,
                                                    const msg::Message& reply);

  /// Open with a temporarily-attached name cache: equivalent to
  /// set_cache(&cache), open(name, mode), restore.  Kept as the
  /// entry point of the section 2.2 caching study — now validated, so a
  /// hit that outlived a mutation yields kStaleContext + re-resolution
  /// instead of the silent wrong answers the paper warned about.
  [[nodiscard]] sim::Co<Result<File>> open_cached(NameCache& cache,
                                                  std::string_view name,
                                                  std::uint16_t mode);

  /// Open the context directory of `name` ("" = current context) and read
  /// all its description records (the "list directory" flow of section 6).
  [[nodiscard]] sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
  list_context(std::string_view name = "");

  /// Section 5.6 pattern extension: read only the records of `ctx_name`
  /// whose names match the glob `pattern` — the server filters before
  /// fabricating and shipping anything.
  [[nodiscard]] sim::Co<Result<std::vector<naming::ObjectDescriptor>>>
  list_matching(std::string_view ctx_name, std::string_view pattern);

  // --- names and contexts --------------------------------------------------------

  /// Map a context-naming CSname to its (server-pid, context-id) pair.
  [[nodiscard]] sim::Co<Result<naming::ContextPair>> map_context(
      std::string_view name);

  /// Change the current context ("analogous to the change directory
  /// function in Unix").
  [[nodiscard]] sim::Co<ReplyCode> change_context(std::string_view name);

  /// Query the named object's description record.
  [[nodiscard]] sim::Co<Result<naming::ObjectDescriptor>> query(
      std::string_view name);

  /// Overwrite the named object's modifiable description fields.
  [[nodiscard]] sim::Co<ReplyCode> modify(
      std::string_view name, const naming::ObjectDescriptor& desc);

  [[nodiscard]] sim::Co<ReplyCode> remove(std::string_view name);
  [[nodiscard]] sim::Co<ReplyCode> rename(std::string_view name,
                                          std::string_view new_leaf);
  [[nodiscard]] sim::Co<ReplyCode> create(std::string_view name,
                                          std::uint16_t mode = 0);
  [[nodiscard]] sim::Co<ReplyCode> make_context(std::string_view name);

  /// Bind `name` inside its server's name space to `target` — a
  /// cross-server context pointer (Figure 4's curved arrow).
  [[nodiscard]] sim::Co<ReplyCode> link(std::string_view name,
                                        naming::ContextPair target);

  // --- context prefix management (optional protocol ops) -----------------------

  /// Define "[prefix]..." to name `target` (sent to the prefix server).
  [[nodiscard]] sim::Co<ReplyCode> add_prefix(std::string_view prefix,
                                              naming::ContextPair target);

  /// Define a logical prefix bound to a *service*: the prefix server
  /// performs GetPid each time the name is used (paper section 6).
  [[nodiscard]] sim::Co<ReplyCode> add_logical_prefix(
      std::string_view prefix, ipc::ServiceId service,
      naming::ContextId context = naming::kDefaultContext);

  /// Define a prefix naming a context implemented by a process GROUP
  /// (paper section 7): requests multicast to the group; the first member
  /// to answer wins.
  [[nodiscard]] sim::Co<ReplyCode> add_group_prefix(
      std::string_view prefix, ipc::GroupId group,
      naming::ContextId context = naming::kDefaultContext);

  [[nodiscard]] sim::Co<ReplyCode> delete_prefix(std::string_view prefix);

  // --- inverse mappings ---------------------------------------------------------

  /// Name of a context from its (server, id) pair — may fail with
  /// kNoInverse (section 6 discusses why).
  [[nodiscard]] sim::Co<Result<std::string>> context_name(
      naming::ContextPair ctx);

  /// Name of an open instance (the "absolute name of an open file").
  [[nodiscard]] sim::Co<Result<std::string>> file_name(
      ipc::ProcessId server, io::InstanceId instance);

 private:
  struct SplitName {
    std::string_view dir;
    std::string_view leaf;
  };
  static SplitName split_dir_leaf(std::string_view name);
  static std::string bracket(std::string_view prefix);

  /// Full-resolution open (the pre-cache path); populates the cache from
  /// the reply's binding hint when one is attached.
  [[nodiscard]] sim::Co<Result<OpenedFile>> open_resolved(
      std::string_view name, std::uint16_t mode);
  /// One-hop open against a cached binding, validated by expected
  /// generation.  kStaleContext/kInvalidContext/kNoReply mean the binding
  /// must be dropped; any other outcome is authoritative.
  [[nodiscard]] sim::Co<Result<OpenedFile>> open_via_binding(
      std::string_view name, std::uint16_t mode,
      const NameCache::Binding& binding, SplitName split);
  /// Feed piggybacked binding/origin hints of the last reply to the cache.
  void observe_reply_hints();
  /// Multicast-rebind open (paper §4): probe recovery_.rebind_group with a
  /// recovery-marked kMapContextName for the directory part, then open the
  /// leaf directly against whichever member answered.  Returns `original`
  /// when nobody answers (the probe changed nothing).
  [[nodiscard]] sim::Co<Result<OpenedFile>> open_via_rebind(
      std::string_view name, std::uint16_t mode, ReplyCode original);

  ipc::Process self_;
  NameEnv env_;
  NameCache* cache_ = nullptr;
  RecoveryPolicy recovery_;
};

}  // namespace v::svc
