// Client-side shard-map routing (PROTOCOL.md 14, DESIGN.md 4m).
//
// A ShardRouter wraps one program's Rt with knowledge of a sharded prefix
// fabric (servers/shard_fabric.hpp).  It keeps a cached ShardMap, routes
// every "[prefix]..." open one-hop to the owning shard — quoting the map's
// generation as the expected generation — and runs the repair loop when the
// fabric disagrees:
//
//   kStaleContext   the map aged past a fabric mutation: refetch, retry.
//                   The refused request had no effect; no wrong answer is
//                   possible (the whole point of the generation check).
//   kNoReply        the shard crashed mid-churn: refetch (the group fetch
//   kTimeout        doubles as a liveness probe), wait a beat for the
//                   handoff to progress, retry.
//   kBusy           the shard's team shed us: back off and retry.
//   anything else   authoritative (kNotFound...): surface it unchanged.
//
// Map fetches multicast msg::kFetchShardMap to the fabric's process group;
// the designated member answers and the rest stay silent (one-speaker group
// discipline), so fetching works as long as ANY shard survives and a stray
// second reply can never race this client's next transaction.
#pragma once

#include <cstdint>
#include <string_view>

#include "naming/shard_map.hpp"
#include "svc/runtime.hpp"

namespace v::svc {

class ShardRouter {
 public:
  struct Config {
    ipc::GroupId fabric_group = 0xFAB0;
    /// Open attempts (including the first) before surfacing the last
    /// transport error.  Sized so a full crash -> handoff window — tens of
    /// milliseconds of kNoReply — is survived at `retry_delay` pacing.
    std::size_t max_attempts = 64;
    /// Pause before retrying after kNoReply/kTimeout/kBusy — the fabric
    /// needs simulated time, not spin, to finish a handoff or drain a
    /// queue.  Stale-map retries skip the pause (the refetch already
    /// advanced the clock and the new map is actionable immediately).
    sim::SimDuration retry_delay = 5 * sim::kMillisecond;
  };

  struct Stats {
    std::uint64_t opens = 0;           ///< open() calls routed by the map
    std::uint64_t map_fetches = 0;     ///< kFetchShardMap multicasts
    std::uint64_t stale_retries = 0;   ///< kStaleContext -> refetch cycles
    std::uint64_t noreply_retries = 0; ///< kNoReply/kTimeout retry cycles
    std::uint64_t busy_retries = 0;    ///< kBusy backoff cycles
    std::uint64_t failures = 0;        ///< opens that exhausted attempts
  };

  ShardRouter(Rt& rt, Config cfg) noexcept : rt_(rt), cfg_(cfg) {}

  /// Open `name` through the shard map.  Names without the '['-prefix
  /// syntax fall back to the plain Rt path (current-context interpretation
  /// is not the fabric's business).
  [[nodiscard]] sim::Co<Result<Rt::OpenedFile>> open(std::string_view name,
                                                     std::uint16_t mode);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const naming::ShardMap& map() const noexcept { return map_; }
  /// Drop the cached map (next open refetches) — for tests.
  void invalidate() { map_ = naming::ShardMap{}; }

 private:
  /// Multicast-fetch the current map into map_.  False when no member
  /// answered or the bytes did not parse (map_ keeps its previous value).
  [[nodiscard]] sim::Co<bool> refetch_map();

  Rt& rt_;
  Config cfg_;
  naming::ShardMap map_;
  Stats stats_;
};

}  // namespace v::svc
