// The CSname standard header (paper section 5.3).
//
// Every request message that contains a character-string name has these
// fields at fixed offsets, forming a skeleton common to all CSname request
// types.  The variant part (bytes 12..31) depends on the request code.
// The name bytes themselves are NOT in the 32-byte message: they live in a
// segment of the original sender's memory, fetched by whichever server ends
// up interpreting them via MoveFrom.  The server-pid part of the context is
// implicit: it is the process the message is (currently) addressed to.
#pragma once

#include <cstdint>

#include "msg/message.hpp"
#include "common/annotate.hpp"

namespace v::msg::cs {

// Standard field offsets within a CSname request message.
inline constexpr std::size_t kOffCode = 0;        // u16 request code
inline constexpr std::size_t kOffNameIndex = 2;   // u16 parse resume index
inline constexpr std::size_t kOffNameLength = 4;  // u16 total name length
inline constexpr std::size_t kOffMode = 6;        // u8 op-specific mode bits
inline constexpr std::size_t kOffForwardCount = 7;  // u8 servers traversed
inline constexpr std::size_t kOffContextId = 8;   // u32 context identifier
inline constexpr std::size_t kVariantStart = 12;  // op-specific fields

// Validated-caching fields (bytes 24..28).  No standard operation's variant
// part reaches past byte 23 (kAddContextName is the widest, ending at 23),
// so these ride in otherwise-unused header space.  A request MAY carry the
// context generation the client expects the addressed context to have; a
// server whose generation differs answers kStaleContext without
// interpreting.  Absence of the flag means "no expectation" — the 1984
// behaviour, bit-for-bit.
inline constexpr std::size_t kOffExpectedGen = 24;  // u32 expected generation
inline constexpr std::size_t kOffCsFlags = 28;      // u8 CSname header flags
inline constexpr std::uint8_t kFlagExpectGen = 0x01;  // kOffExpectedGen valid
// Recovery probe (V-fault rebinding, PROTOCOL.md "Multicast rebinding"):
// the request was multicast to a server group to rediscover a binding after
// kNoReply/kInvalidContext.  Members that cannot serve it stay SILENT
// instead of replying with an error, so first-reply-wins surfaces a member
// that can; the sender's group timeout covers the nobody-can case.
inline constexpr std::uint8_t kFlagRecoveryProbe = 0x02;

/// Forwarding budget: a request traversing more servers than this is
/// answered kForwardLoop.  Cross-server pointer graphs are arbitrary
/// directed graphs (section 5.8), so cycles are expressible; this bound
/// makes interpretation total.
inline constexpr std::uint8_t kMaxForwardHops = 8;

/// Index into the name at which interpretation is to begin or continue.
/// A server that forwards a partially-interpreted request advances this.
[[nodiscard]] inline std::uint16_t name_index(const Message& m) noexcept {
  return m.u16(kOffNameIndex);
}
V_HOT_PATH
inline void set_name_index(Message& m, std::uint16_t index) noexcept {
  m.set_u16(kOffNameIndex, index);
}

/// Total length in bytes of the name segment.
[[nodiscard]] inline std::uint16_t name_length(const Message& m) noexcept {
  return m.u16(kOffNameLength);
}
V_HOT_PATH
inline void set_name_length(Message& m, std::uint16_t length) noexcept {
  m.set_u16(kOffNameLength, length);
}

/// Context identifier in which interpretation (re)starts.
[[nodiscard]] inline std::uint32_t context_id(const Message& m) noexcept {
  return m.u32(kOffContextId);
}
V_HOT_PATH
inline void set_context_id(Message& m, std::uint32_t ctx) noexcept {
  m.set_u32(kOffContextId, ctx);
}

/// Op-specific mode bits (e.g. open mode for kCreateInstance).
[[nodiscard]] inline std::uint16_t mode(const Message& m) noexcept {
  return static_cast<std::uint8_t>(m.raw()[kOffMode]);
}
V_HOT_PATH
inline void set_mode(Message& m, std::uint16_t mode_bits) noexcept {
  m.raw()[kOffMode] = static_cast<std::byte>(mode_bits & 0xff);
}

/// How many servers have already interpreted part of this name (advanced
/// on every forward; see kMaxForwardHops).
[[nodiscard]] inline std::uint8_t forward_count(const Message& m) noexcept {
  return static_cast<std::uint8_t>(m.raw()[kOffForwardCount]);
}
inline void set_forward_count(Message& m, std::uint8_t count) noexcept {
  m.raw()[kOffForwardCount] = static_cast<std::byte>(count);
}

/// CSname header flag bits (kOffCsFlags).
V_HOT_PATH
[[nodiscard]] inline std::uint8_t cs_flags(const Message& m) noexcept {
  return static_cast<std::uint8_t>(m.raw()[kOffCsFlags]);
}

/// True when the request carries an expected context generation.
[[nodiscard]] inline bool has_expected_generation(const Message& m) noexcept {
  return (cs_flags(m) & kFlagExpectGen) != 0;
}

/// The generation the client expects the addressed context to have.
/// Meaningful only when has_expected_generation().
[[nodiscard]] inline std::uint32_t expected_generation(
    const Message& m) noexcept {
  return m.u32(kOffExpectedGen);
}

/// Stamp an expected generation onto the request.
V_HOT_PATH
inline void set_expected_generation(Message& m, std::uint32_t gen) noexcept {
  m.set_u32(kOffExpectedGen, gen);
  m.raw()[kOffCsFlags] =
      static_cast<std::byte>(cs_flags(m) | kFlagExpectGen);
}

/// Drop the expectation (a forwarding server clears it: the expectation
/// applied to the context the client addressed, not to downstream ones).
inline void clear_expected_generation(Message& m) noexcept {
  m.set_u32(kOffExpectedGen, 0);
  m.raw()[kOffCsFlags] =
      static_cast<std::byte>(cs_flags(m) & ~kFlagExpectGen);
}

/// True when the request is a recovery probe (see kFlagRecoveryProbe).
[[nodiscard]] inline bool is_recovery_probe(const Message& m) noexcept {
  return (cs_flags(m) & kFlagRecoveryProbe) != 0;
}

/// Mark the request as a recovery probe.
inline void set_recovery_probe(Message& m) noexcept {
  m.raw()[kOffCsFlags] =
      static_cast<std::byte>(cs_flags(m) | kFlagRecoveryProbe);
}

/// Build the skeleton of a CSname request: code + standard fields.
[[nodiscard]] inline Message make_request(std::uint16_t code,
                                          std::uint32_t ctx,
                                          std::uint16_t name_len,
                                          std::uint16_t mode_bits = 0) {
  Message m;
  m.set_code(code);
  set_name_index(m, 0);
  set_name_length(m, name_len);
  set_context_id(m, ctx);
  set_mode(m, mode_bits);
  return m;
}

}  // namespace v::msg::cs
