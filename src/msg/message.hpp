// V message standard (paper section 3.2).
//
// Request and reply messages are fixed 32-byte records.  The first 16-bit
// field of a request is the request code; it acts as a tag (like a Pascal
// variant-record tag) specifying the format of the rest of the message.
// Replies carry a standard reply code in the same position.  Larger data
// (names, file blocks) is not in the message: it travels in the sender's
// memory segments, accessed by the receiver via MoveFrom/MoveTo.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/pack.hpp"
#include "common/reply_codes.hpp"

namespace v::msg {

/// A fixed 32-byte V message.  Field accessors take byte offsets; protocol
/// headers (e.g. the CSname standard fields) define named offsets on top.
class Message {
 public:
  static constexpr std::size_t kSize = 32;

  Message() noexcept : bytes_{} {}

  /// Request code / reply code (first 16-bit word).
  [[nodiscard]] std::uint16_t code() const noexcept { return u16(0); }
  void set_code(std::uint16_t code) noexcept { set_u16(0, code); }

  /// Reply-code view of the first word (replies only).
  [[nodiscard]] ReplyCode reply_code() const noexcept {
    return static_cast<ReplyCode>(code());
  }
  void set_reply_code(ReplyCode code) noexcept {
    set_code(static_cast<std::uint16_t>(code));
  }

  [[nodiscard]] std::uint16_t u16(std::size_t off) const noexcept {
    return get_u16(bytes_, off);
  }
  [[nodiscard]] std::uint32_t u32(std::size_t off) const noexcept {
    return get_u32(bytes_, off);
  }
  void set_u16(std::size_t off, std::uint16_t value) noexcept {
    put_u16(bytes_, off, value);
  }
  void set_u32(std::size_t off, std::uint32_t value) noexcept {
    put_u32(bytes_, off, value);
  }

  [[nodiscard]] std::span<const std::byte> raw() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::span<std::byte> raw() noexcept { return bytes_; }

  friend bool operator==(const Message& a, const Message& b) noexcept {
    return a.bytes_ == b.bytes_;
  }

 private:
  std::array<std::byte, kSize> bytes_;
};

/// Build a reply message carrying just a reply code.
inline Message make_reply(ReplyCode code) noexcept {
  Message m;
  m.set_reply_code(code);
  return m;
}

}  // namespace v::msg
