// Standard request codes.
//
// Code ranges are allocated per protocol so a server can cheaply decide
// whether a request is a CSname request (and thus has the standard name
// fields, paper section 5.3) even when it does not understand the specific
// operation:
//
//   0x0100-0x01ff  name-handling protocol, CSname requests
//   0x0200-0x02ff  I/O protocol, non-CSname (instance-id based)
//   0x0280          kCreateInstance IS a CSname request (open-by-name); it
//                   lives in the CSname range below instead.
//   0x0300-0x03ff  miscellaneous service operations (non-CSname)
//   0x0400-        server-specific operations (each server header defines
//                   its own; CSname-carrying ones must set kCsnameBit)
#pragma once

#include <cstdint>

namespace v::msg {

/// Requests with this bit set carry the standard CSname header fields and
/// a name segment, regardless of whether the receiving server understands
/// the operation code.  This is what lets a server forward requests it
/// cannot itself perform (paper section 5.4).
inline constexpr std::uint16_t kCsnameBit = 0x0100;

enum RequestCode : std::uint16_t {
  // --- name-handling protocol (all CSname requests) -----------------------
  kMapContextName = 0x0101,    ///< map a name naming a context to
                               ///< (server-pid, context-id); standard op
  kQueryName = 0x0102,         ///< get the object descriptor for a name
  kModifyName = 0x0103,        ///< overwrite modifiable descriptor fields
  kRemoveName = 0x0104,        ///< delete the named object
  kRenameName = 0x0105,        ///< rename (old and new names in segment)
  kAddContextName = 0x0106,    ///< optional op: define name for a context
  kDeleteContextName = 0x0107, ///< optional op: remove such a definition
  kCreateInstance = 0x0108,    ///< I/O protocol open-by-name (CSname request)
  kCreateName = 0x0109,        ///< create an object with the given name
  kMakeContext = 0x010a,       ///< create a sub-context (mkdir analogue)
  kLinkContext = 0x010b,       ///< bind name -> (server,ctx) pointer inside a
                               ///< name space (the "curved arrow" of Fig. 4)

  // --- inverse mappings (not CSname requests: no name in request) ---------
  kGetContextName = 0x0301,    ///< (server,context-id) -> CSname
  kGetFileName = 0x0302,       ///< (server,instance-id) -> CSname

  // --- I/O protocol (instance-id based, paper section 3.2 / 5.6) ----------
  kQueryInstance = 0x0201,
  kReadInstance = 0x0202,
  kWriteInstance = 0x0203,
  kReleaseInstance = 0x0204,

  // --- misc services -------------------------------------------------------
  kGetTime = 0x0303,
  kLoadProgram = 0x0304,       ///< team server: load program image (MoveTo)
  // 0x0305 is kRaiseException (exception_server.hpp defines it in place).
  kFetchShardMap = 0x0306,     ///< shard fabric: current shard map (MoveTo
                               ///< into the sender's write segment, reply
                               ///< fields in naming/shard_map.hpp)
};

/// True when `code` denotes a request carrying the CSname standard header.
constexpr bool is_csname_request(std::uint16_t code) noexcept {
  return (code & 0xff00) == kCsnameBit ||
         (code >= 0x0400 && (code & kCsnameBit) != 0);
}

}  // namespace v::msg
