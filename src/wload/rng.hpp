// Deterministic random streams for the workload engine (DESIGN.md 4m).
//
// The production-day generator must satisfy a stronger property than "same
// seed, same run": ADDING HOSTS MUST NEVER PERTURB EXISTING HOSTS.  A sweep
// that grows the fleet from 256 to 1024 clients has to replay the first 256
// hosts' decision sequences bit-for-bit, or curve points stop being
// comparable.  A single shared mt19937 cannot do that (every draw advances
// one global stream), so each host derives its own splitmix64 stream from
// (scenario seed, host index): streams are independent by construction and
// a host's sequence depends on nothing but its own index.
//
// splitmix64 (Steele et al., "Fast splittable pseudorandom number
// generators") is the standard seeding/stream-splitting mix: one 64-bit
// add + three xor-shift-multiply rounds, passes BigCrush, and is cheap
// enough to sit on the per-operation path of a million-open workload.
#pragma once

#include <cstdint>
#include <vector>

namespace v::wload {

/// One splitmix64 stream.  Deterministic, allocation-free, copyable.
class Splitmix64 {
 public:
  explicit constexpr Splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).  n == 0 returns 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next() % n;
  }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  constexpr bool chance(double p) noexcept { return unit() < p; }

 private:
  std::uint64_t state_;
};

/// Stateless seed mixer: the stream for host `index` under scenario `seed`.
/// Two rounds of splitmix on (seed ^ f(index)) decorrelate adjacent hosts.
[[nodiscard]] constexpr std::uint64_t host_stream_seed(
    std::uint64_t seed, std::uint64_t index) noexcept {
  Splitmix64 mixer(seed ^ (0x632be59bd9b4e019ULL * (index + 1)));
  (void)mixer.next();
  return mixer.next();
}

/// The per-host decision stream: splitmix64 over host_stream_seed.
class HostStream : public Splitmix64 {
 public:
  HostStream(std::uint64_t scenario_seed, std::uint64_t host_index) noexcept
      : Splitmix64(host_stream_seed(scenario_seed, host_index)) {}
};

/// Zipf(alpha) sampler over ranks [0, n) via a precomputed CDF and binary
/// search.  Rank 0 is the most popular.  alpha == 0 degenerates to uniform.
class Zipf {
 public:
  Zipf(std::size_t n, double alpha) : cdf_(n) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / pow_alpha(static_cast<double>(k + 1), alpha);
      cdf_[k] = total;
    }
    for (std::size_t k = 0; k < n; ++k) cdf_[k] /= total;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Draw a rank using `rng`'s next value.
  [[nodiscard]] std::size_t sample(Splitmix64& rng) const noexcept {
    if (cdf_.empty()) return 0;
    const double u = rng.unit();
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  /// x^alpha without <cmath> pow's libm cross-platform wobble: exp/log via
  /// the double-precision identities would do, but repeated squaring over
  /// a fixed-point exponent keeps the table bit-identical everywhere.
  [[nodiscard]] static double pow_alpha(double x, double alpha) noexcept {
    // alpha quantized to 1/1024: plenty for workload shaping, and the
    // fixed-point loop below is exactly reproducible across libms.
    auto q = static_cast<std::uint64_t>(alpha * 1024.0 + 0.5);
    double result = 1.0;
    // x^(q/1024) = product over set bits of q of x^(2^i / 1024), computed
    // by 10 successive square roots of x (each exactly rounded by IEEE).
    double root = x;  // x^(1024/1024)
    for (int bit = 10; bit >= 0 && q != 0; --bit) {
      if ((q >> bit) & 1) {
        result *= root;
        q &= ~(1ULL << bit);
      }
      root = sqrt_exact(root);
    }
    return result;
  }

  /// IEEE-exact sqrt (std::sqrt is correctly rounded, but pull it through
  /// the builtin to avoid any errno/exception-state library divergence).
  [[nodiscard]] static double sqrt_exact(double x) noexcept {
    return __builtin_sqrt(x);
  }

  std::vector<double> cdf_;
};

}  // namespace v::wload
