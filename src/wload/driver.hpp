// The workload driver: thousands of simulated client hosts playing one
// Scenario against a shard fabric (DESIGN.md 4m, EXPERIMENTS.md E14).
//
// Each client host gets its own splitmix64 stream derived from (scenario
// seed, host index) — see rng.hpp — so every decision a host makes (start
// jitter, prefix draws, read-vs-open draws, think times) is a function of
// its index alone.  Growing the fleet from H to H' > H hosts replays hosts
// 0..H-1 bit-for-bit; per-host curves across a sweep are therefore
// comparable points, not re-rolls.
//
// Every open is verified two ways:
//   * protocol: routed through a ShardRouter, so a stale shard map is
//     refused (kStaleContext) and retried — never wrongly answered;
//   * content: a read_fraction of opens read the file and compare the
//     bytes against Forest::content_for(name), the pure content oracle.
//     ANY mismatch counts as a wrong reply; E14's churn acceptance gate is
//     that this stays zero while shards crash and restart.
#pragma once

#include <cstdint>
#include <vector>

#include "ipc/kernel.hpp"
#include "obs/metrics.hpp"
#include "svc/shard_router.hpp"
#include "wload/forest.hpp"
#include "wload/rng.hpp"
#include "wload/scenario.hpp"

namespace v::wload {

/// Everything observed inside one scripted phase window, fleet-wide.
/// Operations are bucketed by their START time, so a flash-crowd open that
/// finishes during churn still charges the flash window.
struct PhaseStats {
  PhaseKind kind = PhaseKind::kSteady;
  sim::SimDuration duration = 0;
  std::uint64_t opens = 0;     ///< successful opens
  std::uint64_t reads = 0;     ///< opens that also read + verified
  std::uint64_t errors = 0;    ///< opens that exhausted the router's retries
  std::uint64_t wrong = 0;     ///< content-oracle mismatches (MUST stay 0)
  obs::LogHistogram open_ms;   ///< per-open latency, retries included

  [[nodiscard]] double throughput_per_s() const noexcept {
    const double secs = sim::to_ms(duration) / 1000.0;
    return secs > 0 ? static_cast<double>(opens) / secs : 0.0;
  }
};

class Driver {
 public:
  struct Config {
    std::size_t hosts = 64;
    Scenario scenario;
    /// Fabric process group the routers fetch shard maps from.
    ipc::GroupId fabric_group = 0xFAB0;
    svc::ShardRouter::Config router{};
  };

  /// Spawns one client host ("wl<i>") per simulated user, each running one
  /// client process; call before dom.run().  `forest` must outlive the run.
  Driver(ipc::Domain& dom, const Forest& forest, Config cfg);

  // --- results (valid after dom.run()) ---------------------------------------

  [[nodiscard]] const std::vector<PhaseStats>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] std::uint64_t total_opens() const noexcept;
  [[nodiscard]] std::uint64_t total_errors() const noexcept;
  /// Content-oracle mismatches across the whole run.  The chaos gate.
  [[nodiscard]] std::uint64_t wrong_replies() const noexcept;
  /// Sum of the per-client router stats.
  [[nodiscard]] const svc::ShardRouter::Stats& router_stats() const noexcept {
    return router_totals_;
  }
  /// Clients that finished their script.
  [[nodiscard]] std::size_t clients_done() const noexcept { return done_; }

 private:
  /// One client host's day.  `index` selects its decision stream.
  sim::Co<void> client_day(ipc::Process self, std::size_t index);
  /// Phase window containing `t` (clamped to the last phase).
  [[nodiscard]] std::size_t phase_at(sim::SimTime t) const noexcept;

  ipc::Domain& dom_;
  const Forest& forest_;
  Config cfg_;
  Zipf zipf_;
  /// Zipf RANK -> prefix INDEX stride (coprime with the prefix count, so
  /// the mapping is a bijection).  Popularity must not correlate with
  /// lexicographic order: the map shards the SORTED prefix list into
  /// contiguous ranges, and an identity mapping would land the whole Zipf
  /// head on shard 0, capping every sweep at one team's ceiling.
  std::size_t rank_stride_ = 1;
  std::vector<sim::SimTime> phase_ends_;  ///< cumulative boundaries
  std::vector<PhaseStats> phases_;
  svc::ShardRouter::Stats router_totals_;
  std::size_t done_ = 0;
};

}  // namespace v::wload
