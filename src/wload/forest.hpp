// Naming-forest synthesis for the workload engine (DESIGN.md 4m).
//
// A production day runs against a populated name space, not three
// hand-written files: this generator synthesizes a forest of prefix-rooted
// directory trees with configurable fanout and component-length
// distributions, deterministically from a seed, and installs it across a
// pool of V file servers.  Every file's content is a pure function of its
// full name (content_for), which is what makes the chaos oracle possible:
// any reader anywhere can verify any reply without shared state.
//
// Compatibility mode: with a non-empty `prefix_stem` and zero name-length
// spread, prefixes come out as "<stem>0", "<stem>1", ... and leaf names are
// fixed — exactly the hand-rolled lists the E4/E5 benches used before this
// generator existed, so those reports stay bit-identical while sharing the
// code path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "wload/rng.hpp"

namespace v::wload {

/// Shape of the synthesized forest.
struct ForestSpec {
  std::size_t prefixes = 64;        ///< top-level "[p]" contexts
  std::size_t dirs_per_prefix = 4;  ///< directories under each prefix
  std::size_t files_per_dir = 8;    ///< leaf files per directory
  /// Path component length distribution (uniform in [min, max]).  min == 0
  /// selects compatibility mode: prefix names are "<stem><index>", the
  /// directory is "d<index>" and leaves are "f<index>.dat".
  std::size_t name_min = 4;
  std::size_t name_max = 12;
  std::uint64_t seed = 1;
  std::string prefix_stem = "p";  ///< stem for prefix names
};

/// A generated forest: prefix names, full open names, and the deterministic
/// content oracle.  Construction is pure (no Domain involved); install()
/// pushes the files into a server pool.
class Forest {
 public:
  explicit Forest(ForestSpec spec);

  [[nodiscard]] const ForestSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return prefix_names_.size();
  }
  [[nodiscard]] const std::string& prefix(std::size_t i) const {
    return prefix_names_[i];
  }
  /// Total leaf files in the forest.
  [[nodiscard]] std::size_t file_count() const noexcept {
    return names_.size();
  }
  /// Full open name of file `f`: "[prefix]dir/leaf".
  [[nodiscard]] const std::string& name(std::size_t f) const {
    return names_[f];
  }
  /// Index of the prefix `name(f)` is rooted in.
  [[nodiscard]] std::size_t prefix_of(std::size_t f) const noexcept {
    return f / (spec_.dirs_per_prefix * spec_.files_per_dir);
  }
  /// A file drawn uniformly from the files under prefix `p`.
  [[nodiscard]] std::size_t file_under(std::size_t p,
                                       Splitmix64& rng) const noexcept {
    const std::size_t per = spec_.dirs_per_prefix * spec_.files_per_dir;
    return p * per + rng.below(per);
  }

  /// The content oracle: file bytes as a pure function of the full name.
  /// Short (fits one I/O block) so verification reads stay cheap.
  [[nodiscard]] static std::string content_for(std::string_view name);

  /// Install the forest across `servers` (prefix i lands on server
  /// i % servers.size(), under a top-level directory named after the
  /// prefix) and return the prefix table: one binding per prefix, ready
  /// for ContextPrefixServer::define or a shard fabric.  `pids[i]` is the
  /// spawned pid of `servers[i]`.
  [[nodiscard]] std::vector<
      std::pair<std::string, servers::ContextPrefixServer::Entry>>
  install(std::span<servers::FileServer* const> servers,
          std::span<const ipc::ProcessId> pids) const;

 private:
  [[nodiscard]] std::string component(Splitmix64& rng) const;

  ForestSpec spec_;
  std::vector<std::string> prefix_names_;
  std::vector<std::string> dir_names_;   ///< prefixes * dirs_per_prefix
  std::vector<std::string> names_;       ///< full "[p]d/f" open names
  std::vector<std::string> rel_paths_;   ///< "p/d/f" server-relative paths
};

}  // namespace v::wload
