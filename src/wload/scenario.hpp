// Production-day scripting for the workload engine (DESIGN.md 4m).
//
// A Scenario is a phase script every simulated client host plays through on
// its own deterministic decision stream: warm up gently, hold a steady
// state, pile onto one hot prefix (the flash crowd), keep working while a
// v::fault schedule crashes and restarts fabric shards (membership churn).
// The phases carve the run's timeline into labelled windows; the Driver
// buckets every operation's outcome and latency into the window it STARTED
// in, so E14 can report "flash-crowd p99" as a first-class number instead
// of a smear over the whole run.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace v::wload {

enum class PhaseKind : std::uint8_t {
  kWarmup,  ///< ramp-in; jittered client starts land here
  kSteady,  ///< Zipf-popular traffic at the scripted think pace
  kFlash,   ///< `hot_fraction` of draws collapse onto `hot_prefix`
  kChurn,   ///< steady traffic while a FaultPlan kills/restarts shards
};

[[nodiscard]] constexpr std::string_view to_string(PhaseKind k) noexcept {
  switch (k) {
    case PhaseKind::kWarmup: return "warmup";
    case PhaseKind::kSteady: return "steady";
    case PhaseKind::kFlash: return "flash";
    case PhaseKind::kChurn: return "churn";
  }
  return "?";
}

struct Phase {
  PhaseKind kind = PhaseKind::kSteady;
  sim::SimDuration duration = 0;
  /// kFlash only: probability that a prefix draw is redirected to
  /// `hot_prefix` instead of the Zipf sample.
  double hot_fraction = 0.0;
  std::size_t hot_prefix = 0;
};

struct Scenario {
  std::uint64_t seed = 1;
  /// Popularity skew across prefixes (rank 0 hottest); 0 = uniform.
  double zipf_alpha = 0.9;
  /// Fraction of opens that also read the file and verify its bytes
  /// against Forest::content_for — the chaos oracle.  The rest open/close.
  double read_fraction = 0.5;
  /// Per-operation think time, uniform in [min, max] on the host's stream.
  sim::SimDuration think_min = 20 * sim::kMillisecond;
  sim::SimDuration think_max = 120 * sim::kMillisecond;
  std::vector<Phase> phases;

  [[nodiscard]] sim::SimDuration total_duration() const noexcept {
    sim::SimDuration total = 0;
    for (const Phase& p : phases) total += p.duration;
    return total;
  }

  /// The default production day: warm-up, steady state, flash crowd on
  /// prefix 0, churn window, cool-down steady tail.
  static Scenario production_day(std::uint64_t seed) {
    using namespace sim;
    Scenario s;
    s.seed = seed;
    s.phases = {
        {.kind = PhaseKind::kWarmup, .duration = 2000 * kMillisecond},
        {.kind = PhaseKind::kSteady, .duration = 6000 * kMillisecond},
        {.kind = PhaseKind::kFlash, .duration = 4000 * kMillisecond,
         .hot_fraction = 0.4, .hot_prefix = 0},
        {.kind = PhaseKind::kChurn, .duration = 6000 * kMillisecond},
        {.kind = PhaseKind::kSteady, .duration = 4000 * kMillisecond},
    };
    return s;
  }
};

}  // namespace v::wload
