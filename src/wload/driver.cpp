#include "wload/driver.hpp"

#include <cstring>

#include "naming/protocol.hpp"

namespace v::wload {

Driver::Driver(ipc::Domain& dom, const Forest& forest, Config cfg)
    : dom_(dom),
      forest_(forest),
      cfg_(std::move(cfg)),
      zipf_(forest.prefix_count(), cfg_.scenario.zipf_alpha) {
  // Golden-ratio stride, nudged until coprime with the prefix count: a
  // fixed bijection scattering Zipf ranks over the sorted prefix list.
  const std::size_t n = forest_.prefix_count();
  if (n > 1) {
    rank_stride_ = std::max<std::size_t>(1, (n * 618) / 1000);
    auto gcd = [](std::size_t a, std::size_t b) {
      while (b != 0) {
        const std::size_t t = a % b;
        a = b;
        b = t;
      }
      return a;
    };
    while (gcd(rank_stride_, n) != 1) ++rank_stride_;
  }
  sim::SimTime at = dom_.now();
  phase_ends_.reserve(cfg_.scenario.phases.size());
  phases_.reserve(cfg_.scenario.phases.size());
  for (const Phase& p : cfg_.scenario.phases) {
    at += p.duration;
    phase_ends_.push_back(at);
    PhaseStats stats;
    stats.kind = p.kind;
    stats.duration = p.duration;
    phases_.push_back(std::move(stats));
  }
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    ipc::Host& host = dom_.add_host("wl" + std::to_string(i));
    host.spawn("client", [this, i](ipc::Process self) {
      return client_day(self, i);
    });
  }
}

std::size_t Driver::phase_at(sim::SimTime t) const noexcept {
  for (std::size_t i = 0; i + 1 < phase_ends_.size(); ++i) {
    if (t < phase_ends_[i]) return i;
  }
  return phase_ends_.empty() ? 0 : phase_ends_.size() - 1;
}

sim::Co<void> Driver::client_day(ipc::Process self, std::size_t index) {
  HostStream rng(cfg_.scenario.seed, index);
  svc::Rt rt(self, svc::NameEnv{});
  svc::ShardRouter::Config router_cfg = cfg_.router;
  router_cfg.fabric_group = cfg_.fabric_group;
  svc::ShardRouter router(rt, router_cfg);

  const sim::SimTime end =
      phase_ends_.empty() ? self.now() : phase_ends_.back();
  const auto think_span = static_cast<std::uint64_t>(
      cfg_.scenario.think_max > cfg_.scenario.think_min
          ? cfg_.scenario.think_max - cfg_.scenario.think_min
          : 0);
  // Jittered start inside the first phase: the fleet ramps in instead of
  // stampeding the fabric at t=0 with cfg_.hosts simultaneous map fetches.
  const sim::SimDuration first = cfg_.scenario.phases.empty()
      ? 0
      : cfg_.scenario.phases.front().duration;
  if (first > 0) {
    co_await self.delay(static_cast<sim::SimDuration>(
        rng.below(static_cast<std::uint64_t>(first))));
  }

  while (self.now() < end) {
    const std::size_t pi = phase_at(self.now());
    const Phase& phase = cfg_.scenario.phases[pi];
    // Draw the target: Zipf-popular rank scattered over the prefix list,
    // overridden by the flash crowd (whose hot_prefix is a prefix INDEX).
    std::size_t prefix =
        (zipf_.sample(rng) * rank_stride_) % forest_.prefix_count();
    if (phase.kind == PhaseKind::kFlash && rng.chance(phase.hot_fraction)) {
      prefix = phase.hot_prefix % forest_.prefix_count();
    }
    const std::size_t file = forest_.file_under(prefix, rng);
    const std::string& name = forest_.name(file);
    const bool verify = rng.chance(cfg_.scenario.read_fraction);

    const sim::SimTime started = self.now();
    auto opened = co_await router.open(name, naming::wire::kOpenRead);
    PhaseStats& stats = phases_[pi];  // charged to the START window
    if (!opened.ok()) {
      ++stats.errors;
    } else {
      svc::File file_handle = opened.take().file;
      if (verify) {
        auto bytes = co_await file_handle.read_all();
        if (!bytes.ok()) {
          ++stats.errors;
        } else {
          const std::string expect = Forest::content_for(name);
          const auto& got = bytes.value();
          const bool match =
              got.size() == expect.size() &&
              (expect.empty() ||
               std::memcmp(got.data(), expect.data(), expect.size()) == 0);
          if (!match) ++stats.wrong;
          ++stats.reads;
        }
      }
      (void)co_await file_handle.close();
      ++stats.opens;
      stats.open_ms.record(sim::to_ms(self.now() - started));
    }
    // Think, then go again — scripted pace, not closed-loop saturation.
    co_await self.delay(cfg_.scenario.think_min +
                        static_cast<sim::SimDuration>(
                            think_span == 0 ? 0 : rng.below(think_span)));
  }

  const svc::ShardRouter::Stats& rs = router.stats();
  router_totals_.opens += rs.opens;
  router_totals_.map_fetches += rs.map_fetches;
  router_totals_.stale_retries += rs.stale_retries;
  router_totals_.noreply_retries += rs.noreply_retries;
  router_totals_.busy_retries += rs.busy_retries;
  router_totals_.failures += rs.failures;
  ++done_;
}

std::uint64_t Driver::total_opens() const noexcept {
  std::uint64_t total = 0;
  for (const PhaseStats& p : phases_) total += p.opens;
  return total;
}

std::uint64_t Driver::total_errors() const noexcept {
  std::uint64_t total = 0;
  for (const PhaseStats& p : phases_) total += p.errors;
  return total;
}

std::uint64_t Driver::wrong_replies() const noexcept {
  std::uint64_t total = 0;
  for (const PhaseStats& p : phases_) total += p.wrong;
  return total;
}

}  // namespace v::wload
