#include "wload/forest.hpp"

namespace v::wload {

namespace {

/// FNV-1a over the name: the content oracle's per-file fingerprint.
std::uint64_t fingerprint(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Forest::Forest(ForestSpec spec) : spec_(std::move(spec)) {
  if (spec_.prefixes == 0) spec_.prefixes = 1;
  if (spec_.dirs_per_prefix == 0) spec_.dirs_per_prefix = 1;
  if (spec_.files_per_dir == 0) spec_.files_per_dir = 1;
  const bool fixed = spec_.name_min == 0;
  Splitmix64 rng(spec_.seed);
  prefix_names_.reserve(spec_.prefixes);
  for (std::size_t p = 0; p < spec_.prefixes; ++p) {
    if (fixed || !spec_.prefix_stem.empty()) {
      prefix_names_.push_back(spec_.prefix_stem + std::to_string(p));
    } else {
      // Random stem + index suffix: realistic length spread, guaranteed
      // unique (the suffix), still a single deterministic stream.
      prefix_names_.push_back(component(rng) + std::to_string(p));
    }
  }
  dir_names_.reserve(spec_.prefixes * spec_.dirs_per_prefix);
  names_.reserve(spec_.prefixes * spec_.dirs_per_prefix *
                 spec_.files_per_dir);
  rel_paths_.reserve(names_.capacity());
  for (std::size_t p = 0; p < spec_.prefixes; ++p) {
    for (std::size_t d = 0; d < spec_.dirs_per_prefix; ++d) {
      std::string dir = fixed ? "d" + std::to_string(d)
                              : component(rng) + std::to_string(d);
      for (std::size_t f = 0; f < spec_.files_per_dir; ++f) {
        std::string leaf = fixed ? "f" + std::to_string(f) + ".dat"
                                 : component(rng) + std::to_string(f);
        names_.push_back("[" + prefix_names_[p] + "]" + dir + "/" + leaf);
        rel_paths_.push_back(prefix_names_[p] + "/" + dir + "/" + leaf);
      }
      dir_names_.push_back(std::move(dir));
    }
  }
}

std::string Forest::component(Splitmix64& rng) const {
  const std::size_t span = spec_.name_max >= spec_.name_min
                               ? spec_.name_max - spec_.name_min + 1
                               : 1;
  const std::size_t len = spec_.name_min + rng.below(span);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + rng.below(26)));
  }
  return out;
}

std::string Forest::content_for(std::string_view name) {
  // 32 hex digits of name-derived bytes plus the name itself: unique per
  // file, self-describing in dumps, and small enough for one block.
  static constexpr char kHex[] = "0123456789abcdef";
  Splitmix64 rng(fingerprint(name));
  std::string out;
  out.reserve(34 + name.size());
  for (int word = 0; word < 2; ++word) {
    std::uint64_t v = rng.next();
    for (int i = 0; i < 16; ++i) {
      out.push_back(kHex[v & 0xf]);
      v >>= 4;
    }
  }
  out.push_back(':');
  out.append(name);
  return out;
}

std::vector<std::pair<std::string, servers::ContextPrefixServer::Entry>>
Forest::install(std::span<servers::FileServer* const> servers,
                std::span<const ipc::ProcessId> pids) const {
  std::vector<std::pair<std::string, servers::ContextPrefixServer::Entry>>
      bindings;
  bindings.reserve(prefix_names_.size());
  for (std::size_t f = 0; f < names_.size(); ++f) {
    const std::size_t s = prefix_of(f) % servers.size();
    servers[s]->put_file(rel_paths_[f], content_for(names_[f]));
  }
  for (std::size_t p = 0; p < prefix_names_.size(); ++p) {
    const std::size_t s = p % servers.size();
    bindings.emplace_back(
        prefix_names_[p],
        servers::ContextPrefixServer::Entry{
            .target = {pids[s], servers[s]->context_of(prefix_names_[p])}});
  }
  return bindings;
}

}  // namespace v::wload
