// CSname parsing helpers (paper sections 5.1, 5.4, 5.8).
//
// The protocol imposes almost no name syntax; these helpers implement the
// two syntaxes the standard servers use:
//   * slash-separated hierarchical components ("usr/mann/naming.mss")
//   * the context prefix syntax: a leading '[', prefix terminated by ']'
// Servers with foreign syntaxes (e.g. mail's "user@host") simply do not use
// these helpers — that freedom is one of the paper's design points.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace v::naming {

/// Standard context prefix character checked by the run-time library.
inline constexpr char kPrefixOpen = '[';
inline constexpr char kPrefixClose = ']';

/// True when the name starts with the standard context prefix character
/// (the run-time routines route such requests to the context prefix server).
constexpr bool has_prefix_syntax(std::string_view name) noexcept {
  return !name.empty() && name.front() == kPrefixOpen;
}

/// Extract the prefix of "[prefix]rest...".  Returns the prefix (without
/// brackets) and sets `rest_index` to the index just past ']'.  Returns
/// nullopt when the name does not carry well-formed prefix syntax.
std::optional<std::string_view> parse_prefix(std::string_view name,
                                             std::size_t& rest_index) noexcept;

/// One step of left-to-right component parsing: the component starting at
/// `index` (skipping leading separators) and, via `next_index`, where the
/// following component begins.  Empty return means no components remain.
std::string_view next_component(std::string_view name, std::size_t index,
                                std::size_t& next_index) noexcept;

/// Number of slash-separated components in `name` from `index` on.
std::size_t count_components(std::string_view name,
                             std::size_t index = 0) noexcept;

/// True when the remainder contains at most one component (no internal
/// separator), i.e. it can denote a leaf object in the final context.
bool is_simple_leaf(std::string_view remainder) noexcept;

}  // namespace v::naming
