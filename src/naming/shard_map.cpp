#include "naming/shard_map.hpp"

namespace v::naming {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>(v >> 8));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get_u16(std::span<const std::byte> in, std::size_t at) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[at]) |
      (static_cast<std::uint16_t>(in[at + 1]) << 8));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) {
  return static_cast<std::uint32_t>(get_u16(in, at)) |
         (static_cast<std::uint32_t>(get_u16(in, at + 2)) << 16);
}

}  // namespace

bool ShardMap::well_formed() const noexcept {
  if (shards.empty() || !shards.front().lo.empty()) return false;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    if (shards[i - 1].lo >= shards[i].lo) return false;
  }
  return true;
}

std::size_t ShardMap::route(std::string_view prefix) const noexcept {
  // Last shard with lo <= prefix.  shards[0].lo == "" guarantees a match.
  std::size_t lo = 0;
  std::size_t hi = shards.size();  // first shard with lo > prefix
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (shards[mid].lo <= prefix) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void ShardMap::serialize(std::vector<std::byte>& out) const {
  put_u32(out, kMagic);
  put_u32(out, version);
  put_u16(out, static_cast<std::uint16_t>(shards.size()));
  for (const Shard& s : shards) {
    put_u32(out, s.server_pid);
    put_u32(out, s.generation);
    put_u16(out, static_cast<std::uint16_t>(s.lo.size()));
    for (const char c : s.lo) out.push_back(static_cast<std::byte>(c));
  }
}

bool ShardMap::parse(std::span<const std::byte> in, ShardMap& out) {
  if (in.size() < 10 || get_u32(in, 0) != kMagic) return false;
  ShardMap parsed;
  parsed.version = get_u32(in, 4);
  const std::uint16_t count = get_u16(in, 8);
  std::size_t at = 10;
  parsed.shards.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    if (at + 10 > in.size()) return false;
    Shard s;
    s.server_pid = get_u32(in, at);
    s.generation = get_u32(in, at + 4);
    const std::uint16_t len = get_u16(in, at + 8);
    at += 10;
    if (at + len > in.size()) return false;
    s.lo.reserve(len);
    for (std::uint16_t c = 0; c < len; ++c) {
      s.lo.push_back(static_cast<char>(in[at + c]));
    }
    at += len;
    parsed.shards.push_back(std::move(s));
  }
  if (!parsed.well_formed()) return false;
  out = std::move(parsed);
  return true;
}

}  // namespace v::naming
