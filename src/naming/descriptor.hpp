// Typed object description records (paper section 5.5, Figure 3).
//
// A query operation returns a description record whose first field is a tag
// specifying the record format (and letting the client check the object is
// of the expected type).  Context directories (section 5.6) are sequences of
// these records, one per object, fabricated on demand by the server.
//
// Records have a fixed 128-byte wire encoding so a context directory can be
// read as a file of fixed-size records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/result.hpp"
#include "naming/types.hpp"

namespace v::naming {

/// Record tag: what kind of object this record describes.
enum class DescriptorType : std::uint16_t {
  kNone = 0,
  kFile = 1,        ///< storage server file
  kContext = 2,     ///< a context (e.g. a directory)
  kProcess = 3,     ///< a process / running program
  kTerminal = 4,    ///< virtual terminal
  kConnection = 5,  ///< network (TCP) connection
  kPrefix = 6,      ///< context prefix definition
  kMailbox = 7,     ///< mail server mailbox
  kPrintJob = 8,    ///< spooled printer job
  kDevice = 9,      ///< other device-like object
};

std::string_view to_string(DescriptorType type) noexcept;

/// Modifiable/queryable attribute flags.
enum DescriptorFlags : std::uint16_t {
  kReadable = 1 << 0,
  kWriteable = 1 << 1,
  kAppendOnly = 1 << 2,
  kProtected = 1 << 3,   ///< modification requests are ignored
  kLogical = 1 << 4,     ///< prefix entries: bound to a service, not a pid
  kGrouped = 1 << 5,     ///< prefix entries: bound to a process GROUP
};

/// One object description record.
///
/// "Some of the fields of a description record are typically names of other
/// system objects, such as name of the owner" — `owner` here.  Servers are
/// free to ignore modifications to fields "which it makes no sense to
/// change"; the convention in this codebase is: `flags` and `owner` are
/// modifiable, everything else is fabricated by the server.
struct ObjectDescriptor {
  DescriptorType type = DescriptorType::kNone;
  std::uint16_t flags = 0;
  std::uint32_t size = 0;        ///< object size in bytes (files, jobs, ...)
  std::uint32_t object_id = 0;   ///< server-internal id (i-node, instance)
  std::uint32_t server_pid = 0;  ///< for kPrefix/kContext: target server
  ContextId context_id = 0;      ///< for kPrefix/kContext: target context
  std::uint32_t mtime = 0;       ///< last-modified, simulated seconds
  std::string owner;             ///< owning user (name of another object)
  std::string name;              ///< the object's name in this context

  /// Fixed wire size of one encoded record.
  static constexpr std::size_t kWireSize = 128;
  static constexpr std::size_t kMaxOwner = 31;
  static constexpr std::size_t kMaxName = 63;

  /// Encode into exactly kWireSize bytes at `out` (out.size() >= kWireSize).
  /// Over-long owner/name strings are truncated (wire format limit).
  void encode(std::span<std::byte> out) const;

  /// Decode a record.  Returns kBadArgs for a short buffer or unknown tag.
  static Result<ObjectDescriptor> decode(std::span<const std::byte> in);

  friend bool operator==(const ObjectDescriptor&,
                         const ObjectDescriptor&) = default;
};

}  // namespace v::naming
