// Core naming types (paper section 5.2).
//
// A context is a set of (name, object) tuples, identified system-wide by the
// pair (server-pid, context-id).  Context ids are server-assigned numbers,
// valid only while the server process exists, except for a few well-known
// ids with fixed values used for generic name spaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "ipc/process_id.hpp"

namespace v::naming {

/// Numeric identifier of a context within one server.
using ContextId = std::uint32_t;

/// Longest CSname the standard servers accept.
inline constexpr std::size_t kMaxNameLength = 4096;

/// "When a server implements only one context, the context identifier has
/// little meaning and uses a standard default value of 0."
inline constexpr ContextId kDefaultContext = 0;

// Well-known context identifiers with fixed values (paper: "used to specify
// generic name spaces such as 'home directory' and 'standard program
// directory'").  Servers translate these to concrete contexts.
inline constexpr ContextId kWellKnownBase = 0xffff0000;
inline constexpr ContextId kHomeContext = 0xffff0001;       ///< home directory
inline constexpr ContextId kProgramsContext = 0xffff0002;   ///< standard programs
inline constexpr ContextId kPublicContext = 0xffff0003;     ///< public root
inline constexpr ContextId kTempContext = 0xffff0004;       ///< scratch space

/// True for the fixed well-known ids.
constexpr bool is_well_known(ContextId ctx) noexcept {
  return ctx >= kWellKnownBase;
}

/// A fully-specified context: which server, and which name space within it.
struct ContextPair {
  ipc::ProcessId server;
  ContextId context = kDefaultContext;

  [[nodiscard]] bool valid() const noexcept { return server.valid(); }

  friend bool operator==(const ContextPair& a, const ContextPair& b) noexcept {
    return a.server == b.server && a.context == b.context;
  }
  friend bool operator!=(const ContextPair& a, const ContextPair& b) noexcept {
    return !(a == b);
  }
};

/// A fully-qualified CSname: context plus the byte string interpreted in it
/// (paper: "Given such a specification, the interpretation of the name is
/// fully specified independent of the operation requested").
struct QualifiedName {
  ContextPair context;
  std::string name;
};

}  // namespace v::naming
