// CsnhServer: base class for every character-string-name-handling server
// (paper sections 5.3-5.7).
//
// "Any V server implementing one or more name spaces or contexts must
// conform to the name-handling protocol."  This class is that conformance:
// it implements, once, the parts the protocol fixes for all servers —
//
//   * the CSname standard header handling and name-segment fetch,
//   * the name-mapping procedure: left-to-right component interpretation
//     with CurrentContext, and forwarding of partially-interpreted requests
//     to the server implementing the next context (section 5.4),
//   * the standard operations: MapContextName, Query/Modify descriptors,
//     Remove/Rename/Create, the optional Add/DeleteContextName, the inverse
//     mappings GetContextName/GetFileName (section 5.7),
//   * context directories readable (and writeable) as files via the V I/O
//     protocol (section 5.6), and
//   * the I/O protocol instance operations.
//
// Subclasses provide the name space itself through the lookup/describe/...
// hooks.  A server keeps full freedom in syntax by overriding
// parse_component (the mail server treats "user@host" as one component),
// and in interpretation by overriding the hooks — exactly the flexibility
// the paper claims for the distributed model.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chk/ledger.hpp"
#include "chk/shared_cell.hpp"
#include "common/flat_map.hpp"
#include "common/result.hpp"
#include "io/instance.hpp"
#include "ipc/kernel.hpp"
#include "msg/csname.hpp"
#include "msg/message.hpp"
#include "msg/request_codes.hpp"
#include "naming/descriptor.hpp"
#include "naming/protocol.hpp"
#include "naming/types.hpp"
#include "obs/metrics.hpp"
#include "sim/condition.hpp"
#include "sim/task.hpp"

namespace v::naming {

/// Concurrency knobs for one server team (paper section 3: V servers are
/// teams of processes, so one slow request never stalls the service).
///
///   workers    — worker processes pulling from the team's work queue.
///                1 = classic serial loop (receive/dispatch in one fiber,
///                no queue, no shedding).  >1 = receptionist + worker pool.
///   queue_cap  — bound on queued (accepted but not yet dispatched)
///                requests.  At the bound the receptionist sheds new
///                requests with an immediate kBusy reply instead of letting
///                the backlog (and client latency) grow without limit.
struct TeamConfig {
  std::size_t workers = 1;
  std::size_t queue_cap = 64;
};

class CsnhServer {
 public:
  virtual ~CsnhServer() = default;

  /// The server's process body — the team RECEPTIONIST.  Spawn it with:
  ///   host.spawn("fs", [srv](ipc::Process p) { return srv->run(p); });
  /// The CsnhServer object must outlive the domain run.
  ///
  /// With team().workers == 1 this is the classic serial loop.  With more,
  /// the receptionist only receives and enqueues; worker processes (spawned
  /// on the same host via Host::spawn_team) dispatch concurrently.  Replies
  /// still quote pid() — the receptionist's pid is the server's public
  /// name; workers are anonymous team members.
  [[nodiscard]] sim::Co<void> run(ipc::Process self);

  /// Pid of the running server process (valid once run() has started).
  [[nodiscard]] ipc::ProcessId pid() const noexcept { return pid_; }

  /// Team knobs.  set_team must be called before run() starts.
  void set_team(TeamConfig team) noexcept { team_ = team; }
  [[nodiscard]] const TeamConfig& team() const noexcept { return team_; }

  /// Service group joined by the receptionist on every (re)start.  Recovery
  /// probes multicast to this group reach every live incarnation of the
  /// service, so a restarted server (new pid) is rediscoverable without any
  /// client knowing its address (paper section 7; PROTOCOL.md "Multicast
  /// rebinding").  0 = join nothing.  Set before run() starts.
  void set_service_group(ipc::GroupId group) noexcept {
    service_group_ = group;
  }
  [[nodiscard]] ipc::GroupId service_group() const noexcept {
    return service_group_;
  }

  /// Requests shed with kBusy because the work queue was at queue_cap.
  [[nodiscard]] std::uint64_t shed_count() const noexcept { return sheds_; }

  /// Current generation of `ctx` in this incarnation of the server.  Every
  /// gated name-space mutation bumps the affected context's generation; the
  /// values are drawn from the DOMAIN-wide monotone sequence, so no
  /// generation ever recurs — not in this server, not in a restarted one,
  /// not in an impostor listening on a recycled pid.  A request carrying an
  /// expected generation that differs is answered kStaleContext.
  [[nodiscard]] std::uint32_t generation(ContextId ctx) const noexcept {
    const auto it = generations_.find(ctx);
    return it != generations_.end() ? it->second : gen_floor_;
  }
  /// Requests accepted but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return work_queue_.raw().size();
  }

 protected:
  CsnhServer() = default;
  explicit CsnhServer(TeamConfig team) noexcept : team_(team) {}

  /// Result of looking up one name component in a context.
  struct LookupResult {
    enum class Kind {
      kMissing,        ///< no such name in the context
      kObject,         ///< names a leaf object (not a context)
      kLocalContext,   ///< names a context on this server
      kRemoteContext,  ///< names a context on another server -> forward
      kGroupContext,   ///< names a context implemented by a PROCESS GROUP
                       ///< (paper section 7) -> multicast forward
    };
    Kind kind = Kind::kMissing;
    ContextId context = kDefaultContext;  ///< kLocalContext / kGroupContext
    ContextPair remote;                   ///< for kRemoteContext
    ipc::GroupId group = 0;               ///< for kGroupContext
    std::uint32_t object_id = 0;          ///< for kObject (informational)
    /// kGroupContext only: forward as a RECOVERY PROBE — members that
    /// cannot serve the request stay silent instead of answering an error
    /// (V-fault rebinding; the prefix server uses this when an ordinary
    /// entry's target server is dead).
    bool probe = false;

    static LookupResult missing() { return {}; }
    static LookupResult object(std::uint32_t id = 0) {
      LookupResult r;
      r.kind = Kind::kObject;
      r.object_id = id;
      return r;
    }
    static LookupResult local(ContextId ctx) {
      LookupResult r;
      r.kind = Kind::kLocalContext;
      r.context = ctx;
      return r;
    }
    static LookupResult remote_ctx(ContextPair pair) {
      LookupResult r;
      r.kind = Kind::kRemoteContext;
      r.remote = pair;
      return r;
    }
    static LookupResult group_ctx(ipc::GroupId group, ContextId ctx) {
      LookupResult r;
      r.kind = Kind::kGroupContext;
      r.group = group;
      r.context = ctx;
      return r;
    }
    static LookupResult group_probe(ipc::GroupId group, ContextId ctx) {
      LookupResult r = group_ctx(group, ctx);
      r.probe = true;
      return r;
    }
  };

  // --- mandatory hook --------------------------------------------------------

  /// Look up `component` in `ctx`.  A coroutine because some servers need
  /// kernel operations here (the prefix server resolves logical entries
  /// with GetPid at each use).
  virtual sim::Co<LookupResult> lookup(ipc::Process& self, ContextId ctx,
                                       std::string_view component) = 0;

  // --- optional hooks (defaults reply kIllegalRequest / kNoInverse) ----------

  /// Called once when the server process starts (register services, ...).
  virtual sim::Co<void> on_start(ipc::Process& self);

  /// Translate well-known context ids (kHomeContext...) to concrete ones.
  /// Default: identity.
  virtual ContextId translate_context(ContextId ctx) { return ctx; }

  /// Is `ctx` a context this server implements right now?
  virtual bool context_valid(ContextId ctx) {
    return ctx == kDefaultContext;
  }

  /// Split off the component of `name` starting at `index` (also skipping
  /// syntax like separators); sets `next` to where the next one begins.
  /// Default: '/'-separated.  Override for foreign syntaxes.
  virtual std::string_view parse_component(std::string_view name,
                                           std::size_t index,
                                           std::size_t& next);

  /// Fixed CPU charge for handling one CSname request (calibration:
  /// csname_parse; the context prefix server overrides this with its own
  /// measured processing cost).
  virtual sim::SimDuration parse_cost(ipc::Process& self,
                                      std::string_view name);

  /// Descriptor for the object `leaf` in `ctx`; an empty leaf means the
  /// context itself (default: a generic kContext record).
  virtual sim::Co<Result<ObjectDescriptor>> describe(ipc::Process& self,
                                                     ContextId ctx,
                                                     std::string_view leaf);

  /// Apply a modification record ("overwrites the original description";
  /// servers ignore fields that make no sense to change).
  virtual sim::Co<ReplyCode> modify(ipc::Process& self, ContextId ctx,
                                    std::string_view leaf,
                                    const ObjectDescriptor& desc);

  virtual sim::Co<ReplyCode> remove(ipc::Process& self, ContextId ctx,
                                    std::string_view leaf);
  virtual sim::Co<ReplyCode> rename(ipc::Process& self, ContextId ctx,
                                    std::string_view leaf,
                                    std::string_view new_leaf);
  virtual sim::Co<ReplyCode> create_object(ipc::Process& self, ContextId ctx,
                                           std::string_view leaf,
                                           std::uint16_t mode);
  virtual sim::Co<ReplyCode> make_context(ipc::Process& self, ContextId ctx,
                                          std::string_view leaf);
  /// Bind leaf -> target inside this server's name space (cross-server
  /// pointer, the curved arrow of Figure 4).
  virtual sim::Co<ReplyCode> link_context(ipc::Process& self, ContextId ctx,
                                          std::string_view leaf,
                                          ContextPair target);

  /// Optional operations, "ordinarily implemented only in context prefix
  /// servers" (section 5.7).  `logical_service` is set (non-kNone) for
  /// logical-pid entries resolved by GetPid at each use; `group` is set
  /// (non-zero) for group-implemented contexts (section 7), in which case
  /// `target.context` still carries the context id within the group.
  virtual sim::Co<ReplyCode> add_context_name(ipc::Process& self,
                                              ContextId ctx,
                                              std::string_view leaf,
                                              ContextPair target,
                                              ipc::ServiceId logical_service,
                                              ipc::GroupId group);
  virtual sim::Co<ReplyCode> delete_context_name(ipc::Process& self,
                                                 ContextId ctx,
                                                 std::string_view leaf);

  /// Open `leaf` as an I/O instance (files, terminals, connections...).
  virtual sim::Co<Result<std::unique_ptr<io::InstanceObject>>> open_object(
      ipc::Process& self, ContextId ctx, std::string_view leaf,
      std::uint16_t mode);

  /// All objects in `ctx`, for context-directory fabrication.  Default:
  /// kIllegalRequest (servers without enumerable contexts).
  virtual sim::Co<Result<std::vector<ObjectDescriptor>>> list_context(
      ipc::Process& self, ContextId ctx);

  /// Inverse mappings (section 5.7 / section 6's "reverse mapping").
  /// Default kNoInverse — the paper is explicit that inverses may not exist.
  virtual Result<std::string> context_to_name(ContextId ctx);
  virtual Result<std::string> instance_to_name(io::InstanceId instance);

  /// CSname requests with operation codes this base does not know, already
  /// resolved to (ctx, leaf).  Default: kIllegalRequest reply.
  virtual sim::Co<msg::Message> handle_custom_csname(
      ipc::Process& self, ipc::Envelope& env, ContextId ctx,
      std::string_view leaf, std::string_view name);

  /// Non-CSname requests this base does not know.  Default: kIllegalRequest.
  ///
  /// A handler may return silent_discard() to answer NOTHING — the group
  /// discipline for misc ops multicast to a service group: only the
  /// designated member replies, everyone else stays silent so a stray
  /// second reply can never race a later transaction of the same client
  /// (the kernel matches replies to senders, not to transactions; see
  /// ShardPrefixServer's map fetch).  The sender's group timeout covers
  /// the nobody-answered case.
  virtual sim::Co<msg::Message> handle_custom(ipc::Process& self,
                                              ipc::Envelope& env);

  /// Requests the receptionist queues at the FRONT of the work queue and
  /// exempts from load shedding: tiny metadata queries (e.g. a shard-map
  /// fetch) whose answers unblock routing decisions.  A saturated team's
  /// queue wait exceeds the sender's group timeout, so a back-of-queue
  /// metadata reply would always arrive too late to be accepted — the
  /// express lane bounds its wait to one in-flight dispatch instead.
  [[nodiscard]] virtual bool express_lane(const msg::Message&) const {
    return false;
  }

  /// Sentinel reply meaning "do not reply at all" (see handle_custom).
  /// Never appears on the wire: dispatch intercepts it and settles the
  /// lint ledger instead of sending.
  static constexpr std::uint16_t kSilentDiscard = 0xFFFF;
  [[nodiscard]] static msg::Message silent_discard() {
    msg::Message m;
    m.set_code(kSilentDiscard);
    return m;
  }

  /// I/O-protocol instance operations (Query/Read/Write/ReleaseInstance).
  /// The default drives the InstanceObject in `instances()`.  Overriders
  /// may return nullopt to DEFER: the handler keeps the envelope and
  /// replies later (how the pipe server blocks readers on empty pipes).
  virtual sim::Co<std::optional<msg::Message>> handle_instance_op(
      ipc::Process& self, ipc::Envelope& env);

  /// Open instance table (subclass open_object results land here too).
  [[nodiscard]] io::InstanceTable& instances() noexcept { return instances_; }

  /// Race-detector annotation (V-check layer 1): every hook body that
  /// mutates the name space under (ctx, leaf) calls this first.  Verifies
  /// the calling process holds the matching (ctx, leaf) mutation gate and
  /// throws chk::RaceError naming both processes when it does not.
  /// Compiles to nothing with V_CHECKS=OFF.
  void note_name_write(ipc::Process& self, ContextId ctx,
                       std::string_view leaf) {
#if V_CHECKS_ENABLED
    note_name_write_impl(self, ctx, leaf);
#else
    (void)self;
    (void)ctx;
    (void)leaf;
#endif
  }

  /// Advance `ctx`'s generation (next value of the domain-wide sequence).
  /// The base calls this after every successful gated mutation; subclasses
  /// whose mutations touch MORE contexts than the dispatched one (a
  /// directory rename relocates every descendant context) call it for each
  /// extra context affected, while still holding the mutation gate.
  void bump_generation(ipc::Process& self, ContextId ctx);

  /// V-trace metric helpers: count/measure under this server's registry
  /// scope (its process name).  Declared unconditionally so subclasses call
  /// them unguarded; the bodies compile to nothing with V_TRACE=OFF.
  void metric_inc(ipc::Process& self, std::string_view name,
                  std::uint64_t n = 1);
  void metric_gauge(ipc::Process& self, std::string_view name,
                    std::int64_t value);
  void metric_hist(ipc::Process& self, std::string_view name, double value);

  /// Reply to a CSname request, honouring recovery-probe silence: an error
  /// reply to a request carrying kFlagRecoveryProbe is DROPPED (the probing
  /// client multicast to a group and only a member that can serve it may
  /// answer; its timeout covers the nobody-can case).  Success replies and
  /// replies to ordinary requests pass through unchanged.  Handlers that
  /// reply out of line use this instead of Process::reply.
  void reply_csname(ipc::Process& self, const ipc::Envelope& env,
                    const msg::Message& reply);

 private:
  /// One worker process: pull envelopes from the team queue, dispatch.
  sim::Co<void> worker_loop(ipc::Process self);

  // --- mutating-op serialization guard ---------------------------------------
  // The serial loop implicitly ordered ALL operations; a worker pool keeps
  // only the ordering that matters: operations that MUTATE the name space
  // under one (context, leaf) run mutually excluded and FIFO (grant order =
  // arrival order at the gate, which the deterministic event loop fixes per
  // seed).  Read-only operations never touch a gate and run fully parallel.

  using GateKey = std::pair<ContextId, std::string>;
  struct GateLock;
  struct Gate {
    bool held = false;
    sim::SimTime held_since = 0;    ///< acquisition time of current holder
    std::deque<GateLock*> waiters;  ///< FIFO grant order
  };

  /// Awaitable + RAII ownership of one (ctx, leaf) gate.  `co_await lock`
  /// acquires (immediately when free); destruction releases and grants the
  /// next waiter.  Kill-safe: a waiter resumed after its fiber was killed
  /// throws FiberKilled; a waiter destroyed while still queued (fiber
  /// unwound without resume) unlinks itself.  Every acquisition (including
  /// FIFO handoff) and the final release are mirrored into the domain's
  /// race-detector ledger, keyed on (&server, ctx, leaf).
  struct GateLock {
    GateLock(CsnhServer& server, ipc::Domain& domain,
             sim::FiberState* fiber, GateKey key,
             ipc::ProcessId pid) noexcept
        : server_(server), domain_(domain), fiber_(fiber),
          key_(std::move(key)), pid_(pid) {}
    GateLock(const GateLock&) = delete;
    GateLock& operator=(const GateLock&) = delete;
    ~GateLock();

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const;

    /// Record this lock's process as the gate holder in the ledger.
    void note_acquired() const;

    /// Stable hash of the (ctx, leaf) key — the flight recorder's gate
    /// identity (FNV-1a, so dumps are identical across hosts/builds).
    [[nodiscard]] std::uint64_t key_hash() const noexcept;

    CsnhServer& server_;
    ipc::Domain& domain_;
    sim::FiberState* fiber_;  ///< raw on purpose — see awaitables.hpp
    GateKey key_;
    ipc::ProcessId pid_;
    std::coroutine_handle<> handle_ = nullptr;
    bool acquired_ = false;  ///< we own the gate (must release)
    bool queued_ = false;    ///< we sit in the waiters deque
  };

  /// Does `code` mutate the name space under its (ctx, leaf)?  CreateInstance
  /// counts only with kOpenCreate (plain opens are reads); unknown custom
  /// CSname codes count conservatively (the base cannot know better).
  static bool mutates_name(std::uint16_t code, std::uint16_t mode) noexcept;

  sim::Co<void> dispatch(ipc::Process& self, ipc::Envelope env);
  sim::Co<void> handle_csname(ipc::Process& self, ipc::Envelope& env);
  /// Apply one context-directory record write: acquire the (ctx, leaf)
  /// mutation gate, then invoke modify().  Directory writes arrive on the
  /// instance-op path, which holds no gate of its own — without this a
  /// directory-file write would mutate an entry a concurrent team worker
  /// holds the gate for.
  sim::Co<ReplyCode> gated_modify(ipc::Process& self, ContextId ctx,
                                  ObjectDescriptor desc);
  /// Pop the front work-queue envelope (called with the queue non-empty;
  /// no suspension between the caller's emptiness check and this pop).
  ipc::Envelope take_work(ipc::Process& self);
  /// Out-of-line body of note_name_write (built only with V_CHECKS=ON).
  void note_name_write_impl(ipc::Process& self, ContextId ctx,
                            std::string_view leaf);
  sim::Co<msg::Message> do_open(ipc::Process& self, ipc::Envelope& env,
                                ContextId ctx, std::string_view leaf,
                                std::uint16_t mode);
  sim::Co<msg::Message> do_query(ipc::Process& self, ipc::Envelope& env,
                                 ContextId ctx, std::string_view leaf);
  sim::Co<msg::Message> do_modify(ipc::Process& self, ipc::Envelope& env,
                                  ContextId ctx, std::string_view leaf,
                                  std::size_t payload_offset);
  sim::Co<msg::Message> do_rename(ipc::Process& self, ipc::Envelope& env,
                                  ContextId ctx, std::string_view leaf,
                                  std::size_t payload_offset);
  sim::Co<msg::Message> do_inverse_name(ipc::Process& self,
                                        ipc::Envelope& env,
                                        Result<std::string> name);

  /// Ops that DEFINE the final component rather than resolving it (create,
  /// add-name, remove...): the mapping walk must stop before consuming the
  /// last component, or e.g. redefining an existing prefix would forward
  /// the request to the old target instead of updating the table.
  static bool defines_leaf(std::uint16_t code) noexcept;

  io::InstanceTable instances_;
  /// Race-detector cell for instances_: table accesses register here so an
  /// access held across a suspension point is caught (handlers that need
  /// the object across co_awaits hold a shared_ptr instead, by design).
  chk::CellState instances_cell_{"server.instances"};
  ipc::ProcessId pid_;

  // --- context generations ---------------------------------------------------
  /// Per-context generation overrides; contexts never mutated in this
  /// incarnation sit at gen_floor_.  Cleared on (re)start: a fresh floor
  /// from the domain sequence makes every previously-cached generation
  /// mismatch, which is what defeats the paper-§2.2 impostor aliasing.
  std::map<ContextId, std::uint32_t> generations_;
  std::uint32_t gen_floor_ = 0;

  // --- team state ------------------------------------------------------------
  TeamConfig team_;
  /// Accepted envelopes awaiting a worker.  SharedCell: receptionist and
  /// workers borrow it momentarily; holding a borrow across a suspension
  /// point is a race the detector reports.
  chk::SharedCell<std::deque<ipc::Envelope>> work_queue_{"team.work_queue"};
  sim::WaitQueue work_ready_;             ///< idle workers park here
  std::uint64_t sheds_ = 0;
  std::map<GateKey, Gate> gates_;
  std::string metrics_scope_;  ///< registry scope = process name (set in run)
  ipc::GroupId service_group_ = 0;  ///< joined on (re)start when nonzero

#if V_TRACE_ENABLED
  // --- pre-resolved metric handles (data-path fast path, DESIGN.md §4l) ------
  // The per-packet counters used to pay a string concat plus two
  // string-keyed map probes per request (metrics.cpp entry()).  Registry
  // references are stable for its lifetime (metrics.hpp), so the hot sites
  // cache the resolved handle and per-packet updates become one pointer
  // bump.  Resolution stays LAZY — an entry is created at the same
  // first-use moment as the string-keyed path it replaces, so registry
  // contents and creation order are unchanged.  run() clears the cache:
  // handles are per-incarnation (the scope name or even the domain may
  // differ from the previous run of this server object).
  obs::Counter& cached_counter(ipc::Process& self, obs::Counter*& slot,
                               std::string_view name) {
    if (slot == nullptr) {
      slot = &self.domain().metrics().counter(metrics_scope_, name);
    }
    return *slot;
  }
  obs::Gauge& cached_gauge(ipc::Process& self, obs::Gauge*& slot,
                           std::string_view name) {
    if (slot == nullptr) {
      slot = &self.domain().metrics().gauge(metrics_scope_, name);
    }
    return *slot;
  }
  obs::Histogram& cached_hist(ipc::Process& self, obs::Histogram*& slot,
                              std::string_view name) {
    if (slot == nullptr) {
      slot = &self.domain().metrics().histogram(metrics_scope_, name);
    }
    return *slot;
  }
  /// "req.<opcode label>" counter for `code`, resolved once per code.
  obs::Counter& req_counter(ipc::Process& self, std::uint16_t code);

  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_forwarded_ = nullptr;
  obs::Counter* m_sheds_ = nullptr;
  obs::Counter* m_stale_context_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Histogram* m_hops_ = nullptr;
  FlatMap<std::uint16_t, obs::Counter*> req_counters_;
#endif
};

}  // namespace v::naming
