// Wire layouts for the standard name-handling operations (paper section 5.7)
// and their replies.  Variant fields start at msg::cs::kVariantStart (12).
//
// Segment layout convention for CSname requests:  the sender's read segment
// begins with the name bytes (cs::name_length of them); any operation
// payload (e.g. a descriptor for kModifyName, the new name for kRenameName)
// follows immediately after.  Replies that return bulk data (descriptors,
// names) MoveTo it into the sender's write segment.
#pragma once

#include <cstdint>

#include "msg/csname.hpp"
#include "msg/message.hpp"
#include "naming/types.hpp"

namespace v::naming::wire {

// --- kMapContextName reply ---------------------------------------------------
// The standard operation mapping a CSname that names a context into a
// (server-pid, context-id) pair, returned in the reply message.
inline constexpr std::size_t kOffMapServerPid = 4;   // u32
inline constexpr std::size_t kOffMapContextId = 8;   // u32

inline void set_map_reply(msg::Message& m, ContextPair pair) {
  m.set_u32(kOffMapServerPid, pair.server.raw);
  m.set_u32(kOffMapContextId, pair.context);
}
[[nodiscard]] inline ContextPair get_map_reply(const msg::Message& m) {
  return ContextPair{ipc::ProcessId{m.u32(kOffMapServerPid)},
                     m.u32(kOffMapContextId)};
}

// --- kQueryName reply --------------------------------------------------------
// Descriptor record is MoveTo'd into the client's write segment; the reply
// echoes the record's type tag so cheap type checks need no decode.
inline constexpr std::size_t kOffQueryType = 2;  // u16 descriptor tag

// --- kAddContextName request -------------------------------------------------
// Optional operation (implemented by context prefix servers): define the
// name in the segment as naming the given context.  kLogical entries bind
// to a service id, resolved with GetPid at each use (paper section 6).
inline constexpr std::size_t kOffAddServerPid = 12;  // u32
inline constexpr std::size_t kOffAddContextId = 16;  // u32
inline constexpr std::size_t kOffAddFlags = 20;      // u16 (entry kind bits)
inline constexpr std::size_t kOffAddService = 22;    // u16 ServiceId
inline constexpr std::uint16_t kAddFlagLogical = 1;
/// Group entries (section 7): the kOffAddServerPid slot carries a GroupId
/// instead of a pid; the prefix multicasts requests to the group.
inline constexpr std::uint16_t kAddFlagGroup = 2;

// --- kLinkContext request ----------------------------------------------------
// Bind name -> (server, context) inside a server's name space: the
// cross-server pointer of Figure 4 (the "curved arrow").
inline constexpr std::size_t kOffLinkServerPid = 12;  // u32
inline constexpr std::size_t kOffLinkContextId = 16;  // u32

// --- kRenameName request -------------------------------------------------------
// Read segment carries old name (name_length bytes) then the new name.
inline constexpr std::size_t kOffRenameNewLength = 12;  // u16

// --- kGetContextName request (inverse mapping; NOT a CSname request) ---------
inline constexpr std::size_t kOffInvContextId = 4;   // u32 context to name
// --- kGetFileName request ----------------------------------------------------
inline constexpr std::size_t kOffInvInstanceId = 4;  // u16 instance to name
// Shared reply: name length; bytes MoveTo'd into client's write segment.
inline constexpr std::size_t kOffInvNameLength = 2;  // u16

// --- kCreateInstance (open) mode bits in cs::mode (one byte) -------------------
enum OpenMode : std::uint16_t {
  kOpenRead = 1 << 0,
  kOpenWrite = 1 << 1,
  kOpenCreate = 1 << 2,    ///< create the leaf if missing
  kOpenAppend = 1 << 3,
  kOpenDirectory = 1 << 4,  ///< open the context directory itself
  kOpenPattern = 1 << 5,    ///< the leaf is a glob; the returned context
                            ///< directory includes only matching objects
                            ///< (the section 5.6 pattern extension)
};

}  // namespace v::naming::wire
