#include "naming/parse.hpp"

namespace v::naming {

std::optional<std::string_view> parse_prefix(
    std::string_view name, std::size_t& rest_index) noexcept {
  if (!has_prefix_syntax(name)) return std::nullopt;
  const auto close = name.find(kPrefixClose, 1);
  if (close == std::string_view::npos) return std::nullopt;
  rest_index = close + 1;
  return name.substr(1, close - 1);
}

std::string_view next_component(std::string_view name, std::size_t index,
                                std::size_t& next_index) noexcept {
  while (index < name.size() && name[index] == '/') ++index;
  if (index >= name.size()) {
    next_index = name.size();
    return {};
  }
  auto end = name.find('/', index);
  if (end == std::string_view::npos) end = name.size();
  next_index = end;
  return name.substr(index, end - index);
}

std::size_t count_components(std::string_view name,
                             std::size_t index) noexcept {
  std::size_t count = 0;
  while (true) {
    std::size_t next = 0;
    const auto comp = next_component(name, index, next);
    if (comp.empty()) break;
    ++count;
    index = next;
  }
  return count;
}

bool is_simple_leaf(std::string_view remainder) noexcept {
  return count_components(remainder) <= 1;
}

}  // namespace v::naming
