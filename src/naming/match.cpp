#include "naming/match.hpp"

namespace v::naming {

bool glob_match(std::string_view pattern, std::string_view name) noexcept {
  // Iterative matcher with single-star backtracking: O(|pattern|*|name|)
  // worst case, linear in practice.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string_view::npos;  // position of last '*'
  std::size_t mark = 0;  // name position the star is currently matched to
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;  // widen the star by one more character
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace v::naming
