#include "naming/descriptor.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/pack.hpp"

namespace v::naming {

std::string_view to_string(DescriptorType type) noexcept {
  switch (type) {
    case DescriptorType::kNone: return "none";
    case DescriptorType::kFile: return "file";
    case DescriptorType::kContext: return "context";
    case DescriptorType::kProcess: return "process";
    case DescriptorType::kTerminal: return "terminal";
    case DescriptorType::kConnection: return "connection";
    case DescriptorType::kPrefix: return "prefix";
    case DescriptorType::kMailbox: return "mailbox";
    case DescriptorType::kPrintJob: return "print-job";
    case DescriptorType::kDevice: return "device";
  }
  return "unknown";
}

namespace {
// Wire layout (little-endian):
//   0   u16  type tag
//   2   u16  flags
//   4   u32  size
//   8   u32  object_id
//   12  u32  server_pid
//   16  u32  context_id
//   20  u32  mtime
//   24  u8   owner length, 25..56 owner bytes
//   57  u8   name length, 58..121 name bytes
//   122..127 reserved (zero)
constexpr std::size_t kOffType = 0;
constexpr std::size_t kOffFlags = 2;
constexpr std::size_t kOffSize = 4;
constexpr std::size_t kOffObjectId = 8;
constexpr std::size_t kOffServerPid = 12;
constexpr std::size_t kOffContextId = 16;
constexpr std::size_t kOffMtime = 20;
constexpr std::size_t kOffOwnerLen = 24;
constexpr std::size_t kOffOwner = 25;
constexpr std::size_t kOffNameLen = 57;
constexpr std::size_t kOffName = 58;

void put_string(std::span<std::byte> out, std::size_t len_off,
                std::size_t str_off, const std::string& s,
                std::size_t max_len) {
  const auto n = std::min(s.size(), max_len);
  out[len_off] = static_cast<std::byte>(n);
  if (n > 0) std::memcpy(out.data() + str_off, s.data(), n);
}

std::string get_string(std::span<const std::byte> in, std::size_t len_off,
                       std::size_t str_off, std::size_t max_len) {
  const auto n = std::min<std::size_t>(
      static_cast<std::size_t>(in[len_off]), max_len);
  return std::string(reinterpret_cast<const char*>(in.data() + str_off), n);
}

}  // namespace

void ObjectDescriptor::encode(std::span<std::byte> out) const {
  V_CHECK(out.size() >= kWireSize);
  std::memset(out.data(), 0, kWireSize);
  put_u16(out, kOffType, static_cast<std::uint16_t>(type));
  put_u16(out, kOffFlags, flags);
  put_u32(out, kOffSize, size);
  put_u32(out, kOffObjectId, object_id);
  put_u32(out, kOffServerPid, server_pid);
  put_u32(out, kOffContextId, context_id);
  put_u32(out, kOffMtime, mtime);
  put_string(out, kOffOwnerLen, kOffOwner, owner, kMaxOwner);
  put_string(out, kOffNameLen, kOffName, name, kMaxName);
}

Result<ObjectDescriptor> ObjectDescriptor::decode(
    std::span<const std::byte> in) {
  if (in.size() < kWireSize) return ReplyCode::kBadArgs;
  const auto tag = get_u16(in, kOffType);
  if (tag > static_cast<std::uint16_t>(DescriptorType::kDevice)) {
    return ReplyCode::kBadArgs;
  }
  ObjectDescriptor d;
  d.type = static_cast<DescriptorType>(tag);
  d.flags = get_u16(in, kOffFlags);
  d.size = get_u32(in, kOffSize);
  d.object_id = get_u32(in, kOffObjectId);
  d.server_pid = get_u32(in, kOffServerPid);
  d.context_id = get_u32(in, kOffContextId);
  d.mtime = get_u32(in, kOffMtime);
  d.owner = get_string(in, kOffOwnerLen, kOffOwner, kMaxOwner);
  d.name = get_string(in, kOffNameLen, kOffName, kMaxName);
  return d;
}

}  // namespace v::naming
