#include "naming/csnh_server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "naming/match.hpp"
#include "naming/parse.hpp"
#include "common/annotate.hpp"

namespace v::naming {

// The protocol lint cannot include naming/ (layering), so it mirrors the
// name-length bound; keep the two constants locked together.
static_assert(chk::kMaxCheckedNameLength == kMaxNameLength,
              "chk::kMaxCheckedNameLength must mirror naming::kMaxNameLength");

namespace {

using msg::Message;
using msg::RequestCode;

/// A context directory: "logically a file consisting of a sequence of
/// description records, one for each object in the associated context"
/// (section 5.6).  Reading returns the fabricated snapshot; writing a
/// record has the same semantics as invoking the modification operation on
/// the corresponding object.
class ContextDirectoryInstance : public io::BufferInstance {
 public:
  ContextDirectoryInstance(ContextId ctx,
                           std::vector<std::byte> snapshot,
                           std::function<sim::Co<ReplyCode>(
                               ipc::Process&, ContextId,
                               const ObjectDescriptor&)> apply)
      : BufferInstance(std::move(snapshot),
                       io::kInstanceReadable | io::kInstanceWriteable),
        ctx_(ctx),
        apply_(std::move(apply)) {}

  V_BORROWS_SPAN
  sim::Co<Result<std::size_t>> write_block(
      ipc::Process& self, std::uint32_t block,
      std::span<const std::byte> data) override {
    auto written = co_await BufferInstance::write_block(self, block, data);
    if (!written.ok()) co_return written;
    // Apply every complete descriptor record covered by this write.
    const std::size_t begin =
        static_cast<std::size_t>(block) * info().block_bytes;
    const std::size_t end = begin + written.value();
    const std::size_t first_rec = begin / ObjectDescriptor::kWireSize;
    for (std::size_t rec = first_rec;
         (rec + 1) * ObjectDescriptor::kWireSize <= data_.size() &&
         rec * ObjectDescriptor::kWireSize < end;
         ++rec) {
      auto decoded = ObjectDescriptor::decode(std::span<const std::byte>(
          data_.data() + rec * ObjectDescriptor::kWireSize,
          ObjectDescriptor::kWireSize));
      if (!decoded.ok()) continue;  // garbage record: server ignores it
      (void)co_await apply_(self, ctx_, decoded.value());
    }
    co_return written;
  }

 private:
  ContextId ctx_;
  std::function<sim::Co<ReplyCode>(ipc::Process&, ContextId,
                                   const ObjectDescriptor&)> apply_;
};

#if V_TRACE_ENABLED
/// RAII hop span (V-trace): opened when a server dispatches a traced
/// request, with a queue-wait child covering mailbox-arrival → dispatch
/// (ended immediately) and a service child ended when the dispatch frame
/// unwinds — i.e. after the reply or forward.  Construction re-parents the
/// envelope, so a forwarded request hangs its next hop under this one.
class HopTrace {
 public:
  HopTrace(ipc::Domain& domain, obs::TraceSink& sink, ipc::Envelope& env,
           ipc::ProcessId server_pid, ipc::ProcessId worker_pid)
      : domain_(domain), sink_(sink) {
    const std::uint64_t trace = env.trace.trace_id;
    const sim::SimTime now = domain_.now();
    const sim::SimTime arrived =
        env.trace.enqueued_at >= 0 ? env.trace.enqueued_at : now;
    const std::string server = domain_.process_name(server_pid);
    hop_ = sink_.begin_span(trace, env.trace.parent_span, "hop " + server,
                            "hop", worker_pid.raw, arrived);
    sink_.set_process_label(server_pid.raw, server);
    sink_.annotate(hop_, "op",
                   std::string(obs::opcode_label(env.request.code())));
    if (msg::is_csname_request(env.request.code())) {
      sink_.annotate(hop_, "context_id",
                     std::to_string(msg::cs::context_id(env.request)));
      sink_.annotate(hop_, "name_index",
                     std::to_string(msg::cs::name_index(env.request)));
      sink_.annotate(hop_, "forward_count",
                     std::to_string(msg::cs::forward_count(env.request)));
    }
    if (worker_pid != server_pid) {
      sink_.annotate(hop_, "worker", domain_.process_name(worker_pid));
      sink_.set_process_label(worker_pid.raw,
                              domain_.process_name(worker_pid));
    }
    const std::uint32_t queue = sink_.begin_span(
        trace, hop_, "queue-wait", "queue", worker_pid.raw, arrived);
    sink_.end_span(queue, now);
    service_ = sink_.begin_span(trace, hop_, "service", "service",
                                worker_pid.raw, now);
    env.trace.parent_span = hop_;
  }
  HopTrace(const HopTrace&) = delete;
  HopTrace& operator=(const HopTrace&) = delete;
  ~HopTrace() {
    const sim::SimTime now = domain_.now();
    sink_.end_span(service_, now);
    sink_.end_span(hop_, now);
  }

 private:
  ipc::Domain& domain_;
  obs::TraceSink& sink_;
  std::uint32_t hop_ = 0;
  std::uint32_t service_ = 0;
};
#endif  // V_TRACE_ENABLED

}  // namespace

// ---------------------------------------------------------------------------
// Run loop and dispatch (receptionist + worker team)
// ---------------------------------------------------------------------------

sim::Co<void> CsnhServer::run(ipc::Process self) {
  pid_ = self.pid();
  metrics_scope_ = self.domain().process_name(pid_);
#if V_TRACE_ENABLED
  // Metric handles are per-incarnation: the scope name (or the domain the
  // server object runs in) may differ from the previous run, so every
  // cached registry pointer is dropped and re-resolved on first use.
  m_requests_ = nullptr;
  m_forwarded_ = nullptr;
  m_sheds_ = nullptr;
  m_stale_context_ = nullptr;
  m_queue_depth_ = nullptr;
  m_hops_ = nullptr;
  req_counters_.clear();
#endif
  // Re-spawn safety (crash + restart reuses the server object): drop any
  // backlog and gate state the previous incarnation left behind — in the
  // race-detector ledger too (the previous incarnation's holders are
  // meaningless).
  work_queue_.raw().clear();
  gates_.clear();
  // Fresh incarnation, fresh generation floor: every generation a client
  // cached against a previous incarnation (or against whatever server held
  // this pid before) is now strictly below the floor and must mismatch.
  generations_.clear();
  gen_floor_ = self.domain().next_name_generation();
  if constexpr (chk::enabled()) {
    self.domain().checks().forget_server(this);
    // gen_floor_ doubles as the incarnation floor: the lint asserts each
    // re-registration under this label starts strictly above the last.
    self.domain().lint().register_server(
        pid_.raw, self.domain().process_name(pid_),
        [this](std::uint32_t ctx) {
          return context_valid(translate_context(ctx));
        },
        gen_floor_);
  }
  // (Re)join the service group: a restarted incarnation becomes reachable
  // by recovery probes the moment it is back, under its brand-new pid.
  if (service_group_ != 0) self.join_group(service_group_);
  if (team_.workers == 0) team_.workers = 1;
  if (team_.queue_cap == 0) team_.queue_cap = 1;
  co_await on_start(self);
  if (team_.workers == 1) {
    // Classic serial server: one process receives and dispatches.
    for (;;) {
      auto env = co_await self.receive();
      co_await dispatch(self, std::move(env));
    }
  }
  // Team mode.  Workers live on the same host (a V team shares a machine
  // and dies with it) and pull from the shared queue; the receptionist
  // fiber below only receives, sheds, and enqueues — it never co_awaits a
  // dispatch, so a slow request occupies one worker, not the whole server.
  auto& host = *self.domain().hosts()[self.host_id() - 1];
  host.spawn_team(self.domain().process_name(pid_) + "-worker", team_.workers,
                  [this](ipc::Process worker, std::size_t /*index*/) {
                    return worker_loop(worker);
                  });
  for (;;) {
    auto env = co_await self.receive();
    const bool express = express_lane(env.request);
    {
      auto queue = work_queue_.write(self);
      if (!express && queue->size() >= team_.queue_cap) {
        ++sheds_;
#if V_TRACE_ENABLED
        cached_counter(self, m_sheds_, "sheds").inc();
#endif
#if V_TRACE_ENABLED
        // The traced request dies here: an instant mark keeps the shed
        // visible in the hop tree (the root span closes with kBusy).
        if (auto& tr = self.domain().tracer();
            tr.active() && env.trace.trace_id != 0) {
          const auto t = self.domain().now();
          const std::uint32_t mark =
              tr.begin_span(env.trace.trace_id, env.trace.parent_span,
                            "shed " + metrics_scope_, "mark", pid_.raw, t);
          tr.end_span(mark, t);
        }
#endif
        reply_csname(self, env, msg::make_reply(ReplyCode::kBusy));
        continue;
      }
      if (express) {
        queue->push_front(std::move(env));
      } else {
        queue->push_back(std::move(env));
      }
#if V_TRACE_ENABLED
      cached_gauge(self, m_queue_depth_, "queue_depth")
          .set(static_cast<std::int64_t>(queue->size()));
#endif
    }
    work_ready_.notify_one(self.domain().loop());
  }
}

sim::Co<void> CsnhServer::worker_loop(ipc::Process self) {
  if constexpr (chk::enabled()) {
    // server_pid ties the worker's replies to the receptionist's
    // outstanding-request ledger (requests arrive at pid_, workers answer).
    self.domain().lint().register_worker(
        self.pid().raw, self.domain().process_name(self.pid()), pid_.raw);
  }
  for (;;) {
    while (work_queue_.read(self)->empty()) {
      co_await self.wait_on(work_ready_);
    }
    ipc::Envelope env = take_work(self);
    co_await dispatch(self, std::move(env));
  }
}

V_NO_SUSPEND
ipc::Envelope CsnhServer::take_work(ipc::Process& self) {
  auto queue = work_queue_.write(self);
  ipc::Envelope env = std::move(queue->front());
  queue->pop_front();
  return env;
}

// ---------------------------------------------------------------------------
// Mutating-op serialization gates
// ---------------------------------------------------------------------------

bool CsnhServer::mutates_name(std::uint16_t code,
                              std::uint16_t mode) noexcept {
  if (defines_leaf(code)) return true;
  switch (code) {
    case RequestCode::kModifyName:
      return true;
    case RequestCode::kCreateInstance:
      return (mode & wire::kOpenCreate) != 0;  // open may create the leaf
    case RequestCode::kMapContextName:
    case RequestCode::kQueryName:
      return false;
    default:
      // Custom CSname codes: the base cannot prove they are read-only.
      return msg::is_csname_request(code);
  }
}

std::uint64_t CsnhServer::GateLock::key_hash() const noexcept {
  std::uint64_t h = 14695981039346656037ULL ^ key_.first;
  for (char c : key_.second) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

void CsnhServer::GateLock::note_acquired() const {
  domain_.checks().gate_acquired(
      &server_, key_.first, key_.second, pid_.raw,
      static_cast<std::uint64_t>(domain_.loop().now()));
#if V_TRACE_ENABLED
  Gate& gate = server_.gates_[key_];
  gate.held_since = domain_.loop().now();
  domain_.flight().record(pid_.logical_host(), obs::FlightKind::kGateAcquire,
                          gate.held_since, pid_.raw, 0, 0, key_hash());
#endif
}

bool CsnhServer::GateLock::await_ready() {
  Gate& gate = server_.gates_[key_];
  if (!gate.held) {
    gate.held = true;
    acquired_ = true;
    note_acquired();
    return true;  // uncontended: acquire without suspending
  }
  return false;
}

void CsnhServer::GateLock::await_suspend(std::coroutine_handle<> h) {
  handle_ = h;
  queued_ = true;
  server_.gates_[key_].waiters.push_back(this);
}

void CsnhServer::GateLock::await_resume() const {
  if (fiber_ && fiber_->killed) throw sim::FiberKilled{};
}

CsnhServer::GateLock::~GateLock() {
  auto it = server_.gates_.find(key_);
  if (it == server_.gates_.end()) return;  // gates_ cleared by a re-run
  Gate& gate = it->second;
  if (!acquired_) {
    // Died while still waiting: unlink so the releaser never grants a
    // destroyed frame.
    std::erase(gate.waiters, this);
    if (!gate.held && gate.waiters.empty()) server_.gates_.erase(it);
    return;
  }
#if V_TRACE_ENABLED
  {
    const sim::SimTime rel_now = domain_.loop().now();
    const sim::SimDuration held = rel_now - gate.held_since;
    domain_.flight().record(pid_.logical_host(),
                            obs::FlightKind::kGateRelease, rel_now, pid_.raw,
                            0, 0, static_cast<std::uint64_t>(held));
    // Gate-hold watchdog: a mutation gate held past the domain threshold
    // is exactly the serialization stall the watchdog exists to surface.
    if (domain_.watchdog_threshold() > 0 &&
        held > domain_.watchdog_threshold()) {
      domain_.flight().record(pid_.logical_host(), obs::FlightKind::kWatchdog,
                              rel_now, pid_.raw, 0, 0,
                              static_cast<std::uint64_t>(held));
      domain_.flight().trigger(obs::kDumpWatchdog, rel_now);
    }
  }
#endif
  // Hand the gate to the next waiter (FIFO) or retire it.
  while (!gate.waiters.empty()) {
    GateLock* next = gate.waiters.front();
    gate.waiters.pop_front();
    next->queued_ = false;
    next->acquired_ = true;  // ownership transfers even if killed: its
                             // resume throws and ITS destructor re-releases
    next->note_acquired();   // ledger: holder changes hands, no gap
    domain_.loop().schedule_after(0, [h = next->handle_, f = next->fiber_] {
      sim::FiberRunScope scope(f);
      h.resume();
    });
    return;
  }
  domain_.checks().gate_released(&server_, key_.first, key_.second);
  server_.gates_.erase(it);
}

sim::Co<void> CsnhServer::dispatch(ipc::Process& self, ipc::Envelope env) {
  const std::uint16_t code = env.request.code();
#if V_TRACE_ENABLED
  cached_counter(self, m_requests_, "requests").inc();
  req_counter(self, code).inc();
  std::optional<HopTrace> hop;
  if (auto& tr = self.domain().tracer();
      tr.active() && env.trace.trace_id != 0) {
    hop.emplace(self.domain(), tr, env, pid_, self.pid());
  }
#endif
  if (msg::is_csname_request(code)) {
    co_await handle_csname(self, env);
    co_return;
  }
  Message reply;
  switch (code) {
    case RequestCode::kQueryInstance:
    case RequestCode::kReadInstance:
    case RequestCode::kWriteInstance:
    case RequestCode::kReleaseInstance: {
      auto maybe = co_await handle_instance_op(self, env);
      if (!maybe.has_value()) co_return;  // deferred: handler replies later
      reply = *maybe;
      break;
    }
    case RequestCode::kGetContextName: {
      const ContextId ctx =
          translate_context(env.request.u32(wire::kOffInvContextId));
      reply = co_await do_inverse_name(self, env, context_to_name(ctx));
      break;
    }
    case RequestCode::kGetFileName: {
      const auto instance = static_cast<io::InstanceId>(
          env.request.u16(wire::kOffInvInstanceId));
      reply = co_await do_inverse_name(self, env, instance_to_name(instance));
      break;
    }
    default:
      reply = co_await handle_custom(self, env);
      break;
  }
  if (reply.code() == kSilentDiscard) {
    // Group-member silence for misc ops: another member of the service
    // group is the designated responder.  Settle the lint ledger so the
    // unanswered request reads as deliberate, not as a leak.
    metric_inc(self, "custom_mute");
    self.domain().lint().note_unanswered(pid_.raw, env.sender.raw);
    co_return;
  }
  self.reply(reply, env.sender);
}

void CsnhServer::reply_csname(ipc::Process& self, const ipc::Envelope& env,
                              const msg::Message& reply) {
  if (reply.code() != static_cast<std::uint16_t>(ReplyCode::kOk) &&
      msg::is_csname_request(env.request.code()) &&
      msg::cs::is_recovery_probe(env.request)) {
    // Probe silence: some OTHER group member may be able to serve this
    // probe; an error reply from us would win the first-reply race and
    // mask it.  Settle the lint ledger so the dropped reply is deliberate,
    // not a leak.
    metric_inc(self, "probe_drops");
    self.domain().lint().note_unanswered(pid_.raw, env.sender.raw);
    return;
  }
  self.reply(reply, env.sender);
}

bool CsnhServer::defines_leaf(std::uint16_t code) noexcept {
  switch (code) {
    case RequestCode::kAddContextName:
    case RequestCode::kDeleteContextName:
    case RequestCode::kCreateName:
    case RequestCode::kMakeContext:
    case RequestCode::kLinkContext:
    case RequestCode::kRemoveName:
    case RequestCode::kRenameName:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// The name mapping procedure (paper section 5.4)
// ---------------------------------------------------------------------------

V_BORROWS_SPAN
sim::Co<void> CsnhServer::handle_csname(ipc::Process& self,
                                        ipc::Envelope& env) {
  // 1. Fetch the name bytes from the (possibly distant) original sender's
  //    segment.  This cost is why remote Opens are more expensive than a
  //    bare remote transaction (section 6).
  const std::uint16_t name_len = msg::cs::name_length(env.request);
  if (name_len > kMaxNameLength) {
    reply_csname(self, env, msg::make_reply(ReplyCode::kBadArgs));
    co_return;
  }
  std::string_view name;
  if (name_len > 0) {
    // Fetch-once: the first server on the chain pays the host-side copy
    // (or borrows the sender's segment outright when it is local); every
    // later hop finds the bytes already attached to the envelope.  The
    // simulated transfer delay is charged at every hop either way.
    auto fetched = co_await self.fetch_name(env, name_len);
    if (!fetched.ok()) {
      if (fetched.code() == ReplyCode::kNoReply) {
        // Sender vanished; nobody to answer.  Settle the lint ledger: this
        // silence is deliberate, not a lost reply.
        self.domain().lint().note_unanswered(pid_.raw, env.sender.raw);
        co_return;
      }
      // e.g. the claimed name length exceeds the sender's segment.
      reply_csname(self, env, msg::make_reply(fetched.code()));
      co_return;
    }
    name = fetched.value();
  }
  co_await self.compute(parse_cost(self, name));

  // 2. Initialize CurrentContext from the request (the server-pid half of
  //    the context is implicit: the message arrived here).
  std::size_t index = msg::cs::name_index(env.request);
  if (index > name.size()) {
    reply_csname(self, env, msg::make_reply(ReplyCode::kBadArgs));
    co_return;
  }
  ContextId ctx = translate_context(msg::cs::context_id(env.request));
  if (!context_valid(ctx)) {
    reply_csname(self, env, msg::make_reply(ReplyCode::kInvalidContext));
    co_return;
  }
  // Validated caching (PROTOCOL.md 11): a client that learned this context
  // through a binding hint may quote the generation it expects.  If the
  // name space changed since (any gated mutation bumps the generation), we
  // answer kStaleContext INSTEAD of interpreting against a name space the
  // client no longer means — the §2.2 silent-wrong-answer, made loud.
  if (msg::cs::has_expected_generation(env.request) &&
      msg::cs::expected_generation(env.request) != generation(ctx)) {
#if V_TRACE_ENABLED
    cached_counter(self, m_stale_context_, "stale_context").inc();
#endif
    reply_csname(self, env, msg::make_reply(ReplyCode::kStaleContext));
    co_return;
  }
  const ContextId entry_ctx = ctx;  ///< context the sender addressed here

  // 3. Interpret components left to right, updating CurrentContext; when a
  //    component names a context on another server, rewrite the standard
  //    fields and forward the request there.
  const std::uint16_t code = env.request.code();
  const bool stop_before_last = defines_leaf(code);
  auto last_kind = LookupResult::Kind::kLocalContext;  // state of 'ctx'
  for (;;) {
    std::size_t next = 0;
    const std::string_view component = parse_component(name, index, next);
    if (component.empty()) break;  // whole name consumed: leaf is empty
    if (stop_before_last) {
      std::size_t after = 0;
      if (parse_component(name, next, after).empty()) break;  // last: define
    }
    co_await self.compute(self.params().per_component_parse);
    const LookupResult found = co_await lookup(self, ctx, component);
    last_kind = found.kind;
    if (found.kind == LookupResult::Kind::kLocalContext) {
      ctx = found.context;
      index = next;
      continue;
    }
    if (found.kind == LookupResult::Kind::kRemoteContext ||
        found.kind == LookupResult::Kind::kGroupContext) {
      // Cross-server pointer graphs may contain cycles (section 5.8 allows
      // arbitrary directed graphs); bound the traversal so interpretation
      // always terminates with a clean error instead of orbiting forever.
      const auto hops = msg::cs::forward_count(env.request);
      if (hops >= msg::cs::kMaxForwardHops) {
        reply_csname(self, env, msg::make_reply(ReplyCode::kForwardLoop));
        co_return;
      }
      msg::cs::set_forward_count(env.request,
                                 static_cast<std::uint8_t>(hops + 1));
      msg::cs::set_name_index(env.request, static_cast<std::uint16_t>(next));
      // An expected generation applies to the context the CLIENT addressed
      // (already validated above, on this server); it says nothing about
      // downstream contexts, so it must not travel with the forward.
      if (msg::cs::has_expected_generation(env.request)) {
        msg::cs::clear_expected_generation(env.request);
      }
      // First forward of this request: record where interpretation STARTED
      // (simulation extra, PROTOCOL.md 11).  The final server echoes this
      // origin binding in its reply hint, so the client can tie the
      // terminal binding to the entry it resolved through — and notice,
      // via the generation, when that entry's table has since changed.
      if (!env.origin.valid()) {
        env.origin = ipc::BindingHint{pid_.raw, entry_ctx,
                                      generation(entry_ctx), 0};
      }
#if V_TRACE_ENABLED
      cached_counter(self, m_forwarded_, "forwarded").inc();
#endif
      if (found.kind == LookupResult::Kind::kGroupContext) {
        // Section 7: the context is implemented by a group of servers; the
        // request is multicast and the first member to answer wins.
        msg::cs::set_context_id(env.request, found.context);
        // Recovery probe (V-fault): members that cannot serve it stay
        // silent, so an error from a wrong member cannot win the race.
        if (found.probe) msg::cs::set_recovery_probe(env.request);
        self.forward_to_group(env, found.group);
      } else {
        msg::cs::set_context_id(env.request, found.remote.context);
        self.forward(env, found.remote.server);
      }
      co_return;  // the next server picks up where we stopped
    }
    break;  // kMissing or kObject: interpretation stops here
  }

  // 4. What remains is the leaf (zero or one component); a deeper remainder
  //    means the path ran through a non-context.
  std::size_t next = 0;
  const std::string_view leaf = parse_component(name, index, next);
  std::size_t after = 0;
  if (!parse_component(name, next, after).empty()) {
    const auto why = last_kind == LookupResult::Kind::kObject
                         ? ReplyCode::kNotAContext
                         : ReplyCode::kNotFound;
    reply_csname(self, env, msg::make_reply(why));
    co_return;
  }

  // Interpretation terminated at this server: record how many Forward hops
  // the request took to get here (0 = answered by the first server).
#if V_TRACE_ENABLED
  cached_hist(self, m_hops_, "hops")
      .add(static_cast<double>(msg::cs::forward_count(env.request)));
#endif

  // 5. Dispatch the operation against (ctx, leaf).  Mutating operations
  //    first acquire the (ctx, leaf) gate so concurrent team workers apply
  //    them one at a time, in FIFO grant order; read-only operations skip
  //    the gate and run fully parallel.  Held until co_return (the lock is
  //    released by ~GateLock when this frame unwinds, after the reply).
  GateLock gate(*this, self.domain(), self.fiber_state(),
                GateKey{ctx, std::string(leaf)}, self.pid());
  if (mutates_name(code, msg::cs::mode(env.request))) {
    co_await gate;
  }
  Message reply;
  switch (code) {
    case RequestCode::kMapContextName: {
      if (!leaf.empty()) {
        reply = msg::make_reply(last_kind == LookupResult::Kind::kObject
                                    ? ReplyCode::kNotAContext
                                    : ReplyCode::kNotFound);
        break;
      }
      reply = msg::make_reply(ReplyCode::kOk);
      wire::set_map_reply(reply, ContextPair{pid_, ctx});
      break;
    }
    case RequestCode::kQueryName:
      reply = co_await do_query(self, env, ctx, leaf);
      break;
    case RequestCode::kModifyName:
      reply = co_await do_modify(self, env, ctx, leaf, name.size());
      break;
    case RequestCode::kRemoveName:
      reply = msg::make_reply(co_await remove(self, ctx, leaf));
      break;
    case RequestCode::kRenameName:
      reply = co_await do_rename(self, env, ctx, leaf, name.size());
      break;
    case RequestCode::kCreateName:
      reply = msg::make_reply(co_await create_object(
          self, ctx, leaf, msg::cs::mode(env.request)));
      break;
    case RequestCode::kMakeContext:
      reply = msg::make_reply(co_await make_context(self, ctx, leaf));
      break;
    case RequestCode::kLinkContext: {
      const ContextPair target{
          ipc::ProcessId{env.request.u32(wire::kOffLinkServerPid)},
          env.request.u32(wire::kOffLinkContextId)};
      reply = msg::make_reply(co_await link_context(self, ctx, leaf, target));
      break;
    }
    case RequestCode::kAddContextName: {
      const std::uint16_t flags = env.request.u16(wire::kOffAddFlags);
      ContextPair target{
          ipc::ProcessId{env.request.u32(wire::kOffAddServerPid)},
          env.request.u32(wire::kOffAddContextId)};
      const auto service =
          (flags & wire::kAddFlagLogical) != 0
              ? static_cast<ipc::ServiceId>(
                    env.request.u16(wire::kOffAddService))
              : ipc::ServiceId::kNone;
      ipc::GroupId group = 0;
      if ((flags & wire::kAddFlagGroup) != 0) {
        group = env.request.u32(wire::kOffAddServerPid);
        target.server = ipc::ProcessId::invalid();
      }
      reply = msg::make_reply(co_await add_context_name(
          self, ctx, leaf, target, service, group));
      break;
    }
    case RequestCode::kDeleteContextName:
      reply = msg::make_reply(co_await delete_context_name(self, ctx, leaf));
      break;
    case RequestCode::kCreateInstance:
      reply = co_await do_open(self, env, ctx, leaf,
                               msg::cs::mode(env.request));
      break;
    default:
      reply = co_await handle_custom_csname(self, env, ctx, leaf, name);
      break;
  }
  // A successful gated mutation changed the name space under ctx: advance
  // its generation (gate still held, so the bump is race-detector clean and
  // ordered with the mutation it records).
  if (reply.code() == static_cast<std::uint16_t>(ReplyCode::kOk) &&
      mutates_name(code, msg::cs::mode(env.request))) {
    bump_generation(self, ctx);
  }
  // Piggyback the binding hint on success: interpretation ended HERE, in
  // ctx, with the leaf starting at `index` — everything a client needs to
  // come straight back next time, stamped with the generation that lets us
  // refuse if the name space moves on (PROTOCOL.md 11; costs nothing).
  if (reply.code() == static_cast<std::uint16_t>(ReplyCode::kOk)) {
    const ipc::BindingHint hint{pid_.raw, ctx, generation(ctx),
                                static_cast<std::uint16_t>(index)};
    self.reply_with_hint(reply, env.sender, hint, env.origin);
  } else {
    reply_csname(self, env, reply);
  }
}

// ---------------------------------------------------------------------------
// Standard operation bodies
// ---------------------------------------------------------------------------

V_BORROWS_SPAN
sim::Co<msg::Message> CsnhServer::do_query(ipc::Process& self,
                                           ipc::Envelope& env, ContextId ctx,
                                           std::string_view leaf) {
  auto desc = co_await describe(self, ctx, leaf);
  if (!desc.ok()) co_return msg::make_reply(desc.code());
  co_await self.compute(self.params().descriptor_fabricate);
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  desc.value().encode(record);
  auto moved = co_await self.move_to(env, record);
  if (!moved.ok()) co_return msg::make_reply(moved.code());
  Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(wire::kOffQueryType,
                static_cast<std::uint16_t>(desc.value().type));
  co_return reply;
}

V_BORROWS_SPAN
sim::Co<msg::Message> CsnhServer::do_modify(ipc::Process& self,
                                            ipc::Envelope& env,
                                            ContextId ctx,
                                            std::string_view leaf,
                                            std::size_t payload_offset) {
  std::array<std::byte, ObjectDescriptor::kWireSize> record{};
  auto fetched = co_await self.move_from(env, record, payload_offset);
  if (!fetched.ok()) co_return msg::make_reply(fetched.code());
  auto desc = ObjectDescriptor::decode(record);
  if (!desc.ok()) co_return msg::make_reply(desc.code());
  // vlint: allow(gate-generation): handle_csname bumps the generation after a successful mutating dispatch.
  co_return msg::make_reply(co_await modify(self, ctx, leaf, desc.value()));
}

V_BORROWS_SPAN
sim::Co<msg::Message> CsnhServer::do_rename(ipc::Process& self,
                                            ipc::Envelope& env,
                                            ContextId ctx,
                                            std::string_view leaf,
                                            std::size_t payload_offset) {
  const std::uint16_t new_len = env.request.u16(wire::kOffRenameNewLength);
  if (new_len == 0 || new_len > kMaxNameLength) {
    co_return msg::make_reply(ReplyCode::kBadArgs);
  }
  std::string new_name(new_len, '\0');
  auto fetched = co_await self.move_from(
      env, std::as_writable_bytes(std::span(new_name)),
      payload_offset);
  if (!fetched.ok()) co_return msg::make_reply(fetched.code());
  if (!is_simple_leaf(new_name)) {
    // Cross-context renames are not part of the standard protocol.
    co_return msg::make_reply(ReplyCode::kBadArgs);
  }
  // vlint: allow(gate-generation): handle_csname bumps the generation after a successful mutating dispatch.
  co_return msg::make_reply(co_await rename(self, ctx, leaf, new_name));
}

V_BORROWS_SPAN
sim::Co<msg::Message> CsnhServer::do_open(ipc::Process& self,
                                          ipc::Envelope& /*env*/,
                                          ContextId ctx,
                                          std::string_view leaf,
                                          std::uint16_t mode) {
  std::unique_ptr<io::InstanceObject> object;
  if (leaf.empty() || (mode & wire::kOpenDirectory) != 0) {
    // Opening a context itself opens its context directory (section 5.6).
    std::string_view pattern;
    if (!leaf.empty()) {
      if ((mode & wire::kOpenPattern) != 0) {
        pattern = leaf;  // section 5.6 extension: filter by glob
      } else {
        // A leaf only survives the mapping walk when it is NOT a local
        // context, so a named directory-mode open here cannot succeed.
        co_return msg::make_reply(ReplyCode::kNotFound);
      }
    }
    auto entries = co_await list_context(self, ctx);
    if (!entries.ok()) co_return msg::make_reply(entries.code());
    // Matching is cheap; fabrication is charged only for SHIPPED records —
    // exactly the saving the paper's pattern extension is after.
    if (!pattern.empty()) {
      std::erase_if(entries.value(), [pattern](const ObjectDescriptor& d) {
        return !glob_match(pattern, d.name);
      });
    }
    co_await self.compute(self.params().descriptor_fabricate *
                          static_cast<sim::SimDuration>(
                              entries.value().size()));
    std::vector<std::byte> snapshot(entries.value().size() *
                                    ObjectDescriptor::kWireSize);
    for (std::size_t i = 0; i < entries.value().size(); ++i) {
      entries.value()[i].encode(std::span(snapshot).subspan(
          i * ObjectDescriptor::kWireSize, ObjectDescriptor::kWireSize));
    }
    object = std::make_unique<ContextDirectoryInstance>(
        ctx, std::move(snapshot),
        [this](ipc::Process& p, ContextId c, const ObjectDescriptor& d)
            -> sim::Co<ReplyCode> { return gated_modify(p, c, d); });
  } else {
    auto opened = co_await open_object(self, ctx, leaf, mode);
    if (!opened.ok()) co_return msg::make_reply(opened.code());
    object = opened.take();
  }
  const io::InstanceInfo info = object->info();
  io::InstanceId id;
  {
    chk::AccessGuard guard(self, instances_cell_,
                           chk::AccessGuard::Mode::kWrite);
    id = instances_.add(std::move(object));
  }
  Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(io::kOffCreateInstance, id);
  reply.set_u32(io::kOffCreateSize, info.size_bytes);
  reply.set_u16(io::kOffCreateBlock, info.block_bytes);
  reply.set_u16(io::kOffCreateFlags, info.flags);
  reply.set_u32(io::kOffCreateServerPid, pid_.raw);
  reply.set_u32(io::kOffCreateContextId, ctx);
  co_return reply;
}

sim::Co<ReplyCode> CsnhServer::gated_modify(ipc::Process& self, ContextId ctx,
                                            ObjectDescriptor desc) {
  // "Writing a description record has the same effect as invoking the
  // modification operation on the named object" (section 5.6) — so it must
  // take the same (ctx, leaf) gate the direct kModifyName path takes.
  GateLock gate(*this, self.domain(), self.fiber_state(),
                GateKey{ctx, desc.name}, self.pid());
  co_await gate;
  const ReplyCode code = co_await modify(self, ctx, desc.name, desc);
  if (code == ReplyCode::kOk) bump_generation(self, ctx);
  co_return code;
}

void CsnhServer::bump_generation(ipc::Process& self, ContextId ctx) {
  generations_[ctx] = self.domain().next_name_generation();
}

#if V_CHECKS_ENABLED
void CsnhServer::note_name_write_impl(ipc::Process& self, ContextId ctx,
                                      std::string_view leaf) {
  ipc::Domain& dom = self.domain();
  const auto violation =
      dom.checks().check_gated_write(this, ctx, leaf, self.pid().raw);
  if (!violation) return;
  std::ostringstream out;
  out << "race detector: ungated (ctx,leaf) mutation on server '"
      << dom.process_name(pid_) << "': process '"
      << dom.process_name(self.pid()) << "' (pid " << self.pid().raw
      << ") mutated (" << ctx << ", \"" << leaf << "\") at t="
      << dom.loop().now();
  if (violation->holder_pid != 0) {
    out << " while process '"
        << dom.process_name(ipc::ProcessId{violation->holder_pid})
        << "' (pid " << violation->holder_pid
        << ") has held the mutation gate since t=" << violation->holder_since;
  } else {
    out << " without any process holding the mutation gate";
  }
  throw chk::RaceError(out.str());
}
#endif  // V_CHECKS_ENABLED

sim::Co<msg::Message> CsnhServer::do_inverse_name(ipc::Process& self,
                                                  ipc::Envelope& env,
                                                  Result<std::string> name) {
  if (!name.ok()) co_return msg::make_reply(name.code());
  const std::string& text = name.value();
  if (!text.empty()) {
    auto moved = co_await self.move_to(
        env, std::as_bytes(std::span(text.data(), text.size())));
    if (!moved.ok()) co_return msg::make_reply(moved.code());
  }
  Message reply = msg::make_reply(ReplyCode::kOk);
  reply.set_u16(wire::kOffInvNameLength,
                static_cast<std::uint16_t>(text.size()));
  co_return reply;
}

// ---------------------------------------------------------------------------
// I/O protocol instance operations
// ---------------------------------------------------------------------------

V_BORROWS_SPAN
sim::Co<std::optional<msg::Message>> CsnhServer::handle_instance_op(
    ipc::Process& self, ipc::Envelope& env) {
  const auto id =
      static_cast<io::InstanceId>(env.request.u16(io::kOffInstance));
  // Hold a shared reference across the co_awaits below: a concurrent team
  // worker may Release this id mid-operation (the table entry goes away;
  // the object must not).  The table itself is only borrowed momentarily —
  // the AccessGuard would flag a lookup held across a suspension point.
  std::shared_ptr<io::InstanceObject> object;
  {
    chk::AccessGuard guard(self, instances_cell_,
                           chk::AccessGuard::Mode::kRead);
    object = instances_.find(id);
  }
  switch (env.request.code()) {
    case RequestCode::kQueryInstance: {
      if (object == nullptr) {
        co_return msg::make_reply(ReplyCode::kInvalidInstance);
      }
      const auto info = object->info();
      Message reply = msg::make_reply(ReplyCode::kOk);
      reply.set_u16(io::kOffCreateInstance, id);
      reply.set_u32(io::kOffCreateSize, info.size_bytes);
      reply.set_u16(io::kOffCreateBlock, info.block_bytes);
      reply.set_u16(io::kOffCreateFlags, info.flags);
      co_return reply;
    }
    case RequestCode::kReadInstance: {
      if (object == nullptr) {
        co_return msg::make_reply(ReplyCode::kInvalidInstance);
      }
      const auto block = env.request.u32(io::kOffBlock);
      const auto info = object->info();
      std::uint16_t count = env.request.u16(io::kOffByteCount);
      std::vector<std::byte> buffer;
      if (count == io::kBulkRead) {
        // Bulk path: gather from `block` to EOF, then ONE MoveTo for the
        // whole payload (the V program-loading transfer shape).
        std::vector<std::byte> block_buf(info.block_bytes);
        for (std::uint32_t b = block;; ++b) {
          auto got = co_await object->read_block(self, b, block_buf);
          if (!got.ok()) {
            if (got.code() == ReplyCode::kEndOfFile) break;
            co_return msg::make_reply(got.code());
          }
          buffer.insert(buffer.end(), block_buf.begin(),
                        block_buf.begin() +
                            static_cast<std::ptrdiff_t>(got.value()));
          if (got.value() < block_buf.size()) break;
        }
      } else {
        if (count == 0 || count > info.block_bytes) count = info.block_bytes;
        buffer.resize(count);
        auto got = co_await object->read_block(self, block, buffer);
        if (!got.ok()) co_return msg::make_reply(got.code());
        buffer.resize(got.value());
      }
      if (!buffer.empty()) {
        auto moved = co_await self.move_to(env, buffer);
        if (!moved.ok()) co_return msg::make_reply(moved.code());
      }
      Message reply = msg::make_reply(ReplyCode::kOk);
      reply.set_u16(io::kOffXferCount, static_cast<std::uint16_t>(std::min(
                                           buffer.size(), std::size_t{0xfffe})));
      reply.set_u32(io::kOffXferCountLong,
                    static_cast<std::uint32_t>(buffer.size()));
      co_return reply;
    }
    case RequestCode::kWriteInstance: {
      if (object == nullptr) {
        co_return msg::make_reply(ReplyCode::kInvalidInstance);
      }
      const auto block = env.request.u32(io::kOffBlock);
      const std::uint16_t count = env.request.u16(io::kOffByteCount);
      if (count == 0 || count > object->info().block_bytes) {
        co_return msg::make_reply(ReplyCode::kBadArgs);
      }
      std::vector<std::byte> buffer(count);
      auto fetched = co_await self.move_from(env, buffer, 0);
      if (!fetched.ok()) co_return msg::make_reply(fetched.code());
      auto wrote = co_await object->write_block(self, block, buffer);
      if (!wrote.ok()) co_return msg::make_reply(wrote.code());
      Message reply = msg::make_reply(ReplyCode::kOk);
      reply.set_u16(io::kOffXferCount,
                    static_cast<std::uint16_t>(wrote.value()));
      co_return reply;
    }
    case RequestCode::kReleaseInstance: {
      bool released = false;
      {
        chk::AccessGuard guard(self, instances_cell_,
                               chk::AccessGuard::Mode::kWrite);
        released = instances_.release(self, id);
      }
      co_return msg::make_reply(released ? ReplyCode::kOk
                                         : ReplyCode::kInvalidInstance);
    }
    default:
      co_return msg::make_reply(ReplyCode::kIllegalRequest);
  }
}

// ---------------------------------------------------------------------------
// Default hook implementations
// ---------------------------------------------------------------------------

sim::Co<void> CsnhServer::on_start(ipc::Process& /*self*/) { co_return; }

std::string_view CsnhServer::parse_component(std::string_view name,
                                             std::size_t index,
                                             std::size_t& next) {
  return naming::next_component(name, index, next);
}

sim::SimDuration CsnhServer::parse_cost(ipc::Process& self,
                                        std::string_view /*name*/) {
  return self.params().csname_parse;
}

sim::Co<Result<ObjectDescriptor>> CsnhServer::describe(ipc::Process& /*self*/,
                                                       ContextId ctx,
                                                       std::string_view leaf) {
  if (!leaf.empty()) co_return ReplyCode::kNotFound;
  ObjectDescriptor desc;
  desc.type = DescriptorType::kContext;
  desc.server_pid = pid_.raw;
  desc.context_id = ctx;
  if (auto name = context_to_name(ctx); name.ok()) desc.name = name.value();
  co_return desc;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::modify(ipc::Process&, ContextId,
                                      std::string_view,
                                      const ObjectDescriptor&) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::remove(ipc::Process&, ContextId,
                                      std::string_view) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::rename(ipc::Process&, ContextId,
                                      std::string_view, std::string_view) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::create_object(ipc::Process&, ContextId,
                                             std::string_view,
                                             std::uint16_t) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::make_context(ipc::Process&, ContextId,
                                            std::string_view) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::link_context(ipc::Process&, ContextId,
                                            std::string_view, ContextPair) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::add_context_name(ipc::Process&, ContextId,
                                                std::string_view, ContextPair,
                                                ipc::ServiceId,
                                                ipc::GroupId) {
  co_return ReplyCode::kIllegalRequest;
}

V_GATED_MUTATION
sim::Co<ReplyCode> CsnhServer::delete_context_name(ipc::Process&, ContextId,
                                                   std::string_view) {
  co_return ReplyCode::kIllegalRequest;
}

sim::Co<Result<std::unique_ptr<io::InstanceObject>>> CsnhServer::open_object(
    ipc::Process&, ContextId, std::string_view, std::uint16_t) {
  co_return ReplyCode::kIllegalRequest;
}

sim::Co<Result<std::vector<ObjectDescriptor>>> CsnhServer::list_context(
    ipc::Process&, ContextId) {
  co_return ReplyCode::kIllegalRequest;
}

Result<std::string> CsnhServer::context_to_name(ContextId) {
  return ReplyCode::kNoInverse;
}

Result<std::string> CsnhServer::instance_to_name(io::InstanceId) {
  return ReplyCode::kNoInverse;
}

sim::Co<msg::Message> CsnhServer::handle_custom_csname(ipc::Process&,
                                                       ipc::Envelope&,
                                                       ContextId,
                                                       std::string_view,
                                                       std::string_view) {
  co_return msg::make_reply(ReplyCode::kIllegalRequest);
}

sim::Co<msg::Message> CsnhServer::handle_custom(ipc::Process&,
                                                ipc::Envelope&) {
  co_return msg::make_reply(ReplyCode::kIllegalRequest);
}

// ---------------------------------------------------------------------------
// V-trace metric helpers
// ---------------------------------------------------------------------------

#if V_TRACE_ENABLED
obs::Counter& CsnhServer::req_counter(ipc::Process& self,
                                      std::uint16_t code) {
  if (auto it = req_counters_.find(code); it != req_counters_.end()) {
    return *it->second;
  }
  // First packet with this code: build the "req.<label>" key once and pin
  // the registry entry.  Every later packet is one FlatMap probe + inc.
  std::string key("req.");
  key.append(obs::opcode_label(code));
  obs::Counter& counter = self.domain().metrics().counter(metrics_scope_, key);
  req_counters_[code] = &counter;
  return counter;
}
#endif

void CsnhServer::metric_inc(ipc::Process& self, std::string_view name,
                            std::uint64_t n) {
#if V_TRACE_ENABLED
  self.domain().metrics().counter(metrics_scope_, name).inc(n);
#else
  (void)self;
  (void)name;
  (void)n;
#endif
}

void CsnhServer::metric_gauge(ipc::Process& self, std::string_view name,
                              std::int64_t value) {
#if V_TRACE_ENABLED
  self.domain().metrics().gauge(metrics_scope_, name).set(value);
#else
  (void)self;
  (void)name;
  (void)value;
#endif
}

void CsnhServer::metric_hist(ipc::Process& self, std::string_view name,
                             double value) {
#if V_TRACE_ENABLED
  self.domain().metrics().histogram(metrics_scope_, name).add(value);
#else
  (void)self;
  (void)name;
  (void)value;
#endif
}

}  // namespace v::naming
