// Glob-style pattern matching for context directories.
//
// Section 5.6: "we have been considering extensions to context directories
// such as pattern matching, which would cause the server to only include
// objects that match the given pattern in the returned context directory."
// This implements that extension: '*' matches any run of characters, '?'
// matches exactly one, everything else matches itself.
#pragma once

#include <string_view>

namespace v::naming {

/// True when `name` matches the glob `pattern`.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view name) noexcept;

/// True when the string contains glob metacharacters.
[[nodiscard]] constexpr bool has_glob_chars(std::string_view text) noexcept {
  return text.find_first_of("*?") != std::string_view::npos;
}

}  // namespace v::naming
