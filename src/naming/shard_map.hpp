// The shard map: how a partitioned prefix name space is described to
// clients (PROTOCOL.md 14, DESIGN.md 4m).
//
// The global prefix table is partitioned into CONSISTENT PREFIX RANGES:
// shard i owns every prefix p with lo_i <= p < lo_{i+1} (lexicographic,
// last shard open-ended, first lo always "").  The map is the list of
// (lo, server-pid, generation) triples plus a version counter; routing a
// prefix is one upper-bound probe.
//
// The generation field is what makes a stale map SAFE rather than merely
// detectable-later: it is the shard's default-context generation (the PR 4
// validated-caching counter) at publish time, and clients quote it as the
// expected generation of every request they route with the map.  Any shard
// whose slice has changed since — a handoff added or removed entries, or
// the server restarted with a fresh generation floor — refuses with
// kStaleContext before interpreting a single component, so a wrong answer
// from a stale map is structurally impossible; the client refetches and
// retries (never silently wrong, paper section 2.2's lesson applied to the
// map itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace v::naming {

/// Reply wire layout of msg::kFetchShardMap (the map bytes themselves ride
/// a MoveTo into the client's write segment; see PROTOCOL.md 14):
namespace wire {
inline constexpr std::size_t kOffShardMapVersion = 12;  ///< u32
inline constexpr std::size_t kOffShardMapCount = 16;    ///< u16 shards
inline constexpr std::size_t kOffShardMapBytes = 18;    ///< u16 serialized
}  // namespace wire

struct ShardMap {
  struct Shard {
    std::string lo;            ///< inclusive lower bound of the owned range
    std::uint32_t server_pid = 0;
    std::uint32_t generation = 0;  ///< shard's default-context generation
  };

  std::uint32_t version = 0;
  std::vector<Shard> shards;  ///< sorted by lo; shards[0].lo == ""

  /// Serialized size bound: count is a u16 and each lo is a short prefix.
  static constexpr std::size_t kMaxBytes = 4096;
  static constexpr std::uint32_t kMagic = 0x56534d31;  // "VSM1"

  [[nodiscard]] bool empty() const noexcept { return shards.empty(); }

  /// Structural validity: non-empty, first lo "", sorted strictly by lo.
  [[nodiscard]] bool well_formed() const noexcept;

  /// Index of the shard owning `prefix` (the last shard whose lo is <=
  /// prefix).  Requires well_formed().
  [[nodiscard]] std::size_t route(std::string_view prefix) const noexcept;

  /// Append the wire form to `out`: header (magic, version, count) then
  /// per-shard (pid, generation, lo-length, lo bytes), little-endian.
  void serialize(std::vector<std::byte>& out) const;

  /// Parse a buffer previously filled by serialize().  The encoding is
  /// self-delimiting (the header carries the count), so trailing garbage —
  /// e.g. remnants of a longer map a later group member overwrote — is
  /// ignored.  Returns false (leaving `out` untouched) unless the bytes
  /// decode to a well-formed map.
  [[nodiscard]] static bool parse(std::span<const std::byte> in,
                                  ShardMap& out);
};

}  // namespace v::naming
