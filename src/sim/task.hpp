// Coroutine task types for simulated processes.
//
// Simulated V processes are C++20 coroutines.  Blocking kernel primitives
// (Send, Receive, Delay, ...) are awaitables that park the coroutine and let
// the event loop resume it at the right simulated time.  Two types:
//
//  * Co<T>  — a lazily-started child coroutine, awaited by its caller with
//             symmetric transfer.  This is what every helper/stub returns.
//  * Fiber  — owns the root coroutine of one simulated process.  Kill is by
//             exception:  a killed fiber's next resume throws FiberKilled
//             from the innermost awaitable, unwinding the whole chain, so no
//             suspended frame is ever destroyed out from under a pending
//             resume (see DESIGN.md "kill-safe unwinding").
//
// COMPILER NOTE (load-bearing): GCC 12.2 miscompiles non-trivially-
// destructible TEMPORARIES appearing as arguments of a coroutine call inside
// a co_await full-expression — they are destroyed twice (observed as
// double-free; minimal repro in DESIGN.md).  Repo-wide rule, enforced by
// review and exercised by the ASAN test job:
//     NEVER write   co_await f(make_string(...));
//     ALWAYS hoist  const std::string s = make_string(...);
//                   co_await f(s);
// Trivially-destructible temporaries (spans, string_views of literals, ids,
// Messages) are unaffected.  The same codegen bugs bite co_await inside a
// CONDITIONAL EXPRESSION (`c ? co_await a : co_await b`) — use if/else.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#if V_TRACE_ENABLED
#include <chrono>
#endif

#include "common/check.hpp"
#include "sim/frame_pool.hpp"
#include "common/annotate.hpp"

namespace v::sim {

class EventLoop;

/// Thrown out of an awaitable when the owning fiber has been killed; unwinds
/// the process coroutine chain.  Server/process code must not swallow it
/// (catch-all handlers must rethrow).
struct FiberKilled {};

/// Shared state used to observe a fiber from outside and to mark it killed.
struct FiberState {
  bool killed = false;       ///< set by Fiber::kill(); awaitables check it
  bool done = false;         ///< set when the root coroutine finishes
  std::exception_ptr error;  ///< non-kill exception that escaped the root
  /// Owning simulated process (raw pid; 0 = no kernel process).  Set by the
  /// kernel at spawn; read by the ambient log context and the profiler.
  std::uint32_t pid = 0;
#if V_TRACE_ENABLED
  std::uint64_t dispatches = 0;  ///< times the event loop resumed this fiber
  std::uint64_t wall_ns = 0;     ///< cumulative host-CPU time across resumes
#endif
};

/// What is executing right now.  One global suffices: the simulation is
/// single-threaded by design (see EventLoop).  `loop` is set around every
/// event; `fiber` around every fiber resume — so VLOG can prefix simulated
/// time and pid, and the profiler can attribute host CPU to fibers.
struct AmbientContext {
  const EventLoop* loop = nullptr;
  const FiberState* fiber = nullptr;
};

V_HOT_PATH
inline AmbientContext& ambient() noexcept {
  static AmbientContext ctx;
  return ctx;
}

#if V_TRACE_ENABLED
/// Opt-in switch for per-resume host-CPU charging (FiberState::wall_ns,
/// read back through Domain::top_fibers).  Two steady_clock reads per
/// fiber dispatch cost more than the rest of a warm park/wake cycle put
/// together, so the clock is only touched when a profiling consumer asked
/// for it; the dispatch COUNT is maintained unconditionally (one
/// increment).  Flip before running the workload to be profiled.
inline bool& fiber_profiling() noexcept {
  static bool enabled = false;
  return enabled;
}
#endif

/// RAII marker placed around h.resume() at every resume site (fiber start,
/// Waker wake, DelayAwaiter, WaitQueue, gate handoff): "this fiber runs
/// from here to end of scope".  Nesting-safe (saves/restores the previous
/// fiber) and null-tolerant.  With V_TRACE it also charges host-clock time
/// to the fiber — host time, never simulated time, so profiling cannot
/// perturb the run.
class FiberRunScope {
 public:
  explicit FiberRunScope(FiberState* fiber) noexcept
      : fiber_(fiber), prev_(ambient().fiber) {
    ambient().fiber = fiber;
#if V_TRACE_ENABLED
    if (fiber_ != nullptr && fiber_profiling()) {
      timed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
#endif
  }
  FiberRunScope(const FiberRunScope&) = delete;
  FiberRunScope& operator=(const FiberRunScope&) = delete;
  ~FiberRunScope() {
#if V_TRACE_ENABLED
    if (fiber_ != nullptr) {
      ++fiber_->dispatches;
      if (timed_) {
        fiber_->wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
      }
    }
#endif
    ambient().fiber = prev_;
  }

 private:
  FiberState* fiber_;
  const FiberState* prev_;
#if V_TRACE_ENABLED
  bool timed_ = false;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// A lazily-started coroutine returning T, awaited with symmetric transfer.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  Co() noexcept = default;
  explicit Co(Handle h) noexcept : coro_(h) {}
  Co(Co&& other) noexcept : coro_(std::exchange(other.coro_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      coro_ = std::exchange(other.coro_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return coro_ != nullptr; }

  struct promise_type : PooledFrame {
    std::coroutine_handle<> continuation;
    std::optional<T> value;
    std::exception_ptr error;

    Co get_return_object() { return Co(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
    void unhandled_exception() { error = std::current_exception(); }
  };

  // Awaiting a Co<T> starts it and suspends the caller until it completes.
  bool await_ready() const noexcept { return false; }
  Handle await_suspend(std::coroutine_handle<> caller) noexcept {
    coro_.promise().continuation = caller;
    return coro_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    auto& p = coro_.promise();
    if (p.error) std::rethrow_exception(p.error);
    V_CHECK(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  void destroy() noexcept {
    if (coro_) {
      coro_.destroy();
      coro_ = nullptr;
    }
  }
  Handle coro_ = nullptr;
};

/// Co<void> specialization.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  Co() noexcept = default;
  explicit Co(Handle h) noexcept : coro_(h) {}
  Co(Co&& other) noexcept : coro_(std::exchange(other.coro_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      coro_ = std::exchange(other.coro_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return coro_ != nullptr; }

  struct promise_type : PooledFrame {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    Co get_return_object() { return Co(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  bool await_ready() const noexcept { return false; }
  Handle await_suspend(std::coroutine_handle<> caller) noexcept {
    coro_.promise().continuation = caller;
    return coro_;
  }
  void await_resume() {
    auto& p = coro_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  void destroy() noexcept {
    if (coro_) {
      coro_.destroy();
      coro_ = nullptr;
    }
  }
  Handle coro_ = nullptr;
};

namespace detail {

/// Root coroutine type for fibers: manually started, frame owned by Fiber.
struct FiberRoot {
  struct promise_type : PooledFrame {
    FiberRoot get_return_object() {
      return FiberRoot{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle = nullptr;
};

}  // namespace detail

/// Owns the root coroutine of one simulated process.
///
/// Lifecycle: construct with the process body, call start() (typically from
/// an event), and either let it run to completion or call kill().  A killed
/// fiber unwinds at its *next* resume; the party holding the pending resume
/// (kernel wait record or scheduled event) must still deliver that resume —
/// the kernel's kill path takes care of this.
class Fiber {
 public:
  using OnDone = std::function<void(std::exception_ptr)>;

  /// Create a fiber running `body`.  `on_done` (optional) fires when the
  /// body returns, throws, or finishes unwinding after kill; for a clean
  /// return or a kill the exception_ptr is null.
  explicit Fiber(Co<void> body, OnDone on_done = nullptr)
      : state_(std::make_shared<FiberState>()) {
    root_ = run_root(std::move(body), state_, std::move(on_done)).handle;
  }

  Fiber(Fiber&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        state_(std::move(other.state_)),
        started_(other.started_) {}
  Fiber& operator=(Fiber&& other) noexcept {
    if (this != &other) {
      destroy();
      root_ = std::exchange(other.root_, nullptr);
      state_ = std::move(other.state_);
      started_ = other.started_;
    }
    return *this;
  }
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber() { destroy(); }

  /// Begin execution (runs until the first suspension point).
  void start() {
    V_CHECK(!started_);
    started_ = true;
    FiberRunScope scope(state_.get());
    root_.resume();
  }

  /// Mark the fiber killed.  The next resume of any of its awaitables
  /// throws FiberKilled.
  void kill() noexcept { state_->killed = true; }

  [[nodiscard]] bool done() const noexcept { return state_->done; }
  [[nodiscard]] bool killed() const noexcept { return state_->killed; }
  [[nodiscard]] std::exception_ptr error() const noexcept {
    return state_->error;
  }

  /// Shared observer handle; awaitables capture this to honor kill().
  [[nodiscard]] const std::shared_ptr<FiberState>& state() const noexcept {
    return state_;
  }

 private:
  static detail::FiberRoot run_root(Co<void> body,
                                    std::shared_ptr<FiberState> state,
                                    OnDone on_done) {
    std::exception_ptr error;
    try {
      co_await std::move(body);
    } catch (const FiberKilled&) {
      // expected unwind path after kill(); not an error
    } catch (...) {
      error = std::current_exception();
    }
    state->done = true;
    state->error = error;
    if (on_done) on_done(error);
  }

  void destroy() noexcept {
    if (root_) {
      root_.destroy();  // cascades through suspended Co frames via RAII
      root_ = nullptr;
    }
  }

  std::coroutine_handle<detail::FiberRoot::promise_type> root_ = nullptr;
  std::shared_ptr<FiberState> state_;
  bool started_ = false;
};

}  // namespace v::sim
