// Sample accumulator for latency measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace v::sim {

/// Collects scalar samples (typically simulated milliseconds) and reports
/// summary statistics.  Stores all samples; simulation scale keeps this
/// cheap and allows exact percentiles.  Use it where the sample count is
/// small and exactness matters (test assertions); streaming aggregation
/// belongs in obs::LogHistogram (fixed footprint, O(1) record).
class Accumulator {
 public:
  void add(double sample) { samples_.push_back(sample); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    V_CHECK(!samples_.empty());
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    V_CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    V_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double stddev() const {
    V_CHECK(!samples_.empty());
    const double m = mean();
    double acc = 0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
  }

  /// Linearly interpolated percentile (q in [0,1]).  The pre-PR 8
  /// nearest-rank rounding was wrong at small sample counts — the p50 of
  /// two samples was their MAX, not their midpoint, so every two-repeat
  /// bench row overstated its median.
  [[nodiscard]] double percentile(double q) const {
    V_CHECK(!samples_.empty());
    V_CHECK(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (frac == 0.0 || lo + 1 == sorted.size()) return sorted[lo];
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace v::sim
