// Sample accumulator for latency measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace v::sim {

/// Collects scalar samples (typically simulated milliseconds) and reports
/// summary statistics.  Stores all samples; simulation scale keeps this
/// cheap and allows exact percentiles.
class Accumulator {
 public:
  void add(double sample) { samples_.push_back(sample); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    V_CHECK(!samples_.empty());
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    V_CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    V_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double stddev() const {
    V_CHECK(!samples_.empty());
    const double m = mean();
    double acc = 0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
  }

  /// Exact percentile by nearest-rank (q in [0,1]).
  [[nodiscard]] double percentile(double q) const {
    V_CHECK(!samples_.empty());
    V_CHECK(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace v::sim
