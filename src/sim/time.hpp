// Simulated time.
//
// All latencies the paper reports are in milliseconds on 1984 hardware; the
// simulator keeps time as integer nanoseconds so cost-model arithmetic is
// exact and runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace v::sim {

/// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

/// An absolute simulated time (nanoseconds since simulation start).
using SimTime = std::int64_t;

/// Construct durations readably:  3 * kMillisecond + 250 * kMicrosecond.
inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Convert a simulated duration to fractional milliseconds (for reports).
constexpr double to_ms(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Convert fractional milliseconds to a simulated duration.
constexpr SimDuration from_ms(double ms) noexcept {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

}  // namespace v::sim
