// Generic awaitables over the event loop.
//
// LIFETIME CONTRACT: awaitables and wakers hold the fiber's FiberState by
// RAW pointer, not shared_ptr.  The pointed-to state must outlive every
// pending wake/delay event.  The kernel guarantees this structurally:
// process records (which own the Fiber, which owns the FiberState) are
// retained until the Domain is destroyed, and the Domain's event loop is
// destroyed first — pending actions are dropped, never run, after that.
// The old shared_ptr plumbing cost four atomic refcount pairs per IPC
// transaction and made every wake closure non-trivially relocatable; the
// raw pointer makes the park/wake path allocation- and atomics-free.
#pragma once

#include <coroutine>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "common/annotate.hpp"

namespace v::sim {

/// Suspend the current fiber for `delay` of simulated time.
///
/// Always suspends (even for zero delays) so that ordering between
/// same-time events stays deterministic and explicit.  Honors fiber kill:
/// resuming a killed fiber throws FiberKilled.
class DelayAwaiter {
 public:
  DelayAwaiter(EventLoop& loop, SimDuration delay,
               FiberState* fiber) noexcept
      : loop_(loop), delay_(delay), fiber_(fiber) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    loop_.schedule_after(delay_, [h, f = fiber_] {
      FiberRunScope scope(f);
      h.resume();
    });
  }
  void await_resume() const {
    if (fiber_ != nullptr && fiber_->killed) throw FiberKilled{};
  }

 private:
  EventLoop& loop_;
  SimDuration delay_;
  FiberState* fiber_;
};

/// Park the current fiber until an external party resumes it by calling
/// the Waker.  Used by the kernel for blocking IPC states (awaiting reply,
/// awaiting message).  The kernel is responsible for eventually waking every
/// parked fiber, including on kill.
class ParkAwaiter;

/// Handle used to wake a parked fiber.  Copyable; waking twice is an error.
class Waker {
 public:
  Waker() = default;

  /// Resume the parked fiber via an immediate event (at current sim time).
  V_HOT_PATH
  void wake(EventLoop& loop) {
    V_CHECK(handle_ != nullptr);
    auto h = std::exchange(handle_, nullptr);
    loop.schedule_after(0, [h, f = fiber_] {
      FiberRunScope scope(f);
      h.resume();
    });
  }

  /// Resume the parked fiber `delay` from now.
  void wake_after(EventLoop& loop, SimDuration delay) {
    V_CHECK(handle_ != nullptr);
    auto h = std::exchange(handle_, nullptr);
    loop.schedule_after(delay, [h, f = fiber_] {
      FiberRunScope scope(f);
      h.resume();
    });
  }

  [[nodiscard]] bool armed() const noexcept { return handle_ != nullptr; }

 private:
  friend class ParkAwaiter;
  std::coroutine_handle<> handle_ = nullptr;
  FiberState* fiber_ = nullptr;  ///< parked fiber, for the run scope
};

class ParkAwaiter {
 public:
  /// `waker` must outlive the suspension; the kernel stores it in its wait
  /// records.  `fiber` enables kill-by-exception on resume.
  V_HOT_PATH
  ParkAwaiter(Waker& waker, FiberState* fiber) noexcept
      : waker_(waker), fiber_(fiber) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    waker_.handle_ = h;
    waker_.fiber_ = fiber_;
  }
  void await_resume() const {
    if (fiber_ != nullptr && fiber_->killed) throw FiberKilled{};
  }

 private:
  Waker& waker_;
  FiberState* fiber_;
};

}  // namespace v::sim
