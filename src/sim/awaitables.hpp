// Generic awaitables over the event loop.
#pragma once

#include <coroutine>
#include <memory>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "common/annotate.hpp"

namespace v::sim {

/// Suspend the current fiber for `delay` of simulated time.
///
/// Always suspends (even for zero delays) so that ordering between
/// same-time events stays deterministic and explicit.  Honors fiber kill:
/// resuming a killed fiber throws FiberKilled.
class DelayAwaiter {
 public:
  DelayAwaiter(EventLoop& loop, SimDuration delay,
               std::shared_ptr<FiberState> fiber) noexcept
      : loop_(loop), delay_(delay), fiber_(std::move(fiber)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    loop_.schedule_after(delay_, [h, f = fiber_] {
      FiberRunScope scope(f.get());
      h.resume();
    });
  }
  void await_resume() const {
    if (fiber_ && fiber_->killed) throw FiberKilled{};
  }

 private:
  EventLoop& loop_;
  SimDuration delay_;
  std::shared_ptr<FiberState> fiber_;
};

/// Park the current fiber until an external party resumes it by calling
/// the Waker.  Used by the kernel for blocking IPC states (awaiting reply,
/// awaiting message).  The kernel is responsible for eventually waking every
/// parked fiber, including on kill.
class ParkAwaiter;

/// Handle used to wake a parked fiber.  Copyable; waking twice is an error.
class Waker {
 public:
  Waker() = default;

  /// Resume the parked fiber via an immediate event (at current sim time).
  void wake(EventLoop& loop) {
    V_CHECK(handle_ != nullptr);
    auto h = std::exchange(handle_, nullptr);
    loop.schedule_after(0, [h, f = fiber_] {
      FiberRunScope scope(f.get());
      h.resume();
    });
  }

  /// Resume the parked fiber `delay` from now.
  void wake_after(EventLoop& loop, SimDuration delay) {
    V_CHECK(handle_ != nullptr);
    auto h = std::exchange(handle_, nullptr);
    loop.schedule_after(delay, [h, f = fiber_] {
      FiberRunScope scope(f.get());
      h.resume();
    });
  }

  [[nodiscard]] bool armed() const noexcept { return handle_ != nullptr; }

 private:
  friend class ParkAwaiter;
  std::coroutine_handle<> handle_ = nullptr;
  std::shared_ptr<FiberState> fiber_;  ///< parked fiber, for the run scope
};

class ParkAwaiter {
 public:
  /// `waker` must outlive the suspension; the kernel stores it in its wait
  /// records.  `fiber` enables kill-by-exception on resume.
  V_HOT_PATH
  ParkAwaiter(Waker& waker, std::shared_ptr<FiberState> fiber) noexcept
      : waker_(waker), fiber_(std::move(fiber)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    waker_.handle_ = h;
    waker_.fiber_ = fiber_;
  }
  void await_resume() const {
    if (fiber_ && fiber_->killed) throw FiberKilled{};
  }

 private:
  Waker& waker_;
  std::shared_ptr<FiberState> fiber_;
};

}  // namespace v::sim
