// Coroutine-frame recycling for the fiber spawn path.
//
// Every simulated IPC transaction spins up short-lived Co<T> frames (stub
// call, server handler, reply path), so frame allocation sits directly on
// the hot path.  Frames come in a handful of sizes per build, which makes
// them ideal free-list fodder: the pool rounds each frame up to a 64-byte
// size class and keeps a per-class LIFO of retired frames.  Steady-state
// simulation allocates no frame memory at all — every spawn reuses the
// frame of a fiber that finished moments (of host time) earlier.
//
// The pool is intentionally dumb: no thread safety (the simulation is
// single-threaded by design), no shrinking beyond a per-class cap, and it
// deliberately leaks its free lists at process exit (returning them would
// only slow shutdown).  Under AddressSanitizer the pool disables itself so
// use-after-free of coroutine frames stays detectable — recycled frames
// would otherwise mask exactly the bugs the ASan job exists to catch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define V_FRAME_POOL_ENABLED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define V_FRAME_POOL_ENABLED 0
#else
#define V_FRAME_POOL_ENABLED 1
#endif
#else
#define V_FRAME_POOL_ENABLED 1
#endif

namespace v::sim {

struct FramePoolStats {
  std::uint64_t frames_recycled = 0;  ///< allocations served from a free list
  std::uint64_t frames_fresh = 0;     ///< allocations that hit operator new
};

class FramePool {
 public:
  static constexpr std::size_t kClassBytes = 64;
  static constexpr std::size_t kClasses = 64;      ///< pool frames ≤ 4 KiB
  static constexpr std::size_t kMaxPerClass = 512;  ///< retained-memory cap

  static FramePool& instance() noexcept {
    static FramePool pool;
    return pool;
  }

  // Defined out of line (frame_pool.cpp): GCC otherwise pairs the inlined
  // `::operator new` fallback with the class-scope sized delete at every
  // co_await site and emits a -Wmismatched-new-delete false positive.
  void* allocate(std::size_t bytes);
  void deallocate(void* frame, std::size_t bytes) noexcept;

  [[nodiscard]] const FramePoolStats& stats() const noexcept { return stats_; }

 private:
  std::vector<void*> bins_[kClasses];
  FramePoolStats stats_;
};

/// Mix-in base for coroutine promise types: routes the frame through the
/// pool.  The compiler calls these with the FULL frame size (not the
/// promise size), and sized delete hands the same size back, which is what
/// lets the pool bin frames without a header.
struct PooledFrame {
  static void* operator new(std::size_t bytes) {
    return FramePool::instance().allocate(bytes);
  }
  static void operator delete(void* frame, std::size_t bytes) noexcept {
    FramePool::instance().deallocate(frame, bytes);
  }
};

}  // namespace v::sim
