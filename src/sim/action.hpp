// Small-buffer event action: the payload type of every scheduled event.
//
// The event loop schedules tens of millions of closures per run; wrapping
// them in std::function heap-allocates anything over the libstdc++ 16-byte
// small-object threshold — which includes nearly every kernel closure (the
// deliver path captures a whole Envelope).  InlineAction raises the inline
// capacity to fit the largest hot closure in the kernel (sized below, with
// the audit) and is MOVE-ONLY, so the scheduler can relocate events between
// wheel slots and heaps without the copy std::function would force and
// without touching the allocator.
//
// Anything larger than the buffer still works — it falls back to a single
// heap node — and the loop counts both populations (actions_inline /
// actions_heap in EventLoopStats), so an accidentally-fat closure shows up
// in [metrics] instead of silently eating throughput.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include "common/annotate.hpp"

namespace v::sim {

class InlineAction {
 public:
  /// Inline capacity.  Sized for the fattest hot-path closure, the kernel's
  /// deliver/retransmit lambdas: an Envelope (~112 bytes: 32-byte Message,
  /// two segment spans, trace context, binding hint, txn seq) plus a couple
  /// of ids and flags ≈ 140 bytes.  160 keeps the whole Event a neat 192
  /// bytes with headroom for the Envelope to grow a field or two.
  static constexpr std::size_t kInlineSize = 160;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor): callable →
                          // action conversion is the whole point
    emplace(std::forward<F>(fn));
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap node).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  V_HOT_PATH
  void operator()() { ops_->invoke(buf_); }

 private:
  /// Per-callable-type vtable: one static instance per instantiation.
  /// `relocate` moves the payload into a fresh buffer AND destroys the
  /// source (move + destroy fused: every move the scheduler does is a
  /// relocation, never a reuse of the source).  `trivial_size` is nonzero
  /// when the payload is trivially copyable AND trivially destructible:
  /// the scheduler then relocates with an inline memcpy and skips the
  /// destroy thunk entirely — two fewer indirect calls per event for the
  /// hot kernel closures (wake and deliver both qualify: a coroutine
  /// handle plus raw pointers and PODs).
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    std::size_t trivial_size;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      /*trivial_size=*/std::is_trivially_copyable_v<Fn> &&
              std::is_trivially_destructible_v<Fn>
          ? sizeof(Fn)
          : 0,
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
      /*trivial_size=*/0,
      /*inline_storage=*/false,
  };

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  V_HOT_PATH
  void move_from(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial_size != 0) {
        std::memcpy(buf_, other.buf_, ops_->trivial_size);
      } else {
        ops_->relocate(buf_, other.buf_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->trivial_size == 0) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace v::sim
