#include "sim/event_loop.hpp"

#include <utility>

namespace v::sim {

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the action handle (std::function move would be nicer but top() is
  // const).  Events are small; the copy is a shared control block at worst.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

void EventLoop::run_until_idle() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace v::sim
