#include "sim/event_loop.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#if V_TRACE_ENABLED
#include <chrono>
#endif

#include "common/log.hpp"
#include "sim/task.hpp"
#include "common/annotate.hpp"

namespace v::sim {

namespace {

/// VLOG bridge: every log line is stamped with the simulated time and pid
/// of whatever the ambient context says is running right now.
log_detail::Context ambient_log_context() {
  log_detail::Context ctx;
  const AmbientContext& amb = ambient();
  if (amb.loop != nullptr) {
    ctx.has_time = true;
    ctx.time_ns = amb.loop->now();
  }
  if (amb.fiber != nullptr) ctx.pid = amb.fiber->pid;
  return ctx;
}

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.  Used to turn
/// (fuzz seed, sequence number) into a tie key so simultaneous events fire
/// in a seed-determined permutation of their scheduling order.
V_HOT_PATH
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EventLoop::EventLoop() {
  log_detail::set_context_provider(&ambient_log_context);
  for (auto& level : slots_) {
    for (std::uint32_t& head : level) head = kNilNode;
  }
}

V_HOT_PATH
std::uint64_t EventLoop::tie_key(std::uint64_t seq) const noexcept {
  return fuzz_ ? mix64(fuzz_seed_ ^ mix64(seq)) : seq;
}

V_HOT_PATH
std::uint32_t EventLoop::alloc_node(Action&& action) {
  std::uint32_t idx = free_head_;
  if (idx != kNilNode) {
    free_head_ = node(idx).next;
  } else {
    idx = slab_used_++;
    if ((idx >> kChunkBits) == chunks_.size()) {
      // Slab chunk growth: rare and amortized, the steady state reuses
      // freed nodes.
      chunks_.push_back(  // vlint: allow(hot-path-alloc): cold growth branch
          std::make_unique<Node[]>(std::size_t{1} << kChunkBits));
    }
  }
  node(idx).action = std::move(action);
  return idx;
}

V_HOT_PATH
void EventLoop::free_node(std::uint32_t idx) noexcept {
  node(idx).next = free_head_;
  free_head_ = idx;
}

V_HOT_PATH
void EventLoop::push_due(const Key& key) {
  due_.push_back(key);
  std::push_heap(due_.begin(), due_.end(), Later{});
}

V_HOT_PATH
EventLoop::Key EventLoop::pop_due() {
  std::pop_heap(due_.begin(), due_.end(), Later{});
  const Key key = due_.back();
  due_.pop_back();
  return key;
}

V_HOT_PATH
void EventLoop::wheel_insert(const Key& key) {
  const std::uint64_t tick = tick_of(key.at);
  const std::uint64_t delta = tick ^ cur_tick_;
  if ((delta >> kWheelBits) != 0) {
    overflow_.push_back(key);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    return;
  }
  // The level is picked by the highest bit where the tick DIFFERS from the
  // cursor.  All bits above that level agree with the cursor, so the slot
  // index can be taken from the tick's absolute digits: the slot is always
  // strictly ahead of the cursor's digit at that level and is reached
  // before the digit wraps — no modular-arithmetic aliasing.
  const int level = (63 - std::countl_zero(delta)) / kSlotBits;
  const std::size_t slot =
      (tick >> (level * kSlotBits)) & (kSlotsPerLevel - 1);
  // Park the ordering key in the action's own slab node and thread it
  // onto the slot's chain — no container, no allocation.
  Node& n = node(key.node);
  n.at = key.at;
  n.tie = key.tie;
  n.seq = key.seq;
  n.next = slots_[level][slot];
  slots_[level][slot] = key.node;
  occupied_[level] |= std::uint64_t{1} << slot;
}

V_HOT_PATH
void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  if (action.is_inline()) {
    ++stats_.actions_inline;
  } else {
    ++stats_.actions_heap;
  }
  const Key key{at, tie_key(seq), seq, alloc_node(std::move(action))};
  ++pending_;
  if (tick_of(at) <= cur_tick_) {
    // At or behind the cursor (same tick as the events being drained):
    // straight into the due heap, where the (at, tie, seq) key slots it
    // exactly where the old engine would have fired it — under fuzz a
    // fresh arrival's hashed tie may well sort BEFORE pending events.
    push_due(key);
  } else {
    wheel_insert(key);
  }
}

V_HOT_PATH
void EventLoop::advance() {
  assert(due_.empty() && pending_ > 0);
  for (;;) {
    // Earliest wheel candidate: the lowest level with an occupied slot
    // ahead of the cursor's digit.  (Slots at or behind the digit are
    // impossible at insertion and cleared on drain, so "ahead" is a plain
    // bitmask, not a modular scan.)
    int level = -1;
    std::size_t slot = 0;
    for (int l = 0; l < kLevels; ++l) {
      const std::size_t digit =
          (cur_tick_ >> (l * kSlotBits)) & (kSlotsPerLevel - 1);
      const std::uint64_t ahead =
          digit + 1 < kSlotsPerLevel
              ? occupied_[l] & (~std::uint64_t{0} << (digit + 1))
              : 0;
      if (ahead != 0) {
        level = l;
        slot = static_cast<std::size_t>(std::countr_zero(ahead));
        break;
      }
    }
    // Slot base tick: cursor digits above the level, the found slot digit
    // at the level, zeros below — a lower bound for every tick in the slot.
    std::uint64_t base = 0;
    if (level >= 0) {
      const int shift = (level + 1) * kSlotBits;
      base = ((cur_tick_ >> shift) << shift) |
             (static_cast<std::uint64_t>(slot) << (level * kSlotBits));
    }

    if (!overflow_.empty()) {
      const std::uint64_t overflow_tick = tick_of(overflow_.front().at);
      if (level < 0 || overflow_tick < base) {
        // The far-future heap holds the earliest pending work (the wheel's
        // high tick bits only change on this jump, so overflow events are
        // in fact always later than every wheel event — this branch fires
        // when the wheel is empty ahead of the cursor).  Jump the cursor
        // and promote everything now within wheel range.
        cur_tick_ = overflow_tick;
        while (!overflow_.empty() &&
               ((tick_of(overflow_.front().at) ^ cur_tick_) >> kWheelBits) ==
                   0) {
          std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
          const Key key = overflow_.back();
          overflow_.pop_back();
          ++stats_.overflow_promotions;
          if (tick_of(key.at) <= cur_tick_) {
            push_due(key);
          } else {
            wheel_insert(key);
          }
        }
        if (!due_.empty()) return;
        continue;
      }
    }

    assert(level >= 0);
    occupied_[level] &= ~(std::uint64_t{1} << slot);
    cur_tick_ = base;
    if (level == 0) {
      // A level-0 slot holds exactly one tick; everything in it is due.
      std::uint32_t idx = slots_[0][slot];
      slots_[0][slot] = kNilNode;
      while (idx != kNilNode) {
        const Node& n = node(idx);
        const std::uint32_t next = n.next;  // push_due never touches nodes
        push_due(Key{n.at, n.tie, n.seq, idx});
        idx = next;
      }
      return;
    }
    // Higher level: cascade the slot one step down.  Every key differs
    // from the new cursor only below this level's bits, so reinsertion
    // lands at a strictly lower level (or in the due heap when its tick IS
    // the slot base).  Detach the chain head first: wheel_insert rethreads
    // each node's `next` as it files it, so read the link before
    // reinserting.  Chain order does not matter — the due heap's strict
    // (at, tie, seq) order fixes firing order (see slots_ in the header).
    std::uint32_t idx = slots_[level][slot];
    slots_[level][slot] = kNilNode;
    while (idx != kNilNode) {
      const Node& n = node(idx);
      const std::uint32_t next = n.next;
      const Key key{n.at, n.tie, n.seq, idx};
      ++stats_.wheel_cascades;
      if (tick_of(key.at) <= cur_tick_) {
        push_due(key);
      } else {
        wheel_insert(key);
      }
      idx = next;
    }
    if (!due_.empty()) return;
  }
}

V_HOT_PATH
bool EventLoop::step_untimed() {
  if (due_.empty()) {
    if (pending_ == 0) return false;
    advance();
  }
  const Key key = pop_due();
  --pending_;
  // Move the action out and retire its node BEFORE running it: whatever
  // the action schedules reuses the just-freed node, keeping the hot
  // self-rescheduling path inside one warm slab line.
  Action action = std::move(node(key.node).action);
  free_node(key.node);
  now_ = key.at;
  ++executed_;
  if (fire_hook_ != nullptr) fire_hook_(fire_ctx_, now_);
  // Ambient context: the simulation is single-threaded, but loops nest
  // (domains inside domains in tests), so save and restore.
  AmbientContext& amb = ambient();
  const EventLoop* prev_loop = amb.loop;
  amb.loop = this;
  action();
  amb.loop = prev_loop;
  return true;
}

// Host-clock accounting (V-trace profiling) is batched around the run
// loops rather than read per event: two steady_clock reads cost ~60 ns,
// which at timer-wheel speeds would be a third of the whole event budget.
// wall_ns therefore covers event execution INCLUDING scheduler overhead —
// the number wall_vs_sim regressions actually care about.

bool EventLoop::step() {
#if V_TRACE_ENABLED
  const auto wall_start = std::chrono::steady_clock::now();
  const bool ran = step_untimed();
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return ran;
#else
  return step_untimed();
#endif
}

void EventLoop::run_until_idle() {
#if V_TRACE_ENABLED
  const auto wall_start = std::chrono::steady_clock::now();
#endif
  while (step_untimed()) {
  }
#if V_TRACE_ENABLED
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
#endif
}

void EventLoop::run_until(SimTime deadline) {
#if V_TRACE_ENABLED
  const auto wall_start = std::chrono::steady_clock::now();
#endif
  for (;;) {
    if (due_.empty()) {
      if (pending_ == 0) break;
      advance();  // moves events into the due heap; executes nothing, so
                  // overshooting the deadline here is harmless
    }
    if (due_.front().at > deadline) break;
    step_untimed();
  }
  if (now_ < deadline) now_ = deadline;
#if V_TRACE_ENABLED
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
#endif
}

}  // namespace v::sim
