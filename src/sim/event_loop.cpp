#include "sim/event_loop.hpp"

#include <utility>

namespace v::sim {

namespace {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.  Used to turn
/// (fuzz seed, sequence number) into a tie key so simultaneous events fire
/// in a seed-determined permutation of their scheduling order.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t EventLoop::tie_key(std::uint64_t seq) const noexcept {
  return fuzz_ ? mix64(fuzz_seed_ ^ mix64(seq)) : seq;
}

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{at, tie_key(seq), seq, std::move(action)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the action handle (std::function move would be nicer but top() is
  // const).  Events are small; the copy is a shared control block at worst.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

void EventLoop::run_until_idle() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace v::sim
