#include "sim/event_loop.hpp"

#include <utility>

#if V_TRACE_ENABLED
#include <chrono>
#endif

#include "common/log.hpp"
#include "sim/task.hpp"

namespace v::sim {

namespace {

/// VLOG bridge: every log line is stamped with the simulated time and pid
/// of whatever the ambient context says is running right now.
log_detail::Context ambient_log_context() {
  log_detail::Context ctx;
  const AmbientContext& amb = ambient();
  if (amb.loop != nullptr) {
    ctx.has_time = true;
    ctx.time_ns = amb.loop->now();
  }
  if (amb.fiber != nullptr) ctx.pid = amb.fiber->pid;
  return ctx;
}

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.  Used to turn
/// (fuzz seed, sequence number) into a tie key so simultaneous events fire
/// in a seed-determined permutation of their scheduling order.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EventLoop::EventLoop() {
  log_detail::set_context_provider(&ambient_log_context);
}

std::uint64_t EventLoop::tie_key(std::uint64_t seq) const noexcept {
  return fuzz_ ? mix64(fuzz_seed_ ^ mix64(seq)) : seq;
}

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{at, tie_key(seq), seq, std::move(action)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the action handle (std::function move would be nicer but top() is
  // const).  Events are small; the copy is a shared control block at worst.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  // Ambient context: the simulation is single-threaded, but loops nest
  // (domains inside domains in tests), so save and restore.
  AmbientContext& amb = ambient();
  const EventLoop* prev_loop = amb.loop;
  amb.loop = this;
#if V_TRACE_ENABLED
  const auto wall_start = std::chrono::steady_clock::now();
#endif
  ev.action();
#if V_TRACE_ENABLED
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
#endif
  amb.loop = prev_loop;
  return true;
}

void EventLoop::run_until_idle() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace v::sim
