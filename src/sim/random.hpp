// Deterministic random source for the simulation.
//
// All randomness in a run flows from one seeded generator so that runs are
// reproducible (DESIGN.md: determinism is a feature).
#pragma once

#include <cstdint>
#include <random>

namespace v::sim {

/// Seeded pseudo-random source.  One per Domain.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED5EEDULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Access the underlying engine (for std distributions / shuffles).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace v::sim
