// A FIFO condition awaitable over the event loop.
//
// Server teams (naming/csnh_server.hpp) park worker fibers on a WaitQueue
// while their shared work queue is empty; the receptionist notifies one
// waiter per enqueued item.  Wake-ups are FIFO and delivered as immediate
// events (at the current simulated time), so same-time orderings stay
// deterministic: waiters resume in the order they parked, interleaved with
// other events by the loop's sequence numbers.
//
// Unlike Waker (one pending resume, one party), a WaitQueue holds any
// number of parked fibers.  Kill-safety follows the ParkAwaiter pattern:
// the awaiter captures the fiber's state and throws FiberKilled on resume
// after kill.  A fiber killed while parked is simply never resumed by the
// queue; its suspended frame is reclaimed when the owning Fiber is
// destroyed (the same story as any suspended coroutine).
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/task.hpp"

namespace v::sim {

class WaitQueue {
 public:
  class Awaiter {
   public:
    Awaiter(WaitQueue& queue, FiberState* fiber) noexcept
        : queue_(queue), fiber_(fiber) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      queue_.waiters_.push_back(Parked{h, fiber_});
    }
    void await_resume() const {
      if (fiber_ != nullptr && fiber_->killed) throw FiberKilled{};
    }

   private:
    WaitQueue& queue_;
    FiberState* fiber_;  ///< raw on purpose — see awaitables.hpp lifetime
  };

  /// Park the calling fiber at the back of the queue.  The WaitQueue must
  /// outlive the suspension (server objects own both, see CsnhServer).
  [[nodiscard]] Awaiter wait(FiberState* fiber) {
    return Awaiter(*this, fiber);
  }

  /// Resume the front waiter (FIFO) via an immediate event.  Waiters whose
  /// fiber died while parked are discarded, not resumed: their frames are
  /// owned (and reclaimed) by the kernel's Fiber, and resuming them here
  /// after a host crash would touch a dead process.
  void notify_one(EventLoop& loop) {
    while (!waiters_.empty()) {
      Parked p = std::move(waiters_.front());
      waiters_.pop_front();
      if (p.fiber != nullptr && p.fiber->killed) continue;
      loop.schedule_after(0, [h = p.handle, f = p.fiber] {
        FiberRunScope scope(f);
        h.resume();
      });
      return;
    }
  }

  /// Resume every waiter, in FIFO order.
  void notify_all(EventLoop& loop) {
    const std::size_t n = waiters_.size();
    for (std::size_t i = 0; i < n && !waiters_.empty(); ++i) {
      notify_one(loop);
    }
  }

  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }

 private:
  struct Parked {
    std::coroutine_handle<> handle;
    FiberState* fiber;
  };
  std::deque<Parked> waiters_;
};

}  // namespace v::sim
