#include "sim/frame_pool.hpp"

namespace v::sim {

void* FramePool::allocate(std::size_t bytes) {
  const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
  if (V_FRAME_POOL_ENABLED && cls >= 1 && cls <= kClasses) {
    auto& bin = bins_[cls - 1];
    if (!bin.empty()) {
      void* frame = bin.back();
      bin.pop_back();
      ++stats_.frames_recycled;
      return frame;
    }
    ++stats_.frames_fresh;
    // Allocate the full class size so the block can be reused by any
    // same-class frame later.
    return ::operator new(cls * kClassBytes);
  }
  ++stats_.frames_fresh;
  return ::operator new(bytes);
}

void FramePool::deallocate(void* frame, std::size_t bytes) noexcept {
  const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
  if (V_FRAME_POOL_ENABLED && cls >= 1 && cls <= kClasses &&
      bins_[cls - 1].size() < kMaxPerClass) {
    bins_[cls - 1].push_back(frame);
    return;
  }
  ::operator delete(frame);
}

}  // namespace v::sim
