// Deterministic discrete-event loop.
//
// Every state change in the simulated V domain happens inside an event.
// Events at equal times fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
//
// Schedule-fuzz mode (enable_fuzz): same-timestamp ties are instead broken
// by a seeded hash of the sequence number, deterministically permuting the
// firing order of simultaneous events.  The scheduling-order tie rule is an
// implementation convenience, not a documented guarantee — correct sim code
// must not depend on which of two same-time events fires first (FIFO
// fairness is provided where it matters by WaitQueue and the server gate
// queues, which order waiters themselves).  The fuzzer explores exactly
// this freedom: same seed, same schedule; a failing seed reproduces the
// interleaving in one command.
//
// Scheduler (see DESIGN.md §4i): a hierarchical timer wheel — 6 levels of
// 64 slots over a 65.536 µs tick — feeding a small "due heap" that holds
// only the events of the tick being drained.  Insert and pop are O(1)
// amortized at wheel granularity; ordering WITHIN a tick goes through the
// due heap using the exact (at, tie, seq) key of the old priority_queue
// engine, so firing order (FIFO and fuzz-hash) is bit-identical to it.
// Events beyond the wheel horizon (2^36 ticks ≈ 52 simulated days) wait in
// an overflow heap and are promoted as the wheel cursor approaches.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"
#include "common/annotate.hpp"

namespace v::sim {

/// Counters the loop keeps about its own operation (beyond events_executed).
struct EventLoopStats {
  /// Times schedule_after was handed a negative delay and clamped it to 0.
  /// Always a bug in the caller (simulated time cannot run backwards);
  /// debug builds assert, release builds count so fuzz sweeps can flag
  /// time-travel bugs that only surface under permuted schedules.
  std::uint64_t negative_delay_clamps = 0;
  /// Events redistributed from a higher wheel level toward level 0 when the
  /// cursor entered their slot.  Each event cascades at most 5 times; a
  /// high rate relative to events_executed means delays routinely span
  /// level boundaries (expected for multi-second timeouts, worth a look if
  /// sub-millisecond traffic dominates it).
  std::uint64_t wheel_cascades = 0;
  /// Events promoted out of the far-future overflow heap into the wheel.
  /// Nonzero only when something schedules > ~52 simulated days ahead.
  std::uint64_t overflow_promotions = 0;
  /// Scheduled actions that fit InlineAction's buffer (no allocation) vs.
  /// ones that spilled to a heap node.  actions_heap > 0 in a hot loop
  /// means some closure outgrew the inline budget — find it and shrink it.
  std::uint64_t actions_inline = 0;
  std::uint64_t actions_heap = 0;
#if V_TRACE_ENABLED
  /// Host-clock nanoseconds spent running events — actions plus scheduler
  /// overhead, accumulated per run_until_idle/run_until burst rather than
  /// per event (a per-event clock read would dominate the hot path at
  /// timer-wheel speeds).  V-trace profiling; host time only — simulated
  /// behavior is identical with it compiled out.
  std::uint64_t wall_ns = 0;
#endif
};

/// Discrete-event scheduler.  Not thread-safe; the whole simulation is
/// single-threaded by design (determinism is a feature, see DESIGN.md).
class EventLoop {
 public:
  /// Move-only small-buffer callable (see action.hpp).  Scheduling a lambda
  /// that fits inline never heap-allocates.
  using Action = InlineAction;

  /// Registers the ambient log-context bridge (VLOG time/pid prefixes) on
  /// first construction; otherwise stateless setup.
  EventLoop();

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` from now.  Negative delays are a
  /// caller bug: debug builds assert, all builds clamp to 0 and count the
  /// occurrence in stats().
  V_HOT_PATH
  void schedule_after(SimDuration delay, Action action) {
    if (delay < 0) {
      ++stats_.negative_delay_clamps;
      assert(!"negative delay passed to EventLoop::schedule_after");
      delay = 0;
    }
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run one event.  Returns false when the queue is empty.  (Wall-clock
  /// profiling reads the host clock per call here; the run_* loops batch
  /// it instead — see event_loop.cpp.)
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until simulated time would exceed `deadline` or the queue drains.
  /// Events at exactly `deadline` still run.
  void run_until(SimTime deadline);

  /// Number of events executed so far (for tests and throughput benches).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  [[nodiscard]] const EventLoopStats& stats() const noexcept { return stats_; }

#if V_TRACE_ENABLED
  /// Host seconds burned per simulated second so far (V-trace profiling).
  /// > 1 means the simulation runs slower than real time on this host.
  [[nodiscard]] double wall_vs_sim() const noexcept {
    if (now_ <= 0) return 0.0;
    return static_cast<double>(stats_.wall_ns) / static_cast<double>(now_);
  }
#endif

  /// Per-event dispatch hook (the V-blackbox flight recorder's "timer
  /// fires" channel): called once per executed event with the event's
  /// firing time, after now() advances and before the action runs.  A raw
  /// function pointer on purpose — this sits on the hottest loop in the
  /// repo and must cost one predictable branch when unset (std::function
  /// would add an indirect call through a type-erased thunk plus a
  /// possible allocation at install time).  The hook observes host-side
  /// only: it must not schedule events or touch simulated state.
  using FireHook = void (*)(void* ctx, SimTime at) noexcept;
  void set_fire_hook(FireHook hook, void* ctx) noexcept {
    fire_hook_ = hook;
    fire_ctx_ = ctx;
  }

  /// Enter schedule-fuzz mode: break same-timestamp ties by a hash of
  /// (seed, seq) instead of scheduling order.  Fully deterministic for a
  /// given seed.  Call before scheduling anything; events already queued
  /// keep their FIFO tie keys.
  void enable_fuzz(std::uint64_t seed) noexcept {
    fuzz_ = true;
    fuzz_seed_ = seed;
  }
  [[nodiscard]] bool fuzz_enabled() const noexcept { return fuzz_; }
  [[nodiscard]] std::uint64_t fuzz_seed() const noexcept { return fuzz_seed_; }

 private:
  /// Ordering key of one pending event, plus the slab index of its action.
  /// Keys are 32-byte PODs: everything the scheduler shuffles (heap sifts,
  /// wheel cascades) copies keys, never actions — the action is written
  /// once into its slab node and read once at execution.
  struct Key {
    SimTime at;
    std::uint64_t tie;  ///< seq normally; seeded hash of seq under fuzz
    std::uint64_t seq;
    std::uint32_t node;  ///< slab index of the action
  };
  /// Heap comparator: "a fires later than b".  A binary heap under this
  /// predicate keeps the EARLIEST event at the front — the same total
  /// order (at, tie, seq) the old priority_queue engine used.
  struct Later {
    bool operator()(const Key& a, const Key& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };
  /// Slab node: the parked action.  Nodes live in fixed chunks (stable
  /// addresses, no vector-growth relocation) and recycle through a free
  /// list — after warm-up the loop schedules without allocating.  While
  /// an event waits in a wheel slot, its node ALSO holds the ordering key
  /// (at/tie/seq) and `next` threads the slot's intrusive chain — wheel
  /// buckets are node chains, not vectors, so parking an event never
  /// allocates either.  A free node reuses `next` as the free-list link.
  struct Node {
    Action action;
    SimTime at = 0;
    std::uint64_t tie = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNilNode;
  };
  static constexpr std::uint32_t kNilNode = 0xffffffffu;
  static constexpr std::size_t kChunkBits = 9;  // 512 nodes ≈ 88 KiB / chunk

  // Wheel geometry.  A tick is 2^16 ns = 65.536 µs — comfortably below the
  // smallest calibrated delay (the 385 µs local hop), so same-tick
  // collisions of DIFFERENT timestamps are rare and cheaply resolved by
  // the due heap.  Six levels of 64 slots cover 2^36 ticks ≈ 52 simulated
  // days; beyond that, the overflow heap.
  static constexpr int kTickBits = 16;
  static constexpr int kSlotBits = 6;
  static constexpr int kLevels = 6;
  static constexpr std::size_t kSlotsPerLevel = std::size_t{1} << kSlotBits;
  static constexpr int kWheelBits = kLevels * kSlotBits;  // 36

  V_HOT_PATH
  static std::uint64_t tick_of(SimTime at) noexcept {
    return static_cast<std::uint64_t>(at) >> kTickBits;
  }

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept;

  bool step_untimed();

  V_HOT_PATH
  Node& node(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkBits][idx & ((1u << kChunkBits) - 1)];
  }
  std::uint32_t alloc_node(Action&& action);
  void free_node(std::uint32_t idx) noexcept;

  void push_due(const Key& key);
  Key pop_due();
  /// Insert a key whose tick is strictly ahead of the cursor.
  void wheel_insert(const Key& key);
  /// Refill the due heap from the wheel/overflow.  Precondition: due heap
  /// empty, pending_ > 0.  Postcondition: due heap non-empty, cursor on
  /// the earliest pending tick.
  void advance();

  FireHook fire_hook_ = nullptr;
  void* fire_ctx_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool fuzz_ = false;
  std::uint64_t fuzz_seed_ = 0;
  EventLoopStats stats_;

  /// Wheel cursor: every event with tick ≤ cur_tick_ has been moved to the
  /// due heap; the wheel and overflow hold only ticks strictly ahead.
  std::uint64_t cur_tick_ = 0;
  std::size_t pending_ = 0;  ///< due + wheel + overflow
  std::vector<Key> due_;     ///< binary heap (Later): the tick being drained
  std::vector<Key> overflow_;  ///< binary heap: > 2^36 ticks ahead
  std::uint64_t occupied_[kLevels] = {};  ///< per-level slot bitmaps
  /// Wheel slots: head node index of each slot's intrusive chain (the
  /// keys live in the slab nodes; see Node).  Chain order is arbitrary —
  /// the due heap's strict (at, tie, seq) order, with seq unique, fixes
  /// the firing order regardless of how a slot was threaded.
  std::uint32_t slots_[kLevels][kSlotsPerLevel];
  std::vector<std::unique_ptr<Node[]>> chunks_;  ///< action slab
  std::uint32_t free_head_ = kNilNode;
  std::uint32_t slab_used_ = 0;  ///< high-water mark of allocated nodes
};

}  // namespace v::sim
