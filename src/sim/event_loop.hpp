// Deterministic discrete-event loop.
//
// Every state change in the simulated V domain happens inside an event.
// Events at equal times fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
//
// Schedule-fuzz mode (enable_fuzz): same-timestamp ties are instead broken
// by a seeded hash of the sequence number, deterministically permuting the
// firing order of simultaneous events.  The scheduling-order tie rule is an
// implementation convenience, not a documented guarantee — correct sim code
// must not depend on which of two same-time events fires first (FIFO
// fairness is provided where it matters by WaitQueue and the server gate
// queues, which order waiters themselves).  The fuzzer explores exactly
// this freedom: same seed, same schedule; a failing seed reproduces the
// interleaving in one command.
#pragma once

#ifndef V_TRACE_ENABLED
#define V_TRACE_ENABLED 1
#endif

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace v::sim {

/// Counters the loop keeps about its own operation (beyond events_executed).
struct EventLoopStats {
  /// Times schedule_after was handed a negative delay and clamped it to 0.
  /// Always a bug in the caller (simulated time cannot run backwards);
  /// debug builds assert, release builds count so fuzz sweeps can flag
  /// time-travel bugs that only surface under permuted schedules.
  std::uint64_t negative_delay_clamps = 0;
#if V_TRACE_ENABLED
  /// Host-clock nanoseconds spent inside event actions (V-trace profiling;
  /// host time only — simulated behavior is identical with it compiled out).
  std::uint64_t wall_ns = 0;
#endif
};

/// Discrete-event scheduler.  Not thread-safe; the whole simulation is
/// single-threaded by design (determinism is a feature, see DESIGN.md).
class EventLoop {
 public:
  using Action = std::function<void()>;

  /// Registers the ambient log-context bridge (VLOG time/pid prefixes) on
  /// first construction; otherwise stateless setup.
  EventLoop();

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` from now.  Negative delays are a
  /// caller bug: debug builds assert, all builds clamp to 0 and count the
  /// occurrence in stats().
  void schedule_after(SimDuration delay, Action action) {
    if (delay < 0) {
      ++stats_.negative_delay_clamps;
      assert(!"negative delay passed to EventLoop::schedule_after");
      delay = 0;
    }
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until simulated time would exceed `deadline` or the queue drains.
  /// Events at exactly `deadline` still run.
  void run_until(SimTime deadline);

  /// Number of events executed so far (for tests and throughput benches).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  [[nodiscard]] const EventLoopStats& stats() const noexcept { return stats_; }

#if V_TRACE_ENABLED
  /// Host seconds burned per simulated second so far (V-trace profiling).
  /// > 1 means the simulation runs slower than real time on this host.
  [[nodiscard]] double wall_vs_sim() const noexcept {
    if (now_ <= 0) return 0.0;
    return static_cast<double>(stats_.wall_ns) / static_cast<double>(now_);
  }
#endif

  /// Enter schedule-fuzz mode: break same-timestamp ties by a hash of
  /// (seed, seq) instead of scheduling order.  Fully deterministic for a
  /// given seed.  Call before scheduling anything; events already queued
  /// keep their FIFO tie keys.
  void enable_fuzz(std::uint64_t seed) noexcept {
    fuzz_ = true;
    fuzz_seed_ = seed;
  }
  [[nodiscard]] bool fuzz_enabled() const noexcept { return fuzz_; }
  [[nodiscard]] std::uint64_t fuzz_seed() const noexcept { return fuzz_seed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t tie;  ///< seq normally; seeded hash of seq under fuzz
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool fuzz_ = false;
  std::uint64_t fuzz_seed_ = 0;
  EventLoopStats stats_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace v::sim
