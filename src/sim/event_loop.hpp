// Deterministic discrete-event loop.
//
// Every state change in the simulated V domain happens inside an event.
// Events at equal times fire in scheduling order (a monotone sequence number
// breaks ties), so runs are fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace v::sim {

/// Discrete-event scheduler.  Not thread-safe; the whole simulation is
/// single-threaded by design (determinism is a feature, see DESIGN.md).
class EventLoop {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` from now (negative delays clamp to 0).
  void schedule_after(SimDuration delay, Action action) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(action));
  }

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until simulated time would exceed `deadline` or the queue drains.
  /// Events at exactly `deadline` still run.
  void run_until(SimTime deadline);

  /// Number of events executed so far (for tests and throughput benches).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace v::sim
