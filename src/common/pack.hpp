// Little-endian field packing for fixed-format messages.
//
// V request/reply messages are fixed 32-byte records whose interpretation
// depends on a leading 16-bit code (paper section 3.2).  These helpers
// read/write the 16- and 32-bit fields of such records without alignment or
// aliasing hazards.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace v {

/// Write a 16-bit little-endian value at byte offset `off`.
inline void put_u16(std::span<std::byte> buf, std::size_t off,
                    std::uint16_t value) noexcept {
  buf[off] = static_cast<std::byte>(value & 0xff);
  buf[off + 1] = static_cast<std::byte>((value >> 8) & 0xff);
}

/// Write a 32-bit little-endian value at byte offset `off`.
inline void put_u32(std::span<std::byte> buf, std::size_t off,
                    std::uint32_t value) noexcept {
  put_u16(buf, off, static_cast<std::uint16_t>(value & 0xffff));
  put_u16(buf, off + 2, static_cast<std::uint16_t>(value >> 16));
}

/// Read a 16-bit little-endian value at byte offset `off`.
inline std::uint16_t get_u16(std::span<const std::byte> buf,
                             std::size_t off) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<unsigned>(buf[off]) |
      (static_cast<unsigned>(buf[off + 1]) << 8));
}

/// Read a 32-bit little-endian value at byte offset `off`.
inline std::uint32_t get_u32(std::span<const std::byte> buf,
                             std::size_t off) noexcept {
  return static_cast<std::uint32_t>(get_u16(buf, off)) |
         (static_cast<std::uint32_t>(get_u16(buf, off + 2)) << 16);
}

}  // namespace v
