#include "common/reply_codes.hpp"

namespace v {

std::string_view to_string(ReplyCode code) noexcept {
  switch (code) {
    case ReplyCode::kOk: return "OK";
    case ReplyCode::kNotFound: return "NOT_FOUND";
    case ReplyCode::kBadArgs: return "BAD_ARGS";
    case ReplyCode::kNoPermission: return "NO_PERMISSION";
    case ReplyCode::kIllegalRequest: return "ILLEGAL_REQUEST";
    case ReplyCode::kBadState: return "BAD_STATE";
    case ReplyCode::kNoServerResources: return "NO_SERVER_RESOURCES";
    case ReplyCode::kInvalidContext: return "INVALID_CONTEXT";
    case ReplyCode::kNotAContext: return "NOT_A_CONTEXT";
    case ReplyCode::kNameExists: return "NAME_EXISTS";
    case ReplyCode::kInvalidInstance: return "INVALID_INSTANCE";
    case ReplyCode::kEndOfFile: return "END_OF_FILE";
    case ReplyCode::kNoReply: return "NO_REPLY";
    case ReplyCode::kNotReadable: return "NOT_READABLE";
    case ReplyCode::kNotWriteable: return "NOT_WRITEABLE";
    case ReplyCode::kForwardLoop: return "FORWARD_LOOP";
    case ReplyCode::kNoInverse: return "NO_INVERSE";
    case ReplyCode::kTimeout: return "TIMEOUT";
    case ReplyCode::kStaleBinding: return "STALE_BINDING";
    case ReplyCode::kBusy: return "BUSY";
    case ReplyCode::kStaleContext: return "STALE_CONTEXT";
  }
  return "UNKNOWN_REPLY_CODE";
}

}  // namespace v
