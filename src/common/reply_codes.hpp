// Standard system reply codes.
//
// The V-System message standards (paper section 3.2) say every reply message
// begins with a reply code, "usually one of a set of standard system
// replies", indicating whether the request succeeded or failed and, in the
// latter case, the reason.  This is that standard set, extended with the
// codes the name-handling protocol (section 5) needs.
#pragma once

#include <cstdint>
#include <string_view>

namespace v {

/// Standard reply codes carried in the first 16-bit field of every reply
/// message.  Values are stable: they appear in serialized messages.
enum class ReplyCode : std::uint16_t {
  kOk = 0,                  ///< Request succeeded.
  kNotFound = 1,            ///< Named object or component does not exist.
  kBadArgs = 2,             ///< Malformed request message.
  kNoPermission = 3,        ///< Operation not permitted on this object.
  kIllegalRequest = 4,      ///< Server does not implement this request code.
  kBadState = 5,            ///< Object exists but is in the wrong state.
  kNoServerResources = 6,   ///< Server out of tables/buffers.
  kInvalidContext = 7,      ///< Context id is not valid on this server.
  kNotAContext = 8,         ///< Name resolved to a leaf where a context was
                            ///< required (e.g. "a/b" where "a" is a file).
  kNameExists = 9,          ///< AddContextName / create collided.
  kInvalidInstance = 10,    ///< I/O protocol: no such object instance.
  kEndOfFile = 11,          ///< I/O protocol: read past last block.
  kNoReply = 12,            ///< Transport: destination vanished (crash) or
                            ///< send to a dead/unknown process id.
  kNotReadable = 13,        ///< I/O protocol: instance cannot be read.
  kNotWriteable = 14,       ///< I/O protocol: instance cannot be written.
  kForwardLoop = 15,        ///< Name mapping forwarded too many times.
  kNoInverse = 16,          ///< Reverse name mapping has no defined result
                            ///< (paper section 6's "pathological cases").
  kTimeout = 17,            ///< Operation timed out (group sends).
  kStaleBinding = 18,       ///< Centralized baseline: registry entry points
                            ///< at an object that no longer exists.
  kBusy = 19,               ///< Server team saturated: work queue full, the
                            ///< request was shed.  Clients may retry.
  kStaleContext = 20,       ///< Request carried an expected context
                            ///< generation that no longer matches: the name
                            ///< space changed since the binding was learned.
                            ///< The request had no effect; re-resolve.
};

/// Human-readable name for a reply code (for logs, tests and examples).
std::string_view to_string(ReplyCode code) noexcept;

/// True when the code denotes success.
constexpr bool ok(ReplyCode code) noexcept { return code == ReplyCode::kOk; }

}  // namespace v
