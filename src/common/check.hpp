// Invariant checks.
//
// V_CHECK guards invariants that must hold regardless of build type; a
// violation is a programming error and throws std::logic_error so tests can
// observe it and examples fail loudly.
#pragma once

#include <stdexcept>
#include <string>

namespace v::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw std::logic_error(std::string("V_CHECK failed: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}
}  // namespace v::detail

#define V_CHECK(expr)                                         \
  do {                                                        \
    if (!(expr)) ::v::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
