#include "common/log.hpp"

#include <cstdio>

namespace v::log_detail {

LogLevel& threshold() noexcept {
  static LogLevel level = LogLevel::kOff;
  return level;
}

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

ContextProvider& provider() noexcept {
  static ContextProvider p = nullptr;
  return p;
}

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

void set_context_provider(ContextProvider p) noexcept { provider() = p; }

void set_sink(Sink s) { sink() = std::move(s); }

void emit(LogLevel level, std::string_view component, std::string_view text) {
  // "[INFO ] [t=12.345ms pid=0x00020003] fs: opened x" — the t=/pid= prefix
  // appears whenever the ambient provider knows them, so log lines can be
  // correlated with V-trace spans.
  char prefix[64];
  prefix[0] = '\0';
  if (ContextProvider p = provider()) {
    const Context ctx = p();
    if (ctx.has_time && ctx.pid != 0) {
      std::snprintf(prefix, sizeof prefix, "[t=%.3fms pid=0x%08x] ",
                    static_cast<double>(ctx.time_ns) / 1e6, ctx.pid);
    } else if (ctx.has_time) {
      std::snprintf(prefix, sizeof prefix, "[t=%.3fms] ",
                    static_cast<double>(ctx.time_ns) / 1e6);
    }
  }
  std::string line;
  line.reserve(component.size() + text.size() + 80);
  line += "[";
  line += level_tag(level);
  line += "] ";
  line += prefix;
  line.append(component);
  line += ": ";
  line.append(text);
  if (sink()) {
    sink()(level, component, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace v::log_detail
