#include "common/log.hpp"

#include <cstdio>

namespace v::log_detail {

LogLevel& threshold() noexcept {
  static LogLevel level = LogLevel::kOff;
  return level;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void emit(LogLevel level, std::string_view component, std::string_view text) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(text.size()), text.data());
}

}  // namespace v::log_detail
