// Open-addressing hash map for the kernel's hot tables.
//
// The kernel's per-message lookups (pid -> record, client -> transaction
// slot, service -> registration) all key on small integers and never erase
// individual entries — entries accumulate until the table is cleared
// wholesale (host crash) or outlive the run.  That access pattern makes the
// general node-based std::map / std::unordered_map a poor fit: every insert
// allocates, every lookup chases a pointer into cold memory.
//
// FlatMap stores slots contiguously with linear probing over a power-of-two
// capacity.  Lookups touch one cache line in the common case; inserts
// allocate only on growth.  Deliberately minimal:
//   - per-entry erase uses tombstones: probes walk through them, inserts
//     reuse the first one passed, and any rehash (growth or a same-capacity
//     compaction once deleted slots crowd the table) purges them all,
//   - no iteration (nothing in the kernel walks these tables, which is also
//     what makes the container swap invisible to deterministic runs — there
//     is no container order to leak into event order),
//   - keys must convert to uint64_t (integers and scoped enums).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace v {

template <typename Key, typename Value>
class FlatMap {
 public:
  struct Slot {
    Key first;
    Value second;
  };
  using iterator = Slot*;
  using const_iterator = const Slot*;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Sentinel returned by find() on miss; compare with `it == end()` just
  /// like the node-based maps this replaces.
  [[nodiscard]] iterator end() noexcept { return nullptr; }
  [[nodiscard]] const_iterator end() const noexcept { return nullptr; }

  [[nodiscard]] iterator find(const Key& key) noexcept {
    if (size_ == 0) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (states_[i] == kEmpty) return nullptr;
      if (states_[i] == kFull && slots_[i].first == key) return &slots_[i];
    }
  }
  [[nodiscard]] const_iterator find(const Key& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert-or-find, like std::map::operator[]: default-constructs the
  /// value on first access.  A new key reuses the first tombstone passed on
  /// its probe path, so erase/insert churn does not stretch probes forever.
  Value& operator[](const Key& key) {
    if (size_ + tombs_ + 1 > (capacity() * 7) / 8) grow();
    std::size_t tomb = kNoSlot;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (states_[i] == kEmpty) {
        if (tomb != kNoSlot) {
          i = tomb;
          --tombs_;
        }
        states_[i] = kFull;
        ++size_;
        slots_[i].first = key;
        return slots_[i].second;
      }
      if (states_[i] == kTomb) {
        if (tomb == kNoSlot) tomb = i;
        continue;
      }
      if (slots_[i].first == key) return slots_[i].second;
    }
  }

  /// Erase by key: the slot becomes a tombstone (probes walk through it,
  /// the next insert on this path may reuse it).  Returns entries removed.
  std::size_t erase(const Key& key) noexcept {
    if (size_ == 0) return 0;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (states_[i] == kEmpty) return 0;
      if (states_[i] == kFull && slots_[i].first == key) {
        slots_[i] = Slot{};
        states_[i] = kTomb;
        --size_;
        ++tombs_;
        return 1;
      }
    }
  }

  /// Drop all entries, keeping capacity (crash-path wholesale reset).
  void clear() noexcept {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) slots_[i] = Slot{};
      states_[i] = kEmpty;
    }
    size_ = 0;
    tombs_ = 0;
  }

  /// Pre-size so the first `n` inserts never rehash.
  void reserve(std::size_t n) {
    std::size_t cap = capacity();
    while (n + 1 > (cap * 7) / 8) cap = cap == 0 ? kMinCapacity : cap * 2;
    if (cap != capacity()) rehash(cap);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t mask() const noexcept { return capacity() - 1; }

  /// splitmix64 finalizer — scrambles low-entropy keys (sequential service
  /// ids, random-but-clustered pids) across the whole table.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t index_of(const Key& key) const noexcept {
    return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) &
           mask();
  }

  void grow() {
    // Double only when live entries justify it; a table crowded mostly by
    // tombstones rehashes at the same capacity, which purges them.
    if (capacity() == 0) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > (capacity() * 7) / 16) {
      rehash(capacity() * 2);
    } else {
      rehash(capacity());
    }
  }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap > size_);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_ = std::vector<Slot>(new_cap);  // value-init: no Value copies
    states_.assign(new_cap, 0);
    size_ = 0;
    tombs_ = 0;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      (*this)[old_slots[i].first] = std::move(old_slots[i].second);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace v
