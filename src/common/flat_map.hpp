// Open-addressing hash map for the kernel's hot tables.
//
// The kernel's per-message lookups (pid -> record, client -> transaction
// slot, service -> registration) all key on small integers and never erase
// individual entries — entries accumulate until the table is cleared
// wholesale (host crash) or outlive the run.  That access pattern makes the
// general node-based std::map / std::unordered_map a poor fit: every insert
// allocates, every lookup chases a pointer into cold memory.
//
// FlatMap stores slots contiguously with linear probing over a power-of-two
// capacity.  Lookups touch one cache line in the common case; inserts
// allocate only on growth.  Deliberately minimal:
//   - no per-entry erase (the kernel never needs it; omitting tombstones
//     keeps probes short and the invariants trivial),
//   - no iteration (nothing in the kernel walks these tables, which is also
//     what makes the container swap invisible to deterministic runs — there
//     is no container order to leak into event order),
//   - keys must convert to uint64_t (integers and scoped enums).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace v {

template <typename Key, typename Value>
class FlatMap {
 public:
  struct Slot {
    Key first;
    Value second;
  };
  using iterator = Slot*;
  using const_iterator = const Slot*;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Sentinel returned by find() on miss; compare with `it == end()` just
  /// like the node-based maps this replaces.
  [[nodiscard]] iterator end() noexcept { return nullptr; }
  [[nodiscard]] const_iterator end() const noexcept { return nullptr; }

  [[nodiscard]] iterator find(const Key& key) noexcept {
    if (size_ == 0) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (!states_[i]) return nullptr;
      if (slots_[i].first == key) return &slots_[i];
    }
  }
  [[nodiscard]] const_iterator find(const Key& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert-or-find, like std::map::operator[]: default-constructs the
  /// value on first access.
  Value& operator[](const Key& key) {
    if (size_ + 1 > (capacity() * 7) / 8) grow();
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (!states_[i]) {
        states_[i] = 1;
        ++size_;
        slots_[i].first = key;
        return slots_[i].second;
      }
      if (slots_[i].first == key) return slots_[i].second;
    }
  }

  /// Drop all entries, keeping capacity (crash-path wholesale reset).
  void clear() noexcept {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i]) slots_[i] = Slot{};
      states_[i] = 0;
    }
    size_ = 0;
  }

  /// Pre-size so the first `n` inserts never rehash.
  void reserve(std::size_t n) {
    std::size_t cap = capacity();
    while (n + 1 > (cap * 7) / 8) cap = cap == 0 ? kMinCapacity : cap * 2;
    if (cap != capacity()) rehash(cap);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t mask() const noexcept { return capacity() - 1; }

  /// splitmix64 finalizer — scrambles low-entropy keys (sequential service
  /// ids, random-but-clustered pids) across the whole table.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t index_of(const Key& key) const noexcept {
    return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) &
           mask();
  }

  void grow() { rehash(capacity() == 0 ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap > size_);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_ = std::vector<Slot>(new_cap);  // value-init: no Value copies
    states_.assign(new_cap, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (!old_states[i]) continue;
      (*this)[old_slots[i].first] = std::move(old_slots[i].second);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
};

}  // namespace v
