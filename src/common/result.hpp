// Result<T>: a value or a ReplyCode.
//
// Domain-level failures in the protocols (name not found, bad context, ...)
// are expected outcomes, not programming errors, so they travel as values
// rather than exceptions.  Exceptions are reserved for invariant violations.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/reply_codes.hpp"

namespace v {

/// Outcome of a protocol operation: either a T, or the ReplyCode explaining
/// why there is no T.  A default-constructed Result is kOk only for
/// Result<void>-like uses via the Status alias below.
template <typename T>
class Result {
 public:
  /// Successful result.
  Result(T value) : code_(ReplyCode::kOk), value_(std::move(value)) {}
  /// Failed result.  `code` must not be kOk (that would be a success with
  /// no value, which is a logic error).
  Result(ReplyCode code) : code_(code) {
    if (code == ReplyCode::kOk) {
      throw std::logic_error("Result<T>: kOk without a value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == ReplyCode::kOk; }
  [[nodiscard]] ReplyCode code() const noexcept { return code_; }

  /// Access the value; throws if the result is a failure.  Use only after
  /// checking ok(), or in tests where a failure should abort loudly.
  [[nodiscard]] T& value() {
    require();
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    require();
    return *value_;
  }

  /// Move the value out; throws if the result is a failure.
  [[nodiscard]] T take() {
    require();
    return std::move(*value_);
  }

  /// Value if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  explicit operator bool() const noexcept { return ok(); }

 private:
  void require() const {
    if (!ok()) {
      throw std::runtime_error("Result: access to failed result: " +
                               std::string(to_string(code_)));
    }
  }

  ReplyCode code_;
  std::optional<T> value_;
};

/// Status of an operation with no result value.
using Status = ReplyCode;

}  // namespace v
