// Minimal leveled logger for the simulator.
//
// Logging is off by default so tests and benches stay quiet; examples turn
// on kInfo to narrate what the simulated domain is doing.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace v {

/// Log severity, in increasing order of importance.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace log_detail {
LogLevel& threshold() noexcept;
void emit(LogLevel level, std::string_view component, std::string_view text);

/// Ambient execution context stamped onto every line when a provider is
/// installed (the simulator registers one reading the current EventLoop and
/// fiber, so log lines correlate with traces by time and pid).
struct Context {
  bool has_time = false;
  std::int64_t time_ns = 0;  ///< simulated time
  std::uint32_t pid = 0;     ///< current simulated process (0 = none)
};
using ContextProvider = Context (*)();
void set_context_provider(ContextProvider provider) noexcept;

/// Where formatted lines go.  Default (null sink): stderr.
using Sink =
    std::function<void(LogLevel, std::string_view component,
                       std::string_view line)>;
void set_sink(Sink sink);
}  // namespace log_detail

/// Redirect log output, e.g. to capture lines in tests.  The sink receives
/// the fully formatted line (context prefix included, no trailing newline).
/// Pass nullptr to restore the default stderr output.
inline void set_log_sink(log_detail::Sink sink) {
  log_detail::set_sink(std::move(sink));
}

/// Set the global log threshold; messages below it are discarded.
inline void set_log_level(LogLevel level) noexcept {
  log_detail::threshold() = level;
}

/// Current global log threshold.
inline LogLevel log_level() noexcept { return log_detail::threshold(); }

/// Stream-style log statement:  VLOG(kInfo, "fs") << "opened " << name;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component),
        enabled_(level >= log_detail::threshold()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) log_detail::emit(level_, component_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace v

#define VLOG(level, component) ::v::LogLine(::v::LogLevel::level, component)
