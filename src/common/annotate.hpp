// V-lint annotation vocabulary (DESIGN.md 4j).
//
// These macros mark the invariant-bearing functions that tools/vlint
// proves properties about.  Under clang they lower to [[clang::annotate]]
// so a libclang-based checker can find them in the AST; under every other
// compiler they expand to nothing and the program is unchanged.  The
// textual vlint engine (tools/vlint/vlint.py) reads the macro tokens
// straight from the source, so the checks run even on a GCC-only host.
//
// The vocabulary:
//
//   V_GATED_MUTATION  The function is a gated name-mutation hook: it runs
//                     under the per-(context,leaf) mutation gate, must call
//                     note_name_write() on every path before returning
//                     success, and every call site must bump the context
//                     generation when it succeeds (rule gate-generation).
//                     Being under the gate also forbids kernel sends and
//                     WaitQueue waits in its body (rule suspend-under-gate).
//
//   V_HOT_PATH        The function is on a measured hot path (timer-wheel
//                     dispatch, InlineAction invoke, kernel send/reply,
//                     warm cached open).  Its body must not allocate
//                     (operator new, make_unique/make_shared), construct a
//                     std::function, or mutate a node-based container, and
//                     any project function it calls must itself be
//                     V_HOT_PATH or explicitly allowed (rule hot-path-alloc).
//
//   V_NO_SUSPEND      The function must contain no suspension point at all
//                     (no co_await): callers rely on it running atomically
//                     between two statements of their own (rule
//                     suspend-under-gate).
//
//   V_BORROWS_SPAN    The coroutine takes a reference / std::span /
//                     string_view parameter and deliberately uses it after
//                     a suspension point.  The annotation is a documented
//                     contract that the caller keeps the referent alive
//                     across every co_await (e.g. the kernel pins a
//                     sender's read segment for the whole transaction).
//                     Without it, rule coro-param-lifetime flags the use.
#pragma once

#if defined(__clang__)
#define V_GATED_MUTATION [[clang::annotate("v::gated_mutation")]]
#define V_HOT_PATH [[clang::annotate("v::hot_path")]]
#define V_NO_SUSPEND [[clang::annotate("v::no_suspend")]]
#define V_BORROWS_SPAN [[clang::annotate("v::borrows_span")]]
#else
#define V_GATED_MUTATION
#define V_HOT_PATH
#define V_NO_SUSPEND
#define V_BORROWS_SPAN
#endif
