// Replacement global allocation operators that count (see alloc_probe.hpp
// for the linking and sanitizer rules).  The simulator is single-threaded
// by design, so plain counters suffice.

#include "chk/alloc_probe.hpp"

#if V_CHECKS_ENABLED

#include <cstdlib>
#include <new>

// Mirror sim::FramePool's sanitizer detection: under ASan the interposed
// allocator must not be displaced.
#if defined(__SANITIZE_ADDRESS__)
#define V_ALLOC_PROBE_INSTALLED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define V_ALLOC_PROBE_INSTALLED 0
#else
#define V_ALLOC_PROBE_INSTALLED 1
#endif
#else
#define V_ALLOC_PROBE_INSTALLED 1
#endif

namespace {
v::chk::AllocCounters g_counters;
}  // namespace

namespace v::chk {

AllocCounters alloc_counters() noexcept { return g_counters; }

bool alloc_probe_active() noexcept { return V_ALLOC_PROBE_INSTALLED != 0; }

}  // namespace v::chk

#if V_ALLOC_PROBE_INSTALLED

namespace {

void* counted_alloc(std::size_t size) {
  ++g_counters.allocations;
  g_counters.bytes += size;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ++g_counters.frees;
  std::free(ptr);
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  ++g_counters.allocations;
  g_counters.bytes += size;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}

#endif  // V_ALLOC_PROBE_INSTALLED
#endif  // V_CHECKS_ENABLED
