// V-check layer 1 (front end): annotation wrappers for shared server state.
//
// SharedCell<T> wraps a piece of state shared between cooperatively
// scheduled sim processes (a server's instance table, a team's work queue,
// a pipe buffer).  Access goes through read()/write() handles whose
// AccessGuard registers the access in the cell's CellState for as long as
// the handle lives.  A handle held across a suspension point therefore
// overlaps any access another process makes in between — and a write
// overlapping another process's outstanding read or write throws RaceError
// naming both sim processes, the cell, and both sim timestamps.
//
// Momentary accesses (guard scoped to a statement, no co_await inside) are
// the common case and can never conflict: the simulation is single-threaded
// between yield points.  The detector's whole job is catching accesses
// that — deliberately or by refactoring accident — span a suspension.
//
// Zero-cost when disabled: AccessGuard and the handles collapse to a bare
// pointer wrapper; SharedCell<T> stores only the T.
#pragma once

#include <sstream>
#include <string_view>
#include <utility>

#include "chk/ledger.hpp"
#include "ipc/kernel.hpp"

namespace v::chk {

#if V_CHECKS_ENABLED

/// Registers one read or write access for its lifetime; throws RaceError
/// from the constructor when the access conflicts with an outstanding
/// access by another sim process.
class AccessGuard {
 public:
  enum class Mode { kRead, kWrite };

  AccessGuard(const ipc::Process& self, CellState& cell, Mode mode)
      : cell_(&cell), pid_(self.pid().raw), mode_(mode) {
    const std::uint64_t now =
        static_cast<std::uint64_t>(self.domain().loop().now());
    const auto conflict = mode == Mode::kWrite ? cell.begin_write(pid_, now)
                                               : cell.begin_read(pid_, now);
    if (conflict) {
      cell_ = nullptr;  // nothing registered; dtor must not unregister
      throw RaceError(report(self, cell, mode, *conflict, now));
    }
  }

  AccessGuard(const AccessGuard&) = delete;
  AccessGuard& operator=(const AccessGuard&) = delete;

  ~AccessGuard() {
    if (cell_ == nullptr) return;
    if (mode_ == Mode::kWrite) {
      cell_->end_write(pid_);
    } else {
      cell_->end_read(pid_);
    }
  }

 private:
  static std::string report(const ipc::Process& self, const CellState& cell,
                            Mode mode, const CellState::Conflict& other,
                            std::uint64_t now) {
    const ipc::Domain& dom = self.domain();
    std::ostringstream out;
    out << "race detector: " << (mode == Mode::kWrite ? "write" : "read")
        << " of shared cell '" << cell.label() << "' by process '"
        << dom.process_name(self.pid()) << "' (pid " << self.pid().raw
        << ") at t=" << now << " overlaps outstanding "
        << (other.writer ? "write" : "read") << " by process '"
        << dom.process_name(ipc::ProcessId{other.pid}) << "' (pid "
        << other.pid << ") held across a suspension point since t="
        << other.since;
    return out.str();
  }

  CellState* cell_;
  std::uint32_t pid_;
  Mode mode_;
};

/// Shared state annotated for the race detector.  Read/write handles pin
/// an AccessGuard to the borrow's scope; hold one across a co_await to
/// model "this process still depends on the cell here".
template <typename T>
class SharedCell {
 public:
  explicit SharedCell(std::string_view label) : state_(label) {}

  class Reader {
   public:
    Reader(const ipc::Process& self, const SharedCell& cell)
        : guard_(self, cell.state_, AccessGuard::Mode::kRead),
          value_(&cell.value_) {}
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    [[nodiscard]] const T& operator*() const noexcept { return *value_; }
    [[nodiscard]] const T* operator->() const noexcept { return value_; }
   private:
    AccessGuard guard_;
    const T* value_;
  };

  class Writer {
   public:
    Writer(const ipc::Process& self, SharedCell& cell)
        : guard_(self, cell.state_, AccessGuard::Mode::kWrite),
          value_(&cell.value_) {}
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    [[nodiscard]] T& operator*() const noexcept { return *value_; }
    [[nodiscard]] T* operator->() const noexcept { return value_; }
   private:
    AccessGuard guard_;
    T* value_;
  };

  /// Borrow for reading as `self`; throws RaceError on conflict.
  [[nodiscard]] Reader read(const ipc::Process& self) const {
    return Reader(self, *this);
  }
  /// Borrow for writing as `self`; throws RaceError on conflict.
  [[nodiscard]] Writer write(const ipc::Process& self) {
    return Writer(self, *this);
  }

  /// Unchecked access, for code that runs outside any sim process (server
  /// construction, post-run assertions in tests).
  [[nodiscard]] T& raw() noexcept { return value_; }
  [[nodiscard]] const T& raw() const noexcept { return value_; }

 private:
  mutable CellState state_;
  T value_{};
};

#else  // !V_CHECKS_ENABLED — handles are bare pointers, no bookkeeping.

class AccessGuard {
 public:
  enum class Mode { kRead, kWrite };
  AccessGuard(const ipc::Process&, CellState&, Mode) noexcept {}
  AccessGuard(const AccessGuard&) = delete;
  AccessGuard& operator=(const AccessGuard&) = delete;
};

template <typename T>
class SharedCell {
 public:
  explicit SharedCell(std::string_view) noexcept {}

  class Reader {
   public:
    Reader(const ipc::Process&, const SharedCell& cell) noexcept
        : value_(&cell.value_) {}
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    [[nodiscard]] const T& operator*() const noexcept { return *value_; }
    [[nodiscard]] const T* operator->() const noexcept { return value_; }
   private:
    const T* value_;
  };

  class Writer {
   public:
    Writer(const ipc::Process&, SharedCell& cell) noexcept
        : value_(&cell.value_) {}
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    [[nodiscard]] T& operator*() const noexcept { return *value_; }
    [[nodiscard]] T* operator->() const noexcept { return value_; }
   private:
    T* value_;
  };

  [[nodiscard]] Reader read(const ipc::Process& self) const noexcept {
    return Reader(self, *this);
  }
  [[nodiscard]] Writer write(const ipc::Process& self) noexcept {
    return Writer(self, *this);
  }
  [[nodiscard]] T& raw() noexcept { return value_; }
  [[nodiscard]] const T& raw() const noexcept { return value_; }

 private:
  T value_{};
};

#endif  // V_CHECKS_ENABLED

}  // namespace v::chk
