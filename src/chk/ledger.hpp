// V-check layer 1: the sim race detector's bookkeeping (DESIGN.md 4e).
//
// The whole simulation is one OS thread, so ThreadSanitizer is structurally
// blind to cross-process sharing violations: two sim processes "race" when
// one mutates shared server state that another still relies on across a
// suspension point, or when a team worker mutates a (context, leaf) entry
// without holding its serialization gate.  The Ledger records who holds
// which gate and CellState records who is reading/writing which shared cell
// between yield points; violations surface as RaceError thrown in the
// offending fiber, whose report names both sim processes, their server and
// the sim timestamps involved.
//
// Zero-cost when disabled: configure with -DV_CHECKS=OFF (the "chk-off"
// preset) and every type here collapses to an empty inline no-op, so call
// sites compile identically and the release binary carries no chk symbols.
//
// Layering: this header depends only on the standard library so the kernel
// (ipc/kernel.hpp) can embed a Ledger without a cycle.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#ifndef V_CHECKS_ENABLED
#define V_CHECKS_ENABLED 1
#endif

namespace v::chk {

/// True when the V-check tooling is compiled in (V_CHECKS=ON, the default).
constexpr bool enabled() noexcept { return V_CHECKS_ENABLED != 0; }

/// Thrown in the violating fiber when the race detector finds a sharing
/// violation.  The message is the full report; it propagates out of the
/// fiber and lands in Domain::first_failure() for tests to assert on.
struct RaceError : std::runtime_error {
  explicit RaceError(const std::string& report)
      : std::runtime_error(report) {}
};

#if V_CHECKS_ENABLED

/// Per-domain record of which sim process holds which (server, ctx, leaf)
/// mutation gate.  GateLock acquisition/release keeps it current; servers
/// call check_gated_write() from every name-space mutation hook.
class Ledger {
 public:
  /// Evidence of a gate-discipline violation: who (if anyone) held the
  /// gate the mutator should have owned.  holder_pid == 0 means the
  /// mutation ran with the gate entirely unheld.
  struct GateViolation {
    std::uint32_t holder_pid = 0;
    std::uint64_t holder_since = 0;
  };

  void gate_acquired(const void* server, std::uint32_t ctx, std::string leaf,
                     std::uint32_t pid, std::uint64_t now) {
    ++acquisitions_;
    holders_[Key{server, ctx, std::move(leaf)}] = Holder{pid, now};
  }

  void gate_released(const void* server, std::uint32_t ctx,
                     const std::string& leaf) {
    holders_.erase(Key{server, ctx, leaf});
  }

  /// Drop every gate record for `server` (a re-spawned server clears its
  /// gates_ map; holders from the previous incarnation are meaningless).
  void forget_server(const void* server) {
    for (auto it = holders_.begin(); it != holders_.end();) {
      if (std::get<0>(it->first) == server) {
        it = holders_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Verify that `pid` holds the (server, ctx, leaf) gate.  Returns the
  /// violation evidence when it does not; the caller composes the report
  /// (it can map pids to names) and throws RaceError.
  [[nodiscard]] std::optional<GateViolation> check_gated_write(
      const void* server, std::uint32_t ctx, std::string_view leaf,
      std::uint32_t pid) {
    ++writes_checked_;
    const auto it = holders_.find(Key{server, ctx, std::string(leaf)});
    if (it == holders_.end()) return GateViolation{};
    if (it->second.pid != pid) {
      return GateViolation{it->second.pid, it->second.since};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t gate_acquisitions() const noexcept {
    return acquisitions_;
  }
  [[nodiscard]] std::uint64_t gated_writes_checked() const noexcept {
    return writes_checked_;
  }

 private:
  struct Holder {
    std::uint32_t pid = 0;
    std::uint64_t since = 0;
  };
  using Key = std::tuple<const void*, std::uint32_t, std::string>;

  std::map<Key, Holder> holders_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t writes_checked_ = 0;
};

/// Reader/writer bookkeeping for one shared cell (a server table, queue or
/// buffer).  Accesses are registered through AccessGuard (shared_cell.hpp);
/// an access that stays registered across a suspension point conflicts with
/// any overlapping access by a DIFFERENT sim process.  Same-process
/// accesses never conflict (one fiber cannot race itself) and may nest.
class CellState {
 public:
  explicit CellState(std::string_view label) : label_(label) {}

  /// The access that an attempted begin_read/begin_write collided with.
  struct Conflict {
    std::uint32_t pid = 0;
    std::uint64_t since = 0;
    bool writer = false;
  };

  /// Register a reader.  Fails (returns the conflicting access, registers
  /// nothing) when another process has an outstanding write.
  [[nodiscard]] std::optional<Conflict> begin_read(std::uint32_t pid,
                                                   std::uint64_t now) {
    for (const Access& w : writers_) {
      if (w.pid != pid) return Conflict{w.pid, w.since, true};
    }
    readers_.push_back(Access{pid, now});
    return std::nullopt;
  }

  void end_read(std::uint32_t pid) { unregister(readers_, pid); }

  /// Register a writer.  Fails when another process has an outstanding
  /// read OR write (write/write and read/write are both races).
  [[nodiscard]] std::optional<Conflict> begin_write(std::uint32_t pid,
                                                    std::uint64_t now) {
    for (const Access& w : writers_) {
      if (w.pid != pid) return Conflict{w.pid, w.since, true};
    }
    for (const Access& r : readers_) {
      if (r.pid != pid) return Conflict{r.pid, r.since, false};
    }
    writers_.push_back(Access{pid, now});
    return std::nullopt;
  }

  void end_write(std::uint32_t pid) { unregister(writers_, pid); }

  [[nodiscard]] const std::string& label() const noexcept { return label_; }

 private:
  struct Access {
    std::uint32_t pid = 0;
    std::uint64_t since = 0;
  };

  static void unregister(std::vector<Access>& list, std::uint32_t pid) {
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
      if (it->pid == pid) {
        list.erase(std::next(it).base());
        return;
      }
    }
  }

  std::string label_;
  std::vector<Access> readers_;
  std::vector<Access> writers_;
};

#else  // !V_CHECKS_ENABLED — inline no-ops, optimized away entirely.

class Ledger {
 public:
  struct GateViolation {
    std::uint32_t holder_pid = 0;
    std::uint64_t holder_since = 0;
  };
  void gate_acquired(const void*, std::uint32_t, std::string,
                     std::uint32_t, std::uint64_t) noexcept {}
  void gate_released(const void*, std::uint32_t,
                     const std::string&) noexcept {}
  void forget_server(const void*) noexcept {}
  [[nodiscard]] std::optional<GateViolation> check_gated_write(
      const void*, std::uint32_t, std::string_view,
      std::uint32_t) noexcept {
    return std::nullopt;
  }
  [[nodiscard]] std::uint64_t gate_acquisitions() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t gated_writes_checked() const noexcept {
    return 0;
  }
};

class CellState {
 public:
  explicit CellState(std::string_view) noexcept {}
  struct Conflict {
    std::uint32_t pid = 0;
    std::uint64_t since = 0;
    bool writer = false;
  };
  [[nodiscard]] std::optional<Conflict> begin_read(std::uint32_t,
                                                   std::uint64_t) noexcept {
    return std::nullopt;
  }
  void end_read(std::uint32_t) noexcept {}
  [[nodiscard]] std::optional<Conflict> begin_write(std::uint32_t,
                                                    std::uint64_t) noexcept {
    return std::nullopt;
  }
  void end_write(std::uint32_t) noexcept {}
};

#endif  // V_CHECKS_ENABLED

}  // namespace v::chk
