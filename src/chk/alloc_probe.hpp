// V-check layer: heap-allocation probe for the data path (DESIGN.md §4l).
//
// PR "data-path raw speed" claims the warm packet path allocates NOTHING:
// envelope slots come from the Domain slab, delivery closures fit
// InlineAction's buffer, mailboxes are intrusive lists, name bytes ride the
// envelope.  A claim like that rots silently — one grown lambda capture or
// one std::string temporary and the claim is false with no test the wiser.
// This probe makes the claim executable: it counts every global operator
// new/delete, and test_alloc_probe asserts a ZERO delta across warm
// ping-pong transactions.
//
// Linking rules (deliberate): alloc_probe.cpp lives in the vnames_chk
// static library, so its replacement operator new/delete are linked ONLY
// into binaries that reference a symbol from the TU (i.e. call
// alloc_counters()).  Benchmarks and the simulator keep the stock
// allocator; only the probe test pays for counting.
//
// Under AddressSanitizer the probe deactivates (alloc_probe_active() is
// false and the operators are not replaced): ASan's own interposed
// allocator must stay in charge for poisoning/redzones to work — the same
// policy as sim::FramePool.
#pragma once

#include <cstdint>

#ifndef V_CHECKS_ENABLED
#define V_CHECKS_ENABLED 1
#endif

#if V_CHECKS_ENABLED

namespace v::chk {

struct AllocCounters {
  std::uint64_t allocations = 0;  // operator new / new[] calls
  std::uint64_t frees = 0;        // operator delete / delete[] calls
  std::uint64_t bytes = 0;        // sum of requested sizes
};

/// Snapshot of the process-wide counters.  All zeros when the probe is
/// inactive (ASan builds).
[[nodiscard]] AllocCounters alloc_counters() noexcept;

/// True when the replacement operators are actually installed in this
/// binary (non-ASan build that links the probe TU).
[[nodiscard]] bool alloc_probe_active() noexcept;

}  // namespace v::chk

#else  // V_CHECKS_ENABLED

// Checks-off builds: the probe TU compiles empty and the stock allocator
// stays in place.  These inline stubs keep callers (the probe test, which
// skips itself when inactive) compiling against the same API.
namespace v::chk {

struct AllocCounters {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

[[nodiscard]] inline AllocCounters alloc_counters() noexcept { return {}; }
[[nodiscard]] inline bool alloc_probe_active() noexcept { return false; }

}  // namespace v::chk

#endif  // V_CHECKS_ENABLED
