#include "chk/protocol_lint.hpp"

#if V_CHECKS_ENABLED

#include <sstream>

#include "msg/csname.hpp"
#include "msg/request_codes.hpp"

namespace v::chk {

static_assert(kMaxReplyCode == 20,
              "ReplyCode grew: update kMaxReplyCode and PROTOCOL.md's "
              "checked-invariants table");

namespace {

std::string_view request_code_name(std::uint16_t code) {
  switch (code) {
    case msg::kMapContextName: return "kMapContextName";
    case msg::kQueryName: return "kQueryName";
    case msg::kModifyName: return "kModifyName";
    case msg::kRemoveName: return "kRemoveName";
    case msg::kRenameName: return "kRenameName";
    case msg::kAddContextName: return "kAddContextName";
    case msg::kDeleteContextName: return "kDeleteContextName";
    case msg::kCreateInstance: return "kCreateInstance";
    case msg::kCreateName: return "kCreateName";
    case msg::kMakeContext: return "kMakeContext";
    case msg::kLinkContext: return "kLinkContext";
    case msg::kGetContextName: return "kGetContextName";
    case msg::kGetFileName: return "kGetFileName";
    case msg::kQueryInstance: return "kQueryInstance";
    case msg::kReadInstance: return "kReadInstance";
    case msg::kWriteInstance: return "kWriteInstance";
    case msg::kReleaseInstance: return "kReleaseInstance";
    case msg::kGetTime: return "kGetTime";
    case msg::kLoadProgram: return "kLoadProgram";
    default: return {};
  }
}

void append_hex16(std::ostringstream& out, std::uint16_t v) {
  out << "0x" << std::hex << v << std::dec;
}

}  // namespace

std::string decode_message(const msg::Message& m) {
  std::ostringstream out;
  const std::uint16_t code = m.code();
  out << "  code         = ";
  append_hex16(out, code);
  if (const auto name = request_code_name(code); !name.empty()) {
    out << " (" << name << ")";
  }
  if (code <= kMaxReplyCode) {
    out << " [as reply: " << to_string(static_cast<ReplyCode>(code)) << "]";
  }
  out << "\n";
  if (msg::is_csname_request(code)) {
    out << "  nameindex    = " << msg::cs::name_index(m) << "\n"
        << "  namelength   = " << msg::cs::name_length(m) << "\n"
        << "  mode         = " << msg::cs::mode(m) << "\n"
        << "  forwardcount = "
        << static_cast<unsigned>(msg::cs::forward_count(m)) << "\n"
        << "  contextid    = " << msg::cs::context_id(m) << "\n"
        << "  csflags      = "
        << static_cast<unsigned>(msg::cs::cs_flags(m)) << "\n"
        << "  expectedgen  = " << msg::cs::expected_generation(m) << "\n";
  } else {
    out << "  (non-CSname request: no standard name fields)\n"
        << "  word[1]      = " << m.u16(2) << "\n"
        << "  word[2..3]   = " << m.u32(4) << "\n";
  }
  return out.str();
}

void ProtocolLint::register_server(std::uint32_t pid, std::string label,
                                   std::function<bool(std::uint32_t)>
                                       ctx_valid,
                                   std::uint32_t gen_floor) {
  // Incarnation invariant (V-fault): generations are domain-monotone, so a
  // later incarnation of the same service must start above every floor it
  // registered before — otherwise bindings cached against the previous
  // incarnation would not be invalidated by the generation check.
  if (gen_floor != 0) {
    auto& floor = incarnation_floor_[label];
    if (gen_floor <= floor) {
      ++counters_.stale_incarnations;
      std::ostringstream out;
      out << "protocol lint: stale incarnation of server '" << label
          << "' (pid " << pid << "): generation floor " << gen_floor
          << " does not exceed previous floor " << floor << "\n";
      record_dump(out.str());
    } else {
      floor = gen_floor;
    }
  }
  servers_[pid] = ServerInfo{std::move(label), std::move(ctx_valid)};
}

void ProtocolLint::register_worker(std::uint32_t pid, std::string label,
                                   std::uint32_t server_pid) {
  workers_[pid] = WorkerInfo{std::move(label), server_pid};
}

void ProtocolLint::forget(std::uint32_t pid) {
  servers_.erase(pid);
  workers_.erase(pid);
  std::erase_if(outstanding_,
                [pid](const auto& kv) { return kv.first.first == pid; });
}

void ProtocolLint::settle(std::uint32_t server_pid,
                          std::uint32_t client_pid) {
  auto it = outstanding_.find({server_pid, client_pid});
  if (it != outstanding_.end() && it->second > 0) --it->second;
}

void ProtocolLint::note_forwarded(std::uint32_t server_pid,
                                  std::uint32_t client_pid) {
  settle(server_pid, client_pid);
}

void ProtocolLint::note_unanswered(std::uint32_t server_pid,
                                   std::uint32_t client_pid) {
  settle(server_pid, client_pid);
}

void ProtocolLint::record_dump(std::string dump) {
  if (first_dump_.empty()) first_dump_ = std::move(dump);
}

std::optional<ReplyCode> ProtocolLint::check_request_slow(
    const msg::Message& request, std::uint32_t sender_pid,
    std::size_t read_segment_bytes, std::uint32_t dest_pid,
    std::uint64_t now) {
  const auto server = servers_.find(dest_pid);
  if (server == servers_.end()) return std::nullopt;
  ++counters_.requests_checked;

  const std::uint16_t code = request.code();
  const auto reject = [&](std::string_view why) -> ReplyCode {
    ++counters_.client_rejects;
    std::ostringstream out;
    out << "protocol lint: malformed request rejected: " << why << "\n"
        << "  sender pid " << sender_pid << " -> server '"
        << server->second.label << "' (pid " << dest_pid << ") at t=" << now
        << "\n"
        << decode_message(request);
    record_dump(out.str());
    return ReplyCode::kBadArgs;
  };

  // Invariant 1 (section 3.2): the first word of every request is a request
  // code, and all protocol code ranges start at 0x0100.  A reply code (or
  // zero) in a request's code field is a confused client.
  if (code < 0x0100) return reject("request code below protocol ranges");

  if (msg::is_csname_request(code)) {
    const std::uint16_t index = msg::cs::name_index(request);
    const std::uint16_t length = msg::cs::name_length(request);
    // Invariant 2 (section 5.3): interpretation resumes at nameindex,
    // which must lie within the name.
    if (index > length) return reject("nameindex exceeds namelength");
    // Invariant 3 (section 5.3): names are bounded; a claimed length past
    // the protocol maximum can never be fetched.
    if (length > kMaxCheckedNameLength) {
      return reject("namelength exceeds protocol maximum");
    }
    // Invariant 4 (section 5.3): the name bytes travel in the sender's
    // read segment; namelength > 0 promises at least that many bytes.
    if (length > 0 && read_segment_bytes < length) {
      return reject("name bytes absent from sender segment");
    }
    // Invariant 5 (sections 5.4, 5.8): the context id should resolve on
    // the receiving server.  Stale ids are paper-sanctioned (the server
    // answers kInvalidContext and the client re-resolves), so this is a
    // statistic, never a rejection.
    if (server->second.ctx_valid &&
        !server->second.ctx_valid(msg::cs::context_id(request))) {
      if (msg::cs::forward_count(request) > 0) {
        ++counters_.stale_context_forwards;
      } else {
        ++counters_.invalid_context_requests;
      }
    }
    // Invariant 7 (validated caching, PROTOCOL.md 11): the expected-
    // generation fields are self-consistent.  Flag bits beyond the defined
    // set, or a generation value without its flag, betray a client writing
    // garbage into header space it does not understand.
    const std::uint8_t flags = msg::cs::cs_flags(request);
    if ((flags &
         ~(msg::cs::kFlagExpectGen | msg::cs::kFlagRecoveryProbe)) != 0) {
      return reject("unknown CSname header flag bits");
    }
    if ((flags & msg::cs::kFlagExpectGen) == 0 &&
        msg::cs::expected_generation(request) != 0) {
      return reject("expected-generation bytes set without the flag");
    }
  }
  // Duplicate-reply invariant (V-fault): the request is about to be
  // delivered, so the server owes this client exactly one settlement —
  // a reply, a forward, or deliberate probe silence.
  ++outstanding_[{dest_pid, sender_pid}];
  return std::nullopt;
}

void ProtocolLint::check_reply_slow(const msg::Message& reply,
                               std::uint32_t from_pid, std::uint32_t to_pid,
                               std::uint64_t now) {
  std::string_view label;
  std::uint32_t canonical = from_pid;  // receptionist owning the ledger
  if (const auto s = servers_.find(from_pid); s != servers_.end()) {
    label = s->second.label;
  } else if (const auto w = workers_.find(from_pid); w != workers_.end()) {
    label = w->second.label;
    if (w->second.server_pid != 0) canonical = w->second.server_pid;
  } else {
    return;
  }
  ++counters_.replies_checked;

  // Duplicate-reply invariant (V-fault): a reply with nothing outstanding
  // means the server answered the same request twice (or invented one) —
  // under duplicated/reordered requests that is exactly the at-most-once
  // property breaking.
  auto out_it = outstanding_.find({canonical, to_pid});
  if (out_it == outstanding_.end() || out_it->second == 0) {
    ++counters_.duplicate_replies;
    std::ostringstream dup;
    dup << "protocol lint: duplicate reply from server process '" << label
        << "' (pid " << from_pid << ") to pid " << to_pid << " at t=" << now
        << ": no request outstanding\n"
        << decode_message(reply);
    record_dump(dup.str());
  } else {
    --out_it->second;
  }

  // Invariant 6 (section 3.2): every reply begins with a standard reply
  // code.  A registered server emitting a code outside the set is
  // non-conformant; record it (tests assert on the counter) but deliver
  // the reply so the failure is visible end to end.
  if (reply.code() > kMaxReplyCode) {
    ++counters_.server_violations;
    std::ostringstream out;
    out << "protocol lint: non-standard reply code from server process '"
        << label << "' (pid " << from_pid << ") to pid " << to_pid
        << " at t=" << now << "\n"
        << decode_message(reply);
    record_dump(out.str());
  }
}

}  // namespace v::chk

#endif  // V_CHECKS_ENABLED
