// V-check layer 2: protocol conformance lint at the kernel Send/Reply
// boundary (DESIGN.md 4e, PROTOCOL.md "Checked header invariants").
//
// The paper's contribution is a *uniform* protocol: every character-string
// name request carries the same CSname header (code, nameindex, namelength,
// mode, forwardcount, contextid) and every reply a typed reply code.  That
// uniformity makes mechanical checking possible: the kernel intercepts each
// message bound for a registered CSNH server and validates the header
// invariants before delivery.  Malformed *client* traffic is rejected fast
// with a synthesized kBadArgs and a decoded-message dump (the server never
// sees it); non-conformant *server* behaviour (a reply code outside the
// registered set, from a registered team pid) is recorded and dumped but
// still delivered, so tests can assert on it.
//
// Context-id resolvability is counted, not rejected: stale cross-server
// context ids are paper-sanctioned (servers answer kInvalidContext and
// clients re-resolve), so an unresolvable id is a statistic, never an error.
//
// Zero-cost when disabled: with V_CHECKS=OFF every member is an inline
// no-op and registration accepts (and discards) any arguments without
// constructing std::function.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/annotate.hpp"
#include "common/reply_codes.hpp"
#include "msg/message.hpp"

#ifndef V_CHECKS_ENABLED
#define V_CHECKS_ENABLED 1
#endif

namespace v::chk {

/// Mirror of naming::kMaxNameLength; csnh_server.cpp static_asserts the two
/// stay equal (chk cannot include naming/ without a layering cycle).
inline constexpr std::uint32_t kMaxCheckedNameLength = 4096;

/// Highest registered ReplyCode value (kStaleContext).  Static-asserted
/// against the real enum where common/reply_codes.hpp is in scope.
inline constexpr std::uint16_t kMaxReplyCode =
    static_cast<std::uint16_t>(v::ReplyCode::kStaleContext);

#if V_CHECKS_ENABLED

/// Decode a message header into a human-readable multi-line dump for
/// violation reports.
std::string decode_message(const msg::Message& m);

class ProtocolLint {
 public:
  struct Counters {
    std::uint64_t requests_checked = 0;
    std::uint64_t replies_checked = 0;
    std::uint64_t client_rejects = 0;
    std::uint64_t server_violations = 0;
    std::uint64_t stale_context_forwards = 0;
    std::uint64_t invalid_context_requests = 0;
    /// A registered server replied to a client with no request outstanding
    /// at that server — an at-most-once violation (V-fault invariant).
    std::uint64_t duplicate_replies = 0;
    /// A server re-registered under a label with a generation floor no
    /// higher than its previous incarnation's — cached bindings from the
    /// old incarnation would not be invalidated (V-fault invariant).
    std::uint64_t stale_incarnations = 0;
  };

  /// Register a CSNH server's receptionist pid.  `ctx_valid` answers
  /// whether a raw context id resolves on that server (used for the
  /// resolvability statistic only).  `gen_floor`, when nonzero, is the
  /// incarnation's generation floor: it must exceed every floor previously
  /// registered under the same label (see Counters::stale_incarnations).
  void register_server(std::uint32_t pid, std::string label,
                       std::function<bool(std::uint32_t)> ctx_valid,
                       std::uint32_t gen_floor = 0);

  /// Register a worker pid as part of a registered server's team, so its
  /// replies are held to the server-conformance checks.  `server_pid`
  /// names the receptionist whose outstanding-request ledger the worker's
  /// replies settle (0 = the worker settles its own).
  void register_worker(std::uint32_t pid, std::string label,
                       std::uint32_t server_pid = 0);

  void forget(std::uint32_t pid);

  /// The server holding `client`'s request forwarded it on: it will never
  /// reply itself, so settle its outstanding-request entry.
  void note_forwarded(std::uint32_t server_pid, std::uint32_t client_pid);

  /// The server deliberately answered `client` with silence (a recovery
  /// probe it cannot serve): settle the entry without a reply.
  void note_unanswered(std::uint32_t server_pid, std::uint32_t client_pid);

  /// Validate a request about to be delivered to `dest`.  Returns the
  /// reply code to synthesize to the sender when the message is malformed
  /// (the message is then NOT delivered), or nullopt to deliver normally.
  /// Messages to unregistered destinations are never checked.
  /// Header-inline fast path: with no servers registered NOTHING is ever
  /// checked (check_request_slow's first move is a servers_ lookup that
  /// misses before any counter bumps), so workloads that never register a
  /// lint server pay one branch per delivery instead of a map probe.
  [[nodiscard]] V_HOT_PATH std::optional<v::ReplyCode> check_request(
      const msg::Message& request, std::uint32_t sender_pid,
      std::size_t read_segment_bytes, std::uint32_t dest_pid,
      std::uint64_t now) {
    if (servers_.empty()) return std::nullopt;
    return check_request_slow(request, sender_pid, read_segment_bytes,
                              dest_pid, now);
  }

  /// Validate a reply sent by `from`.  Only replies from registered server
  /// or worker pids are checked; violations are counted and dumped but the
  /// reply is always delivered.  Same fast path as check_request: the slow
  /// body early-outs (before counting) unless `from` is a registered server
  /// or worker, so an empty registry means a branch, not two map probes.
  V_HOT_PATH void check_reply(const msg::Message& reply, std::uint32_t from_pid,
                              std::uint32_t to_pid, std::uint64_t now) {
    if (servers_.empty() && workers_.empty()) return;
    check_reply_slow(reply, from_pid, to_pid, now);
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// The decoded dump of the first violation seen (empty when clean).
  [[nodiscard]] const std::string& first_dump() const noexcept {
    return first_dump_;
  }

 private:
  struct ServerInfo {
    std::string label;
    std::function<bool(std::uint32_t)> ctx_valid;
  };
  struct WorkerInfo {
    std::string label;
    std::uint32_t server_pid = 0;
  };

  [[nodiscard]] std::optional<v::ReplyCode> check_request_slow(
      const msg::Message& request, std::uint32_t sender_pid,
      std::size_t read_segment_bytes, std::uint32_t dest_pid,
      std::uint64_t now);
  void check_reply_slow(const msg::Message& reply, std::uint32_t from_pid,
                        std::uint32_t to_pid, std::uint64_t now);

  void record_dump(std::string dump);
  void settle(std::uint32_t server_pid, std::uint32_t client_pid);

  std::map<std::uint32_t, ServerInfo> servers_;
  std::map<std::uint32_t, WorkerInfo> workers_;
  /// (server receptionist pid, client pid) -> requests delivered but not
  /// yet replied / forwarded / deliberately left unanswered.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      outstanding_;
  /// Highest generation floor registered per server label.
  std::map<std::string, std::uint32_t> incarnation_floor_;
  Counters counters_;
  std::string first_dump_;
};

#else  // !V_CHECKS_ENABLED

inline std::string decode_message(const msg::Message&) { return {}; }

class ProtocolLint {
 public:
  struct Counters {
    std::uint64_t requests_checked = 0;
    std::uint64_t replies_checked = 0;
    std::uint64_t client_rejects = 0;
    std::uint64_t server_violations = 0;
    std::uint64_t stale_context_forwards = 0;
    std::uint64_t invalid_context_requests = 0;
    std::uint64_t duplicate_replies = 0;
    std::uint64_t stale_incarnations = 0;
  };

  // Variadic templates: call sites pay nothing (no std::function, no
  // std::string is ever constructed for a discarded registration).
  template <typename... Args>
  void register_server(Args&&...) noexcept {}
  template <typename... Args>
  void register_worker(Args&&...) noexcept {}
  void forget(std::uint32_t) noexcept {}
  void note_forwarded(std::uint32_t, std::uint32_t) noexcept {}
  void note_unanswered(std::uint32_t, std::uint32_t) noexcept {}

  [[nodiscard]] std::optional<v::ReplyCode> check_request(
      const msg::Message&, std::uint32_t, std::size_t, std::uint32_t,
      std::uint64_t) noexcept {
    return std::nullopt;
  }
  void check_reply(const msg::Message&, std::uint32_t, std::uint32_t,
                   std::uint64_t) noexcept {}

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::string& first_dump() const noexcept {
    return first_dump_;
  }

 private:
  Counters counters_;
  std::string first_dump_;
};

#endif  // V_CHECKS_ENABLED

}  // namespace v::chk
