#include "fault/fault.hpp"

#if V_FAULT_ENABLED

namespace v::fault {

FaultPlan::FaultPlan(std::uint64_t seed) : rng_(seed) {}

void FaultPlan::set_default_link(const LinkFaults& faults) {
  default_link_ = faults;
}

void FaultPlan::set_link(std::uint16_t from, std::uint16_t to,
                         const LinkFaults& faults) {
  links_[{from, to}] = faults;
}

void FaultPlan::set_retry(const RetryPolicy& policy) { retry_ = policy; }

void FaultPlan::crash_at(sim::SimTime at, std::uint16_t host,
                         std::function<void()> then) {
  events_.push_back({at, host, HostEvent::Kind::kCrash, std::move(then)});
}

void FaultPlan::restart_at(sim::SimTime at, std::uint16_t host,
                           std::function<void()> then) {
  events_.push_back({at, host, HostEvent::Kind::kRestart, std::move(then)});
}

void FaultPlan::pause_at(sim::SimTime at, std::uint16_t host,
                         std::function<void()> then) {
  events_.push_back({at, host, HostEvent::Kind::kPause, std::move(then)});
}

void FaultPlan::resume_at(sim::SimTime at, std::uint16_t host,
                          std::function<void()> then) {
  events_.push_back({at, host, HostEvent::Kind::kResume, std::move(then)});
}

const LinkFaults& FaultPlan::link(std::uint16_t from,
                                  std::uint16_t to) const {
  auto it = links_.find({from, to});
  return it != links_.end() ? it->second : default_link_;
}

PacketDecision FaultPlan::on_packet(std::uint16_t from, std::uint16_t to) {
  ++stats_.packets_seen;
  const LinkFaults& lf = link(from, to);
  // Always draw exactly four variates so the random stream keeps its shape
  // regardless of rates or outcomes: a seed produces the "same run" at
  // every loss rate, just with different verdicts.
  const bool drop = rng_.chance(lf.drop);
  const bool duplicate = rng_.chance(lf.duplicate);
  const bool reorder = rng_.chance(lf.reorder);
  const double jitter = rng_.uniform01();

  PacketDecision d;
  if (drop) {
    ++stats_.drops;
    d.drop = true;
    return d;
  }
  if (reorder) {
    ++stats_.reorders;
    d.extra_delay = lf.reorder_delay;
  }
  if (duplicate) {
    ++stats_.duplicates;
    d.duplicate = true;
    // The copy lands somewhere within reorder_delay after the original —
    // never before it, never in the past (delays stay non-negative).
    d.dup_delay =
        static_cast<sim::SimDuration>(jitter *
                                      static_cast<double>(lf.reorder_delay));
  }
  return d;
}

}  // namespace v::fault

#endif  // V_FAULT_ENABLED
