// V-fault: deterministic fault injection for the simulated V domain
// (DESIGN.md 4h).
//
// The paper's recovery story (sections 2.3 and 4) is that stale or broken
// name bindings are *detected* (kNoReply, invalid context) and *repaired*
// by re-querying the server group — which only matters on a network that
// actually loses packets and hosts that actually die.  A FaultPlan is the
// scripted adversary for one run: seed-driven per-link packet faults
// (drop / duplicate / reorder-by-delay) applied at the kernel send/deliver
// boundary, plus scheduled crash / restart / pause / resume events on any
// host, plus the retransmission policy the kernel uses to mask the losses.
//
// Everything is deterministic: all randomness flows from the plan's own
// seeded Rng, and every decision draws the same number of variates so the
// per-seed random stream keeps its shape across different loss rates (runs
// differing only in probabilities stay comparable event-for-event).
//
// Zero-cost when disabled: with V_FAULT=OFF every member is an inline no-op,
// no v::fault:: symbol survives linking, and the kernel's warm path is
// byte-for-byte identical to a build that never heard of faults.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

#ifndef V_FAULT_ENABLED
#define V_FAULT_ENABLED 1
#endif

namespace v::fault {

/// Per-direction link fault rates.  Probabilities are independent per
/// packet; `reorder_delay` is the extra latency a reordered (or duplicated)
/// copy suffers, which is what actually makes it arrive out of order.
struct LinkFaults {
  double drop = 0.0;       ///< P(packet silently lost)
  double duplicate = 0.0;  ///< P(a delayed second copy is also delivered)
  double reorder = 0.0;    ///< P(packet is held back past its successors)
  sim::SimDuration reorder_delay = 2 * sim::kMillisecond;
};

/// Client-side retransmission policy for reliable Send transactions.
/// Timeouts are simulated time; the budget counts retransmissions (so a
/// send makes at most 1 + budget delivery attempts before kNoReply).
struct RetryPolicy {
  sim::SimDuration initial_timeout = 10 * sim::kMillisecond;
  double backoff = 2.0;
  sim::SimDuration max_timeout = 80 * sim::kMillisecond;
  std::uint32_t budget = 6;
};

/// One scheduled host lifecycle event.  `then` (optional) runs right after
/// the kernel applies the event — restart events use it to respawn servers,
/// which is exactly the paper's "rebinding after recovery" scenario.
struct HostEvent {
  enum class Kind : std::uint8_t { kCrash, kRestart, kPause, kResume };

  sim::SimTime at = 0;
  std::uint16_t host = 0;  ///< raw HostId value
  Kind kind = Kind::kCrash;
  std::function<void()> then;
};

/// The plan's verdict on one packet about to cross a link.  All delays are
/// non-negative, so fault jitter can never schedule into the past (the
/// event loop's negative-delay clamp counter must stay zero under faults).
struct PacketDecision {
  bool drop = false;
  bool duplicate = false;
  sim::SimDuration extra_delay = 0;  ///< added to the original copy
  sim::SimDuration dup_delay = 0;    ///< added to the duplicate copy
};

/// Counters for everything the plan did and everything the kernel's
/// reliability machinery did in response.  The kernel owns the increments
/// of the transaction-layer fields.
struct FaultStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t pauses = 0;
  std::uint64_t resumes = 0;
  // Transaction layer (incremented by ipc::Domain):
  std::uint64_t retransmits = 0;             ///< client copies re-sent
  std::uint64_t budget_exhausted = 0;        ///< sends that gave up (kNoReply)
  std::uint64_t dup_requests_suppressed = 0; ///< dup while still pending
  std::uint64_t cached_replies_replayed = 0; ///< dup after reply: replayed
  std::uint64_t forwards_replayed = 0;       ///< dup after forward: re-driven
  std::uint64_t stale_replies_dropped = 0;   ///< reply to a superseded txn
};

#if V_FAULT_ENABLED

/// A scripted adversary for one Domain run.  Construct, configure links /
/// events / retry policy, then hand to Domain::install_faults.  The plan
/// must outlive the domain's run.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xFA177ULL);

  /// Fault rates for every link without a specific override.  Local
  /// delivery (sender and receiver on one host) is never faulted: the
  /// paper's local IPC does not cross the wire.
  void set_default_link(const LinkFaults& faults);
  /// Fault rates for the directed link `from` -> `to` (raw HostId values).
  void set_link(std::uint16_t from, std::uint16_t to,
                const LinkFaults& faults);

  void set_retry(const RetryPolicy& policy);
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }

  /// Schedule host lifecycle events (times are absolute simulated time).
  void crash_at(sim::SimTime at, std::uint16_t host,
                std::function<void()> then = {});
  void restart_at(sim::SimTime at, std::uint16_t host,
                  std::function<void()> then = {});
  void pause_at(sim::SimTime at, std::uint16_t host,
                std::function<void()> then = {});
  void resume_at(sim::SimTime at, std::uint16_t host,
                 std::function<void()> then = {});
  [[nodiscard]] const std::vector<HostEvent>& events() const noexcept {
    return events_;
  }

  /// Decide the fate of one packet crossing `from` -> `to`.  Draws a fixed
  /// number of variates per call regardless of outcome.
  [[nodiscard]] PacketDecision on_packet(std::uint16_t from,
                                         std::uint16_t to);

  [[nodiscard]] FaultStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] const LinkFaults& link(std::uint16_t from,
                                       std::uint16_t to) const;

  sim::Rng rng_;
  LinkFaults default_link_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, LinkFaults> links_;
  RetryPolicy retry_;
  std::vector<HostEvent> events_;
  FaultStats stats_;
};

#else  // !V_FAULT_ENABLED

/// Inert shell: constructing and configuring a plan is legal but does
/// nothing, and the kernel never consults it (Domain::install_faults is a
/// no-op with V_FAULT=OFF).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t = 0) noexcept {}

  void set_default_link(const LinkFaults&) noexcept {}
  void set_link(std::uint16_t, std::uint16_t, const LinkFaults&) noexcept {}
  void set_retry(const RetryPolicy&) noexcept {}
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }

  template <typename... Args>
  void crash_at(Args&&...) noexcept {}
  template <typename... Args>
  void restart_at(Args&&...) noexcept {}
  template <typename... Args>
  void pause_at(Args&&...) noexcept {}
  template <typename... Args>
  void resume_at(Args&&...) noexcept {}
  [[nodiscard]] const std::vector<HostEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] PacketDecision on_packet(std::uint16_t,
                                         std::uint16_t) noexcept {
    return {};
  }

  [[nodiscard]] FaultStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  RetryPolicy retry_;
  std::vector<HostEvent> events_;
  FaultStats stats_;
};

#endif  // V_FAULT_ENABLED

}  // namespace v::fault
