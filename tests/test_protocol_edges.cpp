// Adversarial/edge-case tests at the raw protocol level: malformed CSname
// requests, instance-op misuse, runtime corner cases, and the transport
// statistics counters.
#include <gtest/gtest.h>

#include "msg/csname.hpp"
#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using test::VFixture;

// Send a raw CSname request to `dest` with explicit header fields.
sim::Co<msg::Message> raw_csname(ipc::Process self, ipc::ProcessId dest,
                                 std::uint16_t code, std::string_view name,
                                 std::uint16_t name_index,
                                 std::uint16_t claimed_length,
                                 naming::ContextId ctx) {
  msg::Message request;
  request.set_code(code);
  msg::cs::set_name_index(request, name_index);
  msg::cs::set_name_length(request, claimed_length);
  msg::cs::set_context_id(request, ctx);
  ipc::Segments segs;
  segs.read = std::as_bytes(std::span(name.data(), name.size()));
  co_return co_await self.send(request, dest, segs);
}

TEST(ProtocolEdges, NameIndexBeyondLengthIsBadArgs) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const auto reply = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kQueryName, "tmp",
        /*index=*/10, /*length=*/3, naming::kDefaultContext);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
}

TEST(ProtocolEdges, ClaimedLengthBeyondSegmentIsBadArgs) {
  // The server's MoveFrom of the name runs past the sender's segment.
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const auto reply = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kQueryName, "tmp",
        /*index=*/0, /*length=*/64, naming::kDefaultContext);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
}

TEST(ProtocolEdges, HugeClaimedLengthIsRejectedBeforeFetch) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const auto reply = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kQueryName, "tmp",
        /*index=*/0, /*length=*/0xffff, naming::kDefaultContext);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
}

TEST(ProtocolEdges, EmptyNameMapsTheCurrentContextItself) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const auto reply = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kMapContextName, "",
        /*index=*/0, /*length=*/0,
        fx.alpha.context_of("usr/mann"));
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    const auto pair = naming::wire::get_map_reply(reply);
    EXPECT_EQ(pair.server, fx.alpha_pid);
    EXPECT_EQ(pair.context, fx.alpha.context_of("usr/mann"));
  });
}

TEST(ProtocolEdges, MidNameIndexResumesInterpretation) {
  // A client can hand a server a partially-consumed name, exactly as a
  // forwarding server would.
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const std::string_view name = "usr/mann/naming.mss";
    const auto reply = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kQueryName, name,
        /*index=*/4,  // skip "usr/": interpret "mann/naming.mss"
        static_cast<std::uint16_t>(name.size()),
        fx.alpha.context_of("usr"));
    // No write segment was provided, so the descriptor MoveTo must fail
    // cleanly AFTER successful resolution.
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
    // With resolution alone (MapContextName on a directory), it succeeds:
    const std::string_view dir_name = "usr/mann";
    const auto mapped = co_await raw_csname(
        self, fx.alpha_pid, msg::RequestCode::kMapContextName, dir_name,
        /*index=*/4, static_cast<std::uint16_t>(dir_name.size()),
        fx.alpha.context_of("usr"));
    EXPECT_EQ(mapped.reply_code(), ReplyCode::kOk);
  });
}

TEST(ProtocolEdges, InstanceOpsOnUnknownIdsFailCleanly) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    for (const std::uint16_t op :
         {msg::RequestCode::kQueryInstance, msg::RequestCode::kReadInstance,
          msg::RequestCode::kWriteInstance,
          msg::RequestCode::kReleaseInstance}) {
      msg::Message request;
      request.set_code(op);
      request.set_u16(io::kOffInstance, 4242);
      const auto reply = co_await self.send(request, fx.alpha_pid);
      EXPECT_EQ(reply.reply_code(), ReplyCode::kInvalidInstance)
          << "op " << op;
    }
  });
}

TEST(ProtocolEdges, DoubleCloseIsInvalidInstance) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    EXPECT_EQ(co_await f.close(), ReplyCode::kInvalidInstance);
  });
}

TEST(ProtocolEdges, ReadAfterFileDeletionIsBadState) {
  // The instance survives the name, but the object is gone: block reads
  // report kBadState (names and objects die together; instances are
  // temporary names that can dangle briefly).
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(co_await rt.remove("usr/mann/naming.mss"), ReplyCode::kOk);
    std::vector<std::byte> buf(32);
    auto got = co_await f.read_block(0, buf);
    EXPECT_EQ(got.code(), ReplyCode::kBadState);
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(ProtocolEdges, WriteToReadOnlyOpenFails) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    const std::string data = "overwrite attempt";
    auto wrote = co_await f.write_block(
        0, std::as_bytes(std::span(data.data(), data.size())));
    EXPECT_EQ(wrote.code(), ReplyCode::kNotWriteable);
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(ProtocolEdges, RuntimeWithoutPrefixServerFailsPrefixedNamesOnly) {
  // A workstation with no context prefix server: '['-names fail locally in
  // the stub; everything else still works.
  ipc::Domain dom;
  auto& ws = dom.add_host("bare-ws");
  auto& fsh = dom.add_host("fs1");
  servers::FileServer fs("fs");
  fs.put_file("data/f.txt", "x");
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  ws.spawn("client", [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    EXPECT_FALSE(rt.prefix_server().valid());
    auto prefixed = co_await rt.open("[home]f.txt", kOpenRead);
    EXPECT_EQ(prefixed.code(), ReplyCode::kNotFound);
    auto plain = co_await rt.open("data/f.txt", kOpenRead);
    EXPECT_TRUE(plain.ok());
    if (plain.ok()) {
      svc::File f = plain.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(ProtocolEdges, TransportCountersTrackStructure) {
  VFixture fx;
  const auto before = fx.dom.stats();
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    // One cross-server open through a link: client->alpha, alpha->beta
    // (forward), plus the name fetch and reply.
    auto opened = co_await rt.open("usr/mann/proj/readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
  const auto& after = fx.dom.stats();
  // Structural (calibration-independent) invariants for this flow:
  EXPECT_EQ(after.forwards - before.forwards, 1u);  // exactly one link hop
  // open + close sends, plus the forward's re-delivery.
  EXPECT_GE(after.messages_sent - before.messages_sent, 3u);
  // Fetch-once: alpha pays the single host-side name transfer; beta reads
  // the bytes the forward carried (the simulated per-hop delay is still
  // charged, but no second MoveFrom transfer happens).
  EXPECT_EQ(after.moves - before.moves, 1u);
  EXPECT_GT(after.bytes_moved, before.bytes_moved);
  EXPECT_GE(after.remote_messages - before.remote_messages, 2u);
}

}  // namespace
}  // namespace v
