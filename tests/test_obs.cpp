// Tests for the observability layer (PR 3): V-trace span parentage across
// a multi-hop forwarding chain, the `[metrics]` context serving registry
// values through the normal CSNH path, the ambient VLOG prefix, and the
// Chrome trace-event export.
//
// The recording-side tests sit under #if V_TRACE_ENABLED so this binary
// also builds and passes in a -DV_TRACE=OFF tree (where the shells record
// nothing); the VLOG prefix test is always on — the logger is not gated.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chk/ledger.hpp"
#include "common/log.hpp"
#include "msg/request_codes.hpp"
#include "naming/protocol.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "servers/file_server.hpp"
#include "servers/metrics_server.hpp"
#include "svc/runtime.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;

/// A chain of file servers joined by "next" links, so that opening
/// next/next/.../payload.dat forwards across `links` server boundaries.
struct ChainFixture {
  explicit ChainFixture(int links) {
    ws = &dom.add_host("ws1");
    for (int i = 0; i <= links; ++i) {
      auto& host = dom.add_host("fs" + std::to_string(i));
      chain.push_back(std::make_unique<servers::FileServer>(
          "fs" + std::to_string(i), servers::DiskModel::kMemory, false));
      pids.push_back(host.spawn("fs" + std::to_string(i),
                                [srv = chain.back().get()](ipc::Process p) {
                                  return srv->run(p);
                                }));
    }
    chain.back()->put_file("payload.dat", "end of the chain");
    for (int i = 0; i < links; ++i) {
      chain[static_cast<std::size_t>(i)]->put_link(
          "next",
          {pids[static_cast<std::size_t>(i) + 1], naming::kDefaultContext});
    }
  }

  ipc::Domain dom;
  ipc::Host* ws = nullptr;
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
};

#if V_TRACE_ENABLED

TEST(Trace, ForwardingChainSpanParentage) {
  constexpr int kLinks = 3;  // fs0 -> fs1 -> fs2 -> fs3: four hops
  ChainFixture fx(kLinks);
  fx.dom.tracer().enable();
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/next/next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  const auto& spans = fx.dom.tracer().spans();
  ASSERT_FALSE(spans.empty());

  // Root: the client's traced Send of the Open request.
  const obs::Span* root = nullptr;
  for (const auto& s : spans) {
    if (s.category == "send" && s.name == "send open") {
      root = &s;
      break;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_GE(root->end, root->start);  // closed by the final Reply

  auto children = [&](std::uint32_t parent, const std::string& category) {
    std::vector<const obs::Span*> out;
    for (const auto& s : spans) {
      if (s.trace_id == root->trace_id && s.parent == parent &&
          s.category == category) {
        out.push_back(&s);
      }
    }
    return out;
  };

  // Walk the hop chain: each Forward re-parents the next hop under the
  // previous one, so the tree must be a single path fs0..fs3.
  std::vector<std::string> hop_names;
  const obs::Span* cursor = root;
  for (;;) {
    auto hops = children(cursor->id, "hop");
    if (hops.empty()) break;
    ASSERT_EQ(hops.size(), 1u) << "forwarding chain must be a single path";
    cursor = hops[0];
    hop_names.push_back(cursor->name);

    // Every hop splits into exactly one queue-wait and one service segment.
    auto queue = children(cursor->id, "queue");
    auto service = children(cursor->id, "service");
    ASSERT_EQ(queue.size(), 1u);
    ASSERT_EQ(service.size(), 1u);
    EXPECT_LE(queue[0]->start, queue[0]->end);
    EXPECT_EQ(queue[0]->end, service[0]->start)
        << "service must begin where queue-wait ends";
    EXPECT_LE(service[0]->end, cursor->end);
  }
  const std::vector<std::string> expected{"hop fs0", "hop fs1", "hop fs2",
                                          "hop fs3"};
  EXPECT_EQ(hop_names, expected);

  // The rendering and the Chrome export must both carry the chain.
  const std::string text = fx.dom.tracer().render_text(root->trace_id);
  for (const auto& name : expected) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
  }
  const std::string json = fx.dom.tracer().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("hop fs3"), std::string::npos);
}

TEST(Trace, UntracedRunRecordsNothing) {
  ChainFixture fx(1);
  // tracer never enabled
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  EXPECT_TRUE(fx.dom.tracer().spans().empty());
  EXPECT_EQ(fx.dom.tracer().trace_count(), 0u);
}

TEST(Metrics, ContextReadMatchesRegistry) {
  ChainFixture fx(0);  // one file server, no links
  servers::MetricsServer metrics_srv;
  const auto metrics_pid = fx.ws->spawn(
      "metrics", [&](ipc::Process p) { return metrics_srv.run(p); });

  std::string read_value;
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    // Generate some traffic so fs0's counters are nonzero.
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    // Read the counter back through the normal CSNH path.
    rt.set_current({metrics_pid, naming::kDefaultContext});
    auto metric = co_await rt.open("fs0/requests", kOpenRead);
    EXPECT_TRUE(metric.ok());
    if (metric.ok()) {
      svc::File f = metric.take();
      auto bytes = co_await f.read_all();
      EXPECT_TRUE(bytes.ok());
      if (bytes.ok()) {
        read_value.assign(
            reinterpret_cast<const char*>(bytes.value().data()),
            bytes.value().size());
      }
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  // Same value the registry snapshot reports (nothing touched fs0 after
  // the metric was opened, so the live value did not move).
  const auto registry_value = fx.dom.metrics().value_text("fs0", "requests");
  ASSERT_TRUE(registry_value.has_value());
  EXPECT_EQ(read_value, *registry_value);

  // And it parses as a positive integer (open + close = at least 2).
  const long parsed = std::strtol(read_value.c_str(), nullptr, 10);
  EXPECT_GE(parsed, 2);

  // The JSON snapshot mentions the same scope and counter.
  const std::string json = fx.dom.metrics().to_json();
  EXPECT_NE(json.find("\"fs0\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
}

TEST(Metrics, LintCountersMirroredIntoRegistry) {
  ChainFixture fx(1);
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  // The protocol-lint accessors keep working AND the registry mirrors them
  // (with V_CHECKS=OFF both legitimately read zero — the mirror must still
  // agree).
  const auto& lint = fx.dom.lint().counters();
  if (chk::enabled()) {
    EXPECT_GT(lint.requests_checked, 0u);
  }
  const auto mirrored = fx.dom.metrics().value_text("lint",
                                                    "requests_checked");
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(std::strtoull(mirrored->c_str(), nullptr, 10),
            lint.requests_checked);
  // DomainStats likewise: forwards counted and mirrored as ipc/forwards.
  const auto forwards = fx.dom.metrics().value_text("ipc", "forwards");
  ASSERT_TRUE(forwards.has_value());
  EXPECT_EQ(std::strtoull(forwards->c_str(), nullptr, 10),
            fx.dom.stats().forwards);
}

TEST(Profile, TopFibersCountDispatches) {
  ChainFixture fx(1);
  // Per-resume host-CPU charging is opt-in (it costs two clock reads per
  // dispatch); enable it so the wall_ns ranking below is meaningful.
  sim::fiber_profiling() = true;
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  const auto top = fx.dom.top_fibers(3);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 3u);
  bool saw_client = false;
  for (const auto& f : top) {
    EXPECT_GT(f.dispatches, 0u);
    if (f.name == "client") saw_client = true;
  }
  // Fibers are ranked by host wall time, descending.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].wall_ns, top[i].wall_ns);
  }
  (void)saw_client;  // ranking is wall-time dependent; presence not asserted
  sim::fiber_profiling() = false;
}

// --- head-based sampling (PR 8) -------------------------------------------

TEST(Sampling, RateZeroSuppressesWholeChain) {
  ChainFixture fx(3);
  fx.dom.tracer().enable();
  fx.dom.tracer().sampler().set_rate(0.0);
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/next/next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  // The head decision said no, so NOTHING downstream records: no root
  // span, no hop/queue/service spans on any of the four servers.
  EXPECT_TRUE(fx.dom.tracer().spans().empty());
  EXPECT_EQ(fx.dom.tracer().trace_count(), 0u);
  EXPECT_EQ(fx.dom.tracer().sampler().sampled(), 0u);
  EXPECT_GT(fx.dom.tracer().sampler().skipped(), 0u);
}

TEST(Sampling, OpcodeOverridePropagatesSampledBitAcrossForwards) {
  constexpr int kLinks = 3;
  ChainFixture fx(kLinks);
  fx.dom.tracer().enable();
  auto& sampler = fx.dom.tracer().sampler();
  sampler.set_rate(0.0);  // drop everything ...
  sampler.set_opcode_rate(msg::kCreateInstance, 1.0);  // ... except opens
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/next/next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  // The Open was sampled at its root, and the decision travelled in the
  // envelope: every forwarded hop of that one transaction is present.
  const auto& spans = fx.dom.tracer().spans();
  const obs::Span* root = nullptr;
  for (const auto& s : spans) {
    if (s.category == "send") {
      EXPECT_EQ(s.name, "send open") << "only opens may be sampled";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  int hops = 0;
  for (const auto& s : spans) {
    // One trace end-to-end: no span belongs to an unsampled transaction.
    EXPECT_EQ(s.trace_id, root->trace_id);
    if (s.category == "hop") ++hops;
  }
  EXPECT_EQ(hops, kLinks + 1);
  // The close (kReleaseInstance) and everything else was skipped.
  EXPECT_GT(sampler.skipped(), 0u);
}

TEST(Sampling, DecisionSequenceIsDeterministic) {
  obs::SamplePolicy a;
  obs::SamplePolicy b;
  a.set_rate(0.25);
  b.set_rate(0.25);
  int kept = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool keep = a.decide(msg::kCreateInstance);
    EXPECT_EQ(keep, b.decide(msg::kCreateInstance)) << "draw " << i;
    kept += keep ? 1 : 0;
  }
  // The private splitmix64 counter is the only entropy source: identical
  // configuration means identical decisions, and the keep fraction tracks
  // the configured rate.
  EXPECT_EQ(a.sampled() + a.skipped(), 2000u);
  EXPECT_NEAR(kept, 500, 120);

  // Rates 0 and 1 are exact, not probabilistic.
  obs::SamplePolicy c;
  c.set_opcode_rate(7, 0.0);
  EXPECT_TRUE(c.decide(9));
  EXPECT_FALSE(c.decide(7));
}

// --- flight recorder (PR 8) -----------------------------------------------

TEST(Flight, RingWrapKeepsLastEventsAndCountsLosses) {
  obs::FlightRecorder rec;
  rec.set_capacity(5);  // rounds up to the next power of two
  EXPECT_EQ(rec.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    rec.record(0, obs::FlightKind::kTimer,
               static_cast<sim::SimTime>(i) * 10, 0, 0, 0,
               static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(rec.records(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const std::string json = rec.chrome_json();
  // Only the newest 8 records survive the wrap: args 13..20.
  EXPECT_NE(json.find("\"arg\": \"20\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\": \"13\""), std::string::npos);
  EXPECT_EQ(json.find("\"arg\": \"12\""), std::string::npos);
}

TEST(Flight, TriggerRecordsWhyAndWritesDump) {
  obs::FlightRecorder rec;
  rec.attach_host(1, "ws1");
  rec.record(1, obs::FlightKind::kSend, 1000, 42, 43, msg::kCreateInstance,
             7, /*flags=*/1);
  const std::string path = ::testing::TempDir() + "flight_trigger_test.json";
  rec.set_dump_path(path);
  EXPECT_TRUE(rec.trigger(obs::kDumpWatchdog, 2000));
  EXPECT_EQ(rec.triggers(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  // The dump names its own trigger, carries the host track, the recorded
  // send (with opcode label and the sampled flag), and matches the
  // in-memory rendering byte for byte.
  EXPECT_NE(doc.find("dump watchdog"), std::string::npos);
  EXPECT_NE(doc.find("\"ws1\""), std::string::npos);
  EXPECT_NE(doc.find("send open"), std::string::npos);
  EXPECT_NE(doc.find("\"sampled\": \"1\""), std::string::npos);
  EXPECT_EQ(doc, rec.chrome_json());
  std::remove(path.c_str());
}

TEST(Flight, UnattachedHostFallsBackToDomainRing) {
  obs::FlightRecorder rec;
  rec.record(9, obs::FlightKind::kTimer, 5, 0, 0, 0, 77);
  EXPECT_EQ(rec.rings(), 1u);  // host 9 was never attached
  EXPECT_EQ(rec.records(), 1u);
  EXPECT_NE(rec.chrome_json().find("\"arg\": \"77\""), std::string::npos);
}

// --- log-scale histograms and latency SLOs (PR 8) -------------------------

TEST(Metrics, LogHistogramBoundedRelativeError) {
  obs::LogHistogram h;
  EXPECT_TRUE(h.empty());
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.1);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.05, 1e-6);
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact =
        0.1 * (std::floor(q * 999.0) + 1.0);  // the rank the read targets
    EXPECT_NEAR(h.percentile(q), exact, exact * 0.0651)
        << "q=" << q << " exceeded the 1/16 sub-bucket error bound";
  }
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Metrics, LogHistogramClampsPathologicalInputs) {
  obs::LogHistogram h;
  h.record(-3.0);  // negative → zero bucket, not UB
  h.record(0.0);
  h.record(1e30);  // far past the quantized 64-bit range → top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_LE(h.percentile(0.5), 1e30);
}

TEST(Metrics, LatencySloSplitsWithinAndOver) {
  ChainFixture fx(1);
  // 1 ns: every open (which crosses a simulated wire) lands OVER.
  fx.dom.set_latency_slo(msg::kCreateInstance, 1);
  // 10 simulated seconds: every close lands WITHIN.
  fx.dom.set_latency_slo(msg::kReleaseInstance, 10 * sim::kSecond);
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    for (int i = 0; i < 3; ++i) {
      auto opened = co_await rt.open("next/payload.dat", kOpenRead);
      EXPECT_TRUE(opened.ok());
      if (opened.ok()) {
        svc::File f = opened.take();
        (void)co_await f.close();
      }
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  const auto* open_slo = fx.dom.slo().find(msg::kCreateInstance);
  ASSERT_NE(open_slo, nullptr);
  EXPECT_EQ(open_slo->within, 0u);
  EXPECT_GE(open_slo->over, 3u);
  const auto* close_slo = fx.dom.slo().find(msg::kReleaseInstance);
  ASSERT_NE(close_slo, nullptr);
  EXPECT_GE(close_slo->within, 3u);
  EXPECT_EQ(close_slo->over, 0u);

  // Exported through the registry as slo/<opcode>.within|.over mirrors.
  const auto over = fx.dom.metrics().value_text("slo", "open.over");
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(std::strtoull(over->c_str(), nullptr, 10), open_slo->over);
  const auto within = fx.dom.metrics().value_text("slo", "close.within");
  EXPECT_FALSE(within.has_value());  // registry key uses the opcode label
  const auto release_within =
      fx.dom.metrics().value_text("slo", "release-instance.within");
  ASSERT_TRUE(release_within.has_value());
  EXPECT_EQ(std::strtoull(release_within->c_str(), nullptr, 10),
            close_slo->within);
}

// --- event-loop watchdog (PR 8) -------------------------------------------

TEST(Watchdog, TripsOnceOnStuckSendThenDisarms) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const auto hole =
      ws2.spawn("black-hole", [](ipc::Process self) -> Co<void> {
        for (;;) (void)co_await self.receive();  // never replies
      });
  dom.enable_watchdog(5 * sim::kMillisecond, 2 * sim::kMillisecond);
  ws1.spawn("stuck", [&, hole](ipc::Process self) -> Co<void> {
    msg::Message m;
    m.set_code(0x0200);
    (void)co_await self.send(m, hole);  // parks forever; the watchdog sees it
  });
  dom.run();  // terminates: the watchdog disarms after its one trip
  EXPECT_EQ(dom.watchdog_trips(), 1u);
  EXPECT_GT(dom.flight().triggers(), 0u);
  const std::string dump = dom.flight().chrome_json();
  EXPECT_NE(dump.find("dump watchdog"), std::string::npos) << dump;
  EXPECT_NE(dump.find("flight-watchdog"), std::string::npos);
}

TEST(Watchdog, QuietRunNeverTrips) {
  ChainFixture fx(1);
  fx.dom.enable_watchdog(5 * sim::kSecond);  // generous: nothing blocks 5 s
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  EXPECT_EQ(fx.dom.watchdog_trips(), 0u);
}

// --- [metrics] flight-dump leaf (PR 8) ------------------------------------

TEST(Metrics, FlightDumpServedThroughMetricsContext) {
  ChainFixture fx(0);
  servers::MetricsServer metrics_srv;
  const auto metrics_pid = fx.ws->spawn(
      "metrics", [&](ipc::Process p) { return metrics_srv.run(p); });

  std::string doc;
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    // Traffic first, so the recorder has something to dump.
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    // The on-demand post-mortem, read like any file.
    rt.set_current({metrics_pid, naming::kDefaultContext});
    auto dump = co_await rt.open("flight-dump", kOpenRead);
    EXPECT_TRUE(dump.ok());
    if (dump.ok()) {
      svc::File f = dump.take();
      auto bytes = co_await f.read_all();
      EXPECT_TRUE(bytes.ok());
      if (bytes.ok()) {
        doc.assign(reinterpret_cast<const char*>(bytes.value().data()),
                   bytes.value().size());
      }
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  // A Chrome trace-event document with flight categories, including the
  // on-demand trigger the Open itself fired.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("flight-send"), std::string::npos);
  EXPECT_NE(doc.find("dump on-demand"), std::string::npos);
  EXPECT_GT(fx.dom.flight().triggers(), 0u);
}

#endif  // V_TRACE_ENABLED

TEST(Log, AmbientPrefixStampsTimeAndPid) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view, std::string_view line) {
    lines.emplace_back(line);
  });
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);

  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  ws.spawn("chatty", [](ipc::Process self) -> Co<void> {
    co_await self.delay(5 * sim::kMillisecond);
    VLOG(kInfo, "test-component") << "hello from inside the simulation";
  });
  dom.run();

  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(dom.process_failures(), 0u);
  ASSERT_FALSE(lines.empty());
  const std::string& line = lines.back();
  // Prefix carries simulated time and the current pid (ambient context).
  EXPECT_NE(line.find("t="), std::string::npos) << line;
  EXPECT_NE(line.find("pid=0x"), std::string::npos) << line;
  EXPECT_NE(line.find("test-component"), std::string::npos) << line;
  EXPECT_NE(line.find("hello from inside the simulation"), std::string::npos)
      << line;
}

TEST(Log, SinkRestoredToDefaultIsSafe) {
  // After restoring the default sink, logging must not crash (goes to
  // stderr) and a disabled level must not reach any sink.
  int calls = 0;
  set_log_sink([&calls](LogLevel, std::string_view, std::string_view) {
    ++calls;
  });
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  VLOG(kInfo, "quiet") << "below threshold";
  EXPECT_EQ(calls, 0);
  VLOG(kError, "loud") << "above threshold";
  EXPECT_EQ(calls, 1);
  set_log_sink(nullptr);
  set_log_level(saved);
}

}  // namespace
}  // namespace v
