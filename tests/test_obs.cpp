// Tests for the observability layer (PR 3): V-trace span parentage across
// a multi-hop forwarding chain, the `[metrics]` context serving registry
// values through the normal CSNH path, the ambient VLOG prefix, and the
// Chrome trace-event export.
//
// The recording-side tests sit under #if V_TRACE_ENABLED so this binary
// also builds and passes in a -DV_TRACE=OFF tree (where the shells record
// nothing); the VLOG prefix test is always on — the logger is not gated.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chk/ledger.hpp"
#include "common/log.hpp"
#include "naming/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "servers/file_server.hpp"
#include "servers/metrics_server.hpp"
#include "svc/runtime.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;

/// A chain of file servers joined by "next" links, so that opening
/// next/next/.../payload.dat forwards across `links` server boundaries.
struct ChainFixture {
  explicit ChainFixture(int links) {
    ws = &dom.add_host("ws1");
    for (int i = 0; i <= links; ++i) {
      auto& host = dom.add_host("fs" + std::to_string(i));
      chain.push_back(std::make_unique<servers::FileServer>(
          "fs" + std::to_string(i), servers::DiskModel::kMemory, false));
      pids.push_back(host.spawn("fs" + std::to_string(i),
                                [srv = chain.back().get()](ipc::Process p) {
                                  return srv->run(p);
                                }));
    }
    chain.back()->put_file("payload.dat", "end of the chain");
    for (int i = 0; i < links; ++i) {
      chain[static_cast<std::size_t>(i)]->put_link(
          "next",
          {pids[static_cast<std::size_t>(i) + 1], naming::kDefaultContext});
    }
  }

  ipc::Domain dom;
  ipc::Host* ws = nullptr;
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
};

#if V_TRACE_ENABLED

TEST(Trace, ForwardingChainSpanParentage) {
  constexpr int kLinks = 3;  // fs0 -> fs1 -> fs2 -> fs3: four hops
  ChainFixture fx(kLinks);
  fx.dom.tracer().enable();
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/next/next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  const auto& spans = fx.dom.tracer().spans();
  ASSERT_FALSE(spans.empty());

  // Root: the client's traced Send of the Open request.
  const obs::Span* root = nullptr;
  for (const auto& s : spans) {
    if (s.category == "send" && s.name == "send open") {
      root = &s;
      break;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_GE(root->end, root->start);  // closed by the final Reply

  auto children = [&](std::uint32_t parent, const std::string& category) {
    std::vector<const obs::Span*> out;
    for (const auto& s : spans) {
      if (s.trace_id == root->trace_id && s.parent == parent &&
          s.category == category) {
        out.push_back(&s);
      }
    }
    return out;
  };

  // Walk the hop chain: each Forward re-parents the next hop under the
  // previous one, so the tree must be a single path fs0..fs3.
  std::vector<std::string> hop_names;
  const obs::Span* cursor = root;
  for (;;) {
    auto hops = children(cursor->id, "hop");
    if (hops.empty()) break;
    ASSERT_EQ(hops.size(), 1u) << "forwarding chain must be a single path";
    cursor = hops[0];
    hop_names.push_back(cursor->name);

    // Every hop splits into exactly one queue-wait and one service segment.
    auto queue = children(cursor->id, "queue");
    auto service = children(cursor->id, "service");
    ASSERT_EQ(queue.size(), 1u);
    ASSERT_EQ(service.size(), 1u);
    EXPECT_LE(queue[0]->start, queue[0]->end);
    EXPECT_EQ(queue[0]->end, service[0]->start)
        << "service must begin where queue-wait ends";
    EXPECT_LE(service[0]->end, cursor->end);
  }
  const std::vector<std::string> expected{"hop fs0", "hop fs1", "hop fs2",
                                          "hop fs3"};
  EXPECT_EQ(hop_names, expected);

  // The rendering and the Chrome export must both carry the chain.
  const std::string text = fx.dom.tracer().render_text(root->trace_id);
  for (const auto& name : expected) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
  }
  const std::string json = fx.dom.tracer().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("hop fs3"), std::string::npos);
}

TEST(Trace, UntracedRunRecordsNothing) {
  ChainFixture fx(1);
  // tracer never enabled
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  EXPECT_TRUE(fx.dom.tracer().spans().empty());
  EXPECT_EQ(fx.dom.tracer().trace_count(), 0u);
}

TEST(Metrics, ContextReadMatchesRegistry) {
  ChainFixture fx(0);  // one file server, no links
  servers::MetricsServer metrics_srv;
  const auto metrics_pid = fx.ws->spawn(
      "metrics", [&](ipc::Process p) { return metrics_srv.run(p); });

  std::string read_value;
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    // Generate some traffic so fs0's counters are nonzero.
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    // Read the counter back through the normal CSNH path.
    rt.set_current({metrics_pid, naming::kDefaultContext});
    auto metric = co_await rt.open("fs0/requests", kOpenRead);
    EXPECT_TRUE(metric.ok());
    if (metric.ok()) {
      svc::File f = metric.take();
      auto bytes = co_await f.read_all();
      EXPECT_TRUE(bytes.ok());
      if (bytes.ok()) {
        read_value.assign(
            reinterpret_cast<const char*>(bytes.value().data()),
            bytes.value().size());
      }
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);

  // Same value the registry snapshot reports (nothing touched fs0 after
  // the metric was opened, so the live value did not move).
  const auto registry_value = fx.dom.metrics().value_text("fs0", "requests");
  ASSERT_TRUE(registry_value.has_value());
  EXPECT_EQ(read_value, *registry_value);

  // And it parses as a positive integer (open + close = at least 2).
  const long parsed = std::strtol(read_value.c_str(), nullptr, 10);
  EXPECT_GE(parsed, 2);

  // The JSON snapshot mentions the same scope and counter.
  const std::string json = fx.dom.metrics().to_json();
  EXPECT_NE(json.find("\"fs0\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
}

TEST(Metrics, LintCountersMirroredIntoRegistry) {
  ChainFixture fx(1);
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  // The protocol-lint accessors keep working AND the registry mirrors them
  // (with V_CHECKS=OFF both legitimately read zero — the mirror must still
  // agree).
  const auto& lint = fx.dom.lint().counters();
  if (chk::enabled()) EXPECT_GT(lint.requests_checked, 0u);
  const auto mirrored = fx.dom.metrics().value_text("lint",
                                                    "requests_checked");
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(std::strtoull(mirrored->c_str(), nullptr, 10),
            lint.requests_checked);
  // DomainStats likewise: forwards counted and mirrored as ipc/forwards.
  const auto forwards = fx.dom.metrics().value_text("ipc", "forwards");
  ASSERT_TRUE(forwards.has_value());
  EXPECT_EQ(std::strtoull(forwards->c_str(), nullptr, 10),
            fx.dom.stats().forwards);
}

TEST(Profile, TopFibersCountDispatches) {
  ChainFixture fx(1);
  fx.ws->spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pids[0], naming::kDefaultContext}});
    auto opened = co_await rt.open("next/payload.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  fx.dom.run();
  ASSERT_EQ(fx.dom.process_failures(), 0u);
  const auto top = fx.dom.top_fibers(3);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 3u);
  bool saw_client = false;
  for (const auto& f : top) {
    EXPECT_GT(f.dispatches, 0u);
    if (f.name == "client") saw_client = true;
  }
  // Fibers are ranked by host wall time, descending.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].wall_ns, top[i].wall_ns);
  }
  (void)saw_client;  // ranking is wall-time dependent; presence not asserted
}

#endif  // V_TRACE_ENABLED

TEST(Log, AmbientPrefixStampsTimeAndPid) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view, std::string_view line) {
    lines.emplace_back(line);
  });
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);

  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  ws.spawn("chatty", [](ipc::Process self) -> Co<void> {
    co_await self.delay(5 * sim::kMillisecond);
    VLOG(kInfo, "test-component") << "hello from inside the simulation";
  });
  dom.run();

  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(dom.process_failures(), 0u);
  ASSERT_FALSE(lines.empty());
  const std::string& line = lines.back();
  // Prefix carries simulated time and the current pid (ambient context).
  EXPECT_NE(line.find("t="), std::string::npos) << line;
  EXPECT_NE(line.find("pid=0x"), std::string::npos) << line;
  EXPECT_NE(line.find("test-component"), std::string::npos) << line;
  EXPECT_NE(line.find("hello from inside the simulation"), std::string::npos)
      << line;
}

TEST(Log, SinkRestoredToDefaultIsSafe) {
  // After restoring the default sink, logging must not crash (goes to
  // stderr) and a disabled level must not reach any sink.
  int calls = 0;
  set_log_sink([&calls](LogLevel, std::string_view, std::string_view) {
    ++calls;
  });
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  VLOG(kInfo, "quiet") << "below threshold";
  EXPECT_EQ(calls, 0);
  VLOG(kError, "loud") << "above threshold";
  EXPECT_EQ(calls, 1);
  set_log_sink(nullptr);
  set_log_level(saved);
}

}  // namespace
}  // namespace v
