// Tests for the remaining standard servers: time, terminal, printer,
// internet (TCP), team (program loading), and mail — each a distinct kind
// of name space living behind the same protocol.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "servers/internet_server.hpp"
#include "servers/mail_server.hpp"
#include "servers/printer_server.hpp"
#include "servers/team_server.hpp"
#include "servers/terminal_server.hpp"
#include "servers/time_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using sim::kMillisecond;
using sim::kSecond;
using test::VFixture;

std::string to_str(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::span<const std::byte> as_span(std::string_view text) {
  return std::as_bytes(std::span(text.data(), text.size()));
}

// --- time server -------------------------------------------------------------

TEST(TimeServer, ReturnsSimulatedSeconds) {
  VFixture fx;
  fx.fs1.spawn("time", servers::time_server);
  fx.run_client([](ipc::Process self, svc::Rt) -> Co<void> {
    co_await self.delay(3 * kSecond);
    auto t = co_await servers::get_time(self);
    EXPECT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 3u);
    co_await self.delay(2 * kSecond);
    t = co_await servers::get_time(self);
    EXPECT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 5u);
  });
}

TEST(TimeServer, NoServerMeansNoReply) {
  VFixture fx;
  fx.run_client([](ipc::Process self, svc::Rt) -> Co<void> {
    auto t = co_await servers::get_time(self);
    EXPECT_EQ(t.code(), ReplyCode::kNoReply);
  });
}

// --- terminal server -----------------------------------------------------------

TEST(TerminalServer, CreateWriteAndListTerminals) {
  VFixture fx;
  servers::TerminalServer terms;
  const auto vt_pid =
      fx.ws1.spawn("vgts", [&](ipc::Process p) { return terms.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({vt_pid, naming::kDefaultContext});
    auto opened = co_await rt.open("vt01", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File vt = opened.take();
    auto wrote = co_await vt.write_block(0, as_span("login: mann\n"));
    EXPECT_TRUE(wrote.ok());
    wrote = co_await vt.write_block(0, as_span("% ls\n"));
    EXPECT_TRUE(wrote.ok());  // appends despite block 0: stream semantics
    EXPECT_EQ(co_await vt.close(), ReplyCode::kOk);

    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 1u);
      EXPECT_EQ(records.value()[0].type, DescriptorType::kTerminal);
      EXPECT_EQ(records.value()[0].name, "vt01");
      EXPECT_EQ(records.value()[0].size,
                std::string("login: mann\n% ls\n").size());
    }
  });
  EXPECT_EQ(terms.transcript("vt01").value(), "login: mann\n% ls\n");
}

TEST(TerminalServer, RemoveDestroysTransientObject) {
  VFixture fx;
  servers::TerminalServer terms;
  const auto vt_pid =
      fx.ws1.spawn("vgts", [&](ipc::Process p) { return terms.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({vt_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("vt02"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.create("vt02"), ReplyCode::kNameExists);
    EXPECT_EQ(co_await rt.remove("vt02"), ReplyCode::kOk);
    EXPECT_EQ((co_await rt.query("vt02")).code(), ReplyCode::kNotFound);
  });
}

// --- printer server ------------------------------------------------------------

TEST(PrinterServer, JobLifecycleThroughStatuses) {
  VFixture fx;
  servers::PrinterServer printer(/*bytes_per_second=*/100);
  const auto pr_pid =
      fx.fs2.spawn("printer", [&](ipc::Process p) { return printer.run(p); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({pr_pid, naming::kDefaultContext});
    auto opened = co_await rt.open("thesis.ps", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File job = opened.take();
    // 50 bytes at 100 B/s = 0.5 s of printing.
    const std::string fifty(50, 'x');
    auto wrote = co_await job.write_block(0, as_span(fifty));
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(co_await job.close(), ReplyCode::kOk);

    auto desc = co_await rt.query("thesis.ps");
    EXPECT_TRUE(desc.ok());
    if (desc.ok()) {
      EXPECT_EQ(desc.value().type, DescriptorType::kPrintJob);
      EXPECT_EQ(desc.value().size, 50u);
    }
    // Mid-print: cancellation refused.
    co_await self.delay(100 * kMillisecond);
    EXPECT_EQ(co_await rt.remove("thesis.ps"), ReplyCode::kBadState);
    // After completion: status done, removal allowed.
    co_await self.delay(kSecond);
    auto done = co_await rt.query("thesis.ps");
    EXPECT_TRUE(done.ok());
    if (done.ok()) {
      EXPECT_EQ(done.value().context_id,
                static_cast<std::uint32_t>(
                    servers::PrinterServer::JobStatus::kDone));
    }
    EXPECT_EQ(co_await rt.remove("thesis.ps"), ReplyCode::kOk);
  });
}

TEST(PrinterServer, SpoolIsWriteOnly) {
  VFixture fx;
  servers::PrinterServer printer;
  const auto pr_pid =
      fx.fs2.spawn("printer", [&](ipc::Process p) { return printer.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({pr_pid, naming::kDefaultContext});
    auto opened = co_await rt.open("job1", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File job = opened.take();
    std::vector<std::byte> buf(16);
    auto got = co_await job.read_block(0, buf);
    EXPECT_EQ(got.code(), ReplyCode::kNotReadable);
    EXPECT_EQ(co_await job.close(), ReplyCode::kOk);
  });
}

TEST(PrinterServer, QueueSerializes) {
  // Two jobs: the second starts only after the first finishes.
  VFixture fx;
  servers::PrinterServer printer(/*bytes_per_second=*/100);
  const auto pr_pid =
      fx.fs2.spawn("printer", [&](ipc::Process p) { return printer.run(p); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({pr_pid, naming::kDefaultContext});
    for (const char* name : {"a.ps", "b.ps"}) {
      auto opened = co_await rt.open(name, kOpenWrite | kOpenCreate);
      EXPECT_TRUE(opened.ok());
      if (!opened.ok()) co_return;
      svc::File job = opened.take();
      const std::string hundred(100, 'x');
      auto wrote = co_await job.write_block(0, as_span(hundred));
      EXPECT_TRUE(wrote.ok());
      EXPECT_EQ(co_await job.close(), ReplyCode::kOk);
    }
    co_await self.delay(500 * kMillisecond);
    // a.ps (queued first) is printing; b.ps is still queued behind it.
    EXPECT_EQ(printer.status("a.ps", self.now()).value(),
              servers::PrinterServer::JobStatus::kPrinting);
    EXPECT_EQ(printer.status("b.ps", self.now()).value(),
              servers::PrinterServer::JobStatus::kQueued);
  });
}

// --- internet server ------------------------------------------------------------

TEST(InternetServer, ConnectionsAreNamedObjects) {
  VFixture fx;
  servers::InternetServer inet;
  const auto inet_pid =
      fx.fs2.spawn("inet", [&](ipc::Process p) { return inet.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({inet_pid, naming::kDefaultContext});
    auto opened =
        co_await rt.open("su-score.arpa:23", kOpenRead | kOpenWrite |
                                                 kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File conn = opened.take();
    auto wrote = co_await conn.write_block(0, as_span("PING"));
    EXPECT_TRUE(wrote.ok());
    std::vector<std::byte> buf(4);
    auto got = co_await conn.read_block(0, buf);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(std::memcmp(buf.data(), "PING", 4), 0);  // loopback echo
    }
    EXPECT_EQ(co_await conn.close(), ReplyCode::kOk);
    // Connections show up in the context directory.
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 1u);
      EXPECT_EQ(records.value()[0].type, DescriptorType::kConnection);
      EXPECT_EQ(records.value()[0].name, "su-score.arpa:23");
    }
  });
}

TEST(InternetServer, MalformedEndpointRejected) {
  VFixture fx;
  servers::InternetServer inet;
  const auto inet_pid =
      fx.fs2.spawn("inet", [&](ipc::Process p) { return inet.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({inet_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("no-port-here"), ReplyCode::kBadArgs);
    EXPECT_EQ(co_await rt.create("host:12x"), ReplyCode::kBadArgs);
    EXPECT_EQ(co_await rt.create(":80"), ReplyCode::kBadArgs);
  });
}

// --- mail server ----------------------------------------------------------------

TEST(MailServer, ForeignSyntaxNamesWork) {
  VFixture fx;
  servers::MailServer mail;
  const auto mail_pid =
      fx.fs2.spawn("mail", [&](ipc::Process p) { return mail.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({mail_pid, naming::kDefaultContext});
    // The whole ARPA mailbox name is one component; '/' is not special.
    EXPECT_EQ(co_await rt.create("cheriton@su-score.ARPA"), ReplyCode::kOk);
    auto opened = co_await rt.open("cheriton@su-score.ARPA",
                                   kOpenRead | kOpenWrite);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File box = opened.take();
    auto sent = co_await box.write_block(0, as_span("Naming paper accepted"));
    EXPECT_TRUE(sent.ok());
    sent = co_await box.write_block(0, as_span("Camera-ready due 5/1"));
    EXPECT_TRUE(sent.ok());
    auto bytes = co_await box.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(to_str(bytes.value()),
                "Naming paper accepted\nCamera-ready due 5/1\n");
    }
    EXPECT_EQ(co_await box.close(), ReplyCode::kOk);
    auto desc = co_await rt.query("cheriton@su-score.ARPA");
    EXPECT_TRUE(desc.ok());
    if (desc.ok()) {
      EXPECT_EQ(desc.value().type, DescriptorType::kMailbox);
      EXPECT_EQ(desc.value().context_id, 2u);  // message count
      EXPECT_EQ(desc.value().owner, "cheriton");
    }
  });
  EXPECT_EQ(mail.message_count("cheriton@su-score.ARPA").value(), 2u);
}

TEST(MailServer, InvalidMailboxNamesRejected) {
  VFixture fx;
  servers::MailServer mail;
  const auto mail_pid =
      fx.fs2.spawn("mail", [&](ipc::Process p) { return mail.run(p); });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({mail_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("no-at-sign"), ReplyCode::kBadArgs);
    EXPECT_EQ(co_await rt.create("two@at@signs"), ReplyCode::kBadArgs);
    EXPECT_EQ(co_await rt.create("@host"), ReplyCode::kBadArgs);
  });
}

// --- team server -----------------------------------------------------------------

TEST(TeamServer, LoadsProgramThroughPrefixedName) {
  VFixture fx;
  servers::TeamServer team({fx.alpha_pid, naming::kDefaultContext});
  const auto team_pid =
      fx.ws1.spawn("team", [&](ipc::Process p) { return team.run(p); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    auto loaded =
        co_await servers::TeamServer::load_program(self, team_pid,
                                                   "[bin]edit");
    EXPECT_TRUE(loaded.ok());
    // The running program appears in the team server's context directory.
    rt.set_current({team_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 1u);
      EXPECT_EQ(records.value()[0].type, DescriptorType::kProcess);
      EXPECT_EQ(records.value()[0].size, 4096u);  // [bin]edit image size
      // Kill it via the uniform remove operation.
      EXPECT_EQ(co_await rt.remove(records.value()[0].name), ReplyCode::kOk);
    }
    auto after = co_await rt.list_context("");
    EXPECT_TRUE(after.ok());
    if (after.ok()) {
      EXPECT_TRUE(after.value().empty());
    }
  });
  EXPECT_EQ(team.program_count(), 0u);
}

TEST(TeamServer, MissingProgramFails) {
  VFixture fx;
  servers::TeamServer team({fx.alpha_pid, naming::kDefaultContext});
  const auto team_pid =
      fx.ws1.spawn("team", [&](ipc::Process p) { return team.run(p); });
  fx.run_client([&, team_pid](ipc::Process self, svc::Rt) -> Co<void> {
    auto loaded = co_await servers::TeamServer::load_program(
        self, team_pid, "[bin]nonexistent");
    EXPECT_EQ(loaded.code(), ReplyCode::kNotFound);
  });
}

}  // namespace
}  // namespace v
