// Tests for the context prefix server: '[prefix]' routing, the optional
// Add/DeleteContextName operations, logical (GetPid-at-use) entries, and
// crash/rebinding behaviour.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

TEST(PrefixServer, PrefixedOpenRoutesToTargetServer) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("[beta]pub/readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(f.server(), fx.beta_pid);
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(PrefixServer, HomeAndBinPrefixes) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto home = co_await rt.open("[home]naming.mss", kOpenRead);
    EXPECT_TRUE(home.ok());
    if (home.ok()) {
      svc::File f = home.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    auto bin = co_await rt.open("[bin]edit", kOpenRead);
    EXPECT_TRUE(bin.ok());
    if (bin.ok()) {
      svc::File f = bin.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(PrefixServer, UnknownPrefixIsNotFound) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("[nosuch]file", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kNotFound);
  });
}

TEST(PrefixServer, AddAndDeletePrefixThroughProtocol) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.add_prefix(
                  "pub", {fx.beta_pid, fx.beta.context_of("pub")}),
              ReplyCode::kOk);
    auto opened = co_await rt.open("[pub]readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(co_await rt.delete_prefix("pub"), ReplyCode::kOk);
    EXPECT_EQ((co_await rt.open("[pub]readme", kOpenRead)).code(),
              ReplyCode::kNotFound);
    EXPECT_EQ(co_await rt.delete_prefix("pub"), ReplyCode::kNotFound);
  });
}

TEST(PrefixServer, RedefinitionRetargetsPrefix) {
  // Redefining an existing prefix must update the local table — NOT forward
  // the request to the old target (the defines-leaf rule in the walk).
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.add_prefix(
                  "work", {fx.alpha_pid, fx.alpha.context_of("usr/mann")}),
              ReplyCode::kOk);
    auto one = co_await rt.open("[work]naming.mss", kOpenRead);
    EXPECT_TRUE(one.ok());
    if (one.ok()) {
      svc::File f = one.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(co_await rt.add_prefix(
                  "work", {fx.beta_pid, fx.beta.context_of("pub")}),
              ReplyCode::kOk);
    auto two = co_await rt.open("[work]readme", kOpenRead);
    EXPECT_TRUE(two.ok());
    if (two.ok()) {
      svc::File f = two.take();
      EXPECT_EQ(f.server(), fx.beta_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(PrefixServer, MapContextThroughPrefix) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto mapped = co_await rt.map_context("[beta]pub/data");
    EXPECT_TRUE(mapped.ok());
    EXPECT_EQ(mapped.value().server, fx.beta_pid);
    EXPECT_EQ(mapped.value().context, fx.beta.context_of("pub/data"));
  });
}

TEST(PrefixServer, ContextDirectoryListsPrefixTable) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    // Open the prefix server's own context directory by talking to it as
    // the current context.
    rt.set_current({fx.prefix_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    EXPECT_EQ(records.value().size(), 5u);  // alpha beta home bin storage
    bool saw_logical = false;
    for (const auto& rec : records.value()) {
      EXPECT_EQ(rec.type, DescriptorType::kPrefix);
      EXPECT_EQ(rec.owner, "mann");
      if (rec.name == "storage") {
        saw_logical = true;
        EXPECT_NE(rec.flags & naming::kLogical, 0);
      }
    }
    EXPECT_TRUE(saw_logical);
    (void)self;
  });
}

TEST(PrefixServer, LogicalPrefixResolvesViaGetPid) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    // [storage] binds to ServiceId::kStorageServer at each use; alpha is
    // the registered storage server.
    auto opened = co_await rt.open("[storage]usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(f.server(), fx.alpha_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(PrefixServer, LogicalPrefixRebindsAfterCrashRestart) {
  // The paper's motivation for logical entries: "it has proven useful to be
  // able to give character string names to generic services in this way."
  VFixture fx;
  servers::FileServer replacement("alpha-v2");
  replacement.put_file("usr/mann/naming.mss", "recovered content");
  ipc::ProcessId replacement_pid;

  fx.dom.loop().schedule_at(50 * kMillisecond, [&] { fx.fs1.crash(); });
  fx.dom.loop().schedule_at(100 * kMillisecond, [&] {
    fx.fs1.restart();
    replacement_pid = fx.fs1.spawn(
        "alpha-v2", [&](ipc::Process p) { return replacement.run(p); });
  });

  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    // Before the crash: works against the original alpha.
    auto before = co_await rt.open("[storage]usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(before.ok());
    if (before.ok()) {
      svc::File f = before.take();
      EXPECT_EQ(f.server(), fx.alpha_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    co_await self.delay(200 * kMillisecond);  // crash + restart happen
    // Same NAME keeps working; it now binds to the replacement server.
    auto after = co_await rt.open("[storage]usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(after.ok());
    if (after.ok()) {
      svc::File f = after.take();
      EXPECT_EQ(f.server(), replacement_pid);
      EXPECT_NE(f.server(), fx.alpha_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // An ordinary (pid-bound) prefix to the dead pid fails instead.  The
    // fixture's rebind group is probed first (V-fault recovery), but the
    // replacement never joined it, so the probe passes in silence and the
    // group timeout surfaces — a clean failure, never a wrong binding.
    auto stale = co_await rt.open("[alpha]usr/mann/naming.mss", kOpenRead);
    EXPECT_EQ(stale.code(), ReplyCode::kTimeout);
  });
}

TEST(PrefixServer, PerUserTablesAreIndependent) {
  VFixture fx;
  // A second workstation with its own user and different prefixes.
  auto& ws2 = fx.dom.add_host("ws2");
  servers::ContextPrefixServer other("cheriton");
  other.define("docs", {.target = {fx.beta_pid, fx.beta.context_of("pub")}});
  ws2.spawn("prefix-server-2",
            [&](ipc::Process p) { return other.run(p); });

  bool ws2_done = false;
  ws2.spawn("client2", [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, naming::ContextPair{fx.beta_pid, naming::kDefaultContext});
    // [docs] exists for cheriton...
    auto ok = co_await rt.open("[docs]readme", kOpenRead);
    EXPECT_TRUE(ok.ok());
    if (ok.ok()) {
      svc::File f = ok.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // ...but mann's [home] does not exist here.
    EXPECT_EQ((co_await rt.open("[home]naming.mss", kOpenRead)).code(),
              ReplyCode::kNotFound);
    ws2_done = true;
  });
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    // mann's [home] works on ws1; [docs] does not.
    auto ok = co_await rt.open("[home]naming.mss", kOpenRead);
    EXPECT_TRUE(ok.ok());
    if (ok.ok()) {
      svc::File f = ok.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ((co_await rt.open("[docs]readme", kOpenRead)).code(),
              ReplyCode::kNotFound);
  });
  EXPECT_TRUE(ws2_done);
}

TEST(PrefixServer, FootprintIsSmall) {
  // Mirror of the paper's 4.5 KB code + 2.6 KB data observation: the table
  // for a typical user stays in the low kilobytes.
  VFixture fx;
  EXPECT_EQ(fx.prefixes.entry_count(), 5u);
  EXPECT_LT(fx.prefixes.table_bytes(), 2600u);
}

}  // namespace
}  // namespace v
