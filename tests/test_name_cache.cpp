// Tests for the client name cache (the paper-section-2.2 ablation): the
// mechanics of hit/miss/LRU, the latency benefit under reuse, the graceful
// recovery from detectable staleness, and — since bindings are generation
// validated — the DETECTION of the reused-context-id hazard that used to
// produce silent wrong answers.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using svc::NameCache;
using test::VFixture;

NameCache::Binding binding(naming::ContextPair target,
                           std::uint32_t generation = 1,
                           std::uint16_t consumed = 0) {
  return NameCache::Binding{target, generation, consumed, {}};
}

// --- unit mechanics -------------------------------------------------------------

TEST(NameCacheUnit, HitMissAndCounters) {
  NameCache cache(8);
  const naming::ContextPair target{ipc::ProcessId::make(1, 2), 7};
  EXPECT_FALSE(cache.find("usr/mann").has_value());
  cache.put("usr/mann", binding(target, 42, 9));
  auto hit = cache.find("usr/mann");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->target, target);
  EXPECT_EQ(hit->generation, 42u);
  EXPECT_EQ(hit->consumed, 9u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NameCacheUnit, LruEvictionAtCapacity) {
  NameCache cache(3);
  const auto t = binding({ipc::ProcessId::make(1, 1), 0});
  cache.put("a", t);
  cache.put("b", t);
  cache.put("c", t);
  (void)cache.find("a");  // refresh "a"
  cache.put("d", t);      // evicts "b" (least recently used)
  EXPECT_TRUE(cache.find("a").has_value());
  EXPECT_FALSE(cache.find("b").has_value());
  EXPECT_TRUE(cache.find("c").has_value());
  EXPECT_TRUE(cache.find("d").has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(NameCacheUnit, EraseCountsInvalidations) {
  NameCache cache(4);
  cache.put("x", binding({ipc::ProcessId::make(1, 1), 0}));
  cache.erase("x");
  cache.erase("x");  // second erase of a missing entry is a no-op
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_FALSE(cache.find("x").has_value());
}

TEST(NameCacheUnit, NewerOriginGenerationSweepsDependents) {
  NameCache cache(8);
  const ipc::BindingHint prefix_gen5{/*server_pid=*/77, /*context_id=*/0,
                                     /*generation=*/5, /*consumed=*/0};
  auto via_prefix = binding({ipc::ProcessId::make(1, 2), 3}, 10, 7);
  via_prefix.origin = prefix_gen5;
  cache.put("[home]src", via_prefix);
  cache.put("usr/mann", binding({ipc::ProcessId::make(1, 2), 4}, 11, 9));

  // Observing the same generation again changes nothing.
  cache.observe_origin(prefix_gen5);
  EXPECT_EQ(cache.size(), 2u);

  // A newer generation of the prefix table drops the entry that was
  // resolved through it — and only that one.
  cache.observe_origin(ipc::BindingHint{77, 0, 6, 0});
  EXPECT_FALSE(cache.find("[home]src").has_value());
  EXPECT_TRUE(cache.find("usr/mann").has_value());
  EXPECT_EQ(cache.invalidations(), 1u);
}

// --- behaviour through the protocol ---------------------------------------------

TEST(NameCacheRt, ReusedDirectoryHitsSkipInterpretation) {
  VFixture fx;
  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    // First open resolves the full path and populates the cache.
    auto t0 = self.now();
    auto first = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                         kOpenRead);
    const auto cold = self.now() - t0;
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // Second open of a sibling hits the cache: only the leaf travels.
    t0 = self.now();
    auto second = co_await rt.open_cached(cache, "usr/mann/paper.mss",
                                          kOpenRead);
    const auto warm = self.now() - t0;
    EXPECT_TRUE(second.ok());
    if (second.ok()) {
      svc::File f = second.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.stale(), 0u);  // generation still current: validated hit
    EXPECT_LT(warm, cold);         // fewer components interpreted
  });
}

TEST(NameCacheRt, WorksAcrossPrefixesAndLinks) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    // Through the prefix server AND a cross-server link: the cache ends up
    // holding beta's context although the name names alpha's prefix.
    auto first = co_await rt.open_cached(
        cache, "[home]proj/readme", kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(f.server(), fx.beta_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    auto again = co_await rt.open_cached(
        cache, "[home]proj/readme", kOpenRead);
    EXPECT_TRUE(again.ok());
    if (again.ok()) {
      svc::File f = again.take();
      EXPECT_EQ(f.server(), fx.beta_pid);  // straight to beta this time
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.hits(), 1u);
  });
}

TEST(NameCacheRt, DeadServerEntryInvalidatesAndRecovers) {
  VFixture fx;
  fx.dom.loop().schedule_at(50 * kMillisecond, [&fx] { fx.fs2.crash(); });
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    auto first = co_await rt.open_cached(cache, "[beta]pub/readme",
                                         kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    co_await self.delay(100 * kMillisecond);  // beta dies
    // The cached entry points at the dead beta: detectably stale
    // (kNoReply), invalidated, and the full walk reports the truth.
    auto second = co_await rt.open_cached(cache, "[beta]pub/readme",
                                          kOpenRead);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(cache.invalidations(), 1u);
    EXPECT_EQ(cache.fallbacks(), 1u);
    EXPECT_EQ(cache.size(), 0u);
  });
}

TEST(NameCacheRt, ReusedContextIdDetectedByGeneration) {
  // THE inconsistency of paper section 2.2: a restarted server hands out
  // the same context ids for a DIFFERENT directory tree.  The unvalidated
  // cache served the impostor's bytes with no error anywhere; with
  // generation-stamped bindings the impostor's contexts carry generations
  // from a fresh domain-wide floor, so the cached open is REFUSED with
  // kStaleContext instead of being misinterpreted.
  VFixture fx;
  servers::FileServer impostor("alpha-v2", servers::DiskModel::kMemory,
                               /*register_service=*/false);
  // Same shape, different content: inode/context ids coincide with the
  // original alpha's because allocation is deterministic.
  impostor.put_file("usr/mann/naming.mss", "IMPOSTOR CONTENT");
  impostor.put_file("usr/mann/paper.mss", "IMPOSTOR CONTENT");
  ipc::ProcessId impostor_pid;

  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    auto first = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                         kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // alpha's host crashes; a different file server reappears there.  To
    // model pid reuse (spatially unique, NOT unique in time — section
    // 4.1), the client's cache entry is rewritten to the impostor's pid,
    // keeping the context id and generation it learned from the original.
    fx.fs1.crash();
    fx.fs1.restart();
    impostor_pid = fx.fs1.spawn(
        "alpha-v2", [&](ipc::Process p) { return impostor.run(p); });
    co_await self.delay(kMillisecond);
    auto stale = cache.find("usr/mann");
    EXPECT_TRUE(stale.has_value());
    if (!stale.has_value()) co_return;
    auto rewritten = *stale;
    rewritten.target.server = impostor_pid;
    cache.put("usr/mann", rewritten);

    // The impostor holds a valid context with the SAME id, but its
    // generation comes from a fresh incarnation floor: the cached open is
    // refused (kStaleContext), the entry dropped, and the fallback walk —
    // aimed at the dead original server — reports failure loudly instead
    // of handing back the impostor's bytes.
    auto refused = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                           kOpenRead);
    EXPECT_FALSE(refused.ok());
    EXPECT_EQ(cache.stale(), 1u);
    EXPECT_EQ(cache.fallbacks(), 1u);
    EXPECT_EQ(cache.size(), 0u);

    // Once the client legitimately adopts the new server as its current
    // context, resolution works and the cache re-learns a binding under
    // the impostor's own generation — subsequent hits validate cleanly.
    rt.set_current({impostor_pid, naming::kDefaultContext});
    auto adopted = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                           kOpenRead);
    EXPECT_TRUE(adopted.ok());
    if (!adopted.ok()) co_return;
    svc::File f = adopted.take();
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(std::string(
                    reinterpret_cast<const char*>(bytes.value().data()),
                    bytes.value().size()),
                "IMPOSTOR CONTENT");
    }
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    auto warm = co_await rt.open_cached(cache, "usr/mann/paper.mss",
                                        kOpenRead);
    EXPECT_TRUE(warm.ok());
    if (warm.ok()) {
      svc::File g = warm.take();
      EXPECT_EQ(co_await g.close(), ReplyCode::kOk);
    }
    // Three hits: the manual lookup, the refused open, the validated warm
    // open of the sibling.  Exactly one refusal ever happened.
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.stale(), 1u);
  });
}

TEST(NameCacheRt, CurrentContextNamesAreNotCached) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    EXPECT_EQ(co_await rt.change_context("usr/mann"), ReplyCode::kOk);
    auto opened = co_await rt.open_cached(cache, "naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.size(), 0u);  // single-component names: nothing to cache
  });
}

}  // namespace
}  // namespace v
