// Tests for the client name cache (the paper-section-2.2 ablation): the
// mechanics of hit/miss/LRU, the latency benefit under reuse, the graceful
// recovery from detectable staleness, and the SILENT WRONGNESS the paper
// warns about when context ids are reused.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using svc::NameCache;
using test::VFixture;

// --- unit mechanics -------------------------------------------------------------

TEST(NameCacheUnit, HitMissAndCounters) {
  NameCache cache(8);
  const naming::ContextPair target{ipc::ProcessId::make(1, 2), 7};
  EXPECT_FALSE(cache.find("usr/mann").has_value());
  cache.put("usr/mann", target);
  auto hit = cache.find("usr/mann");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, target);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NameCacheUnit, LruEvictionAtCapacity) {
  NameCache cache(3);
  const naming::ContextPair t{ipc::ProcessId::make(1, 1), 0};
  cache.put("a", t);
  cache.put("b", t);
  cache.put("c", t);
  (void)cache.find("a");  // refresh "a"
  cache.put("d", t);      // evicts "b" (least recently used)
  EXPECT_TRUE(cache.find("a").has_value());
  EXPECT_FALSE(cache.find("b").has_value());
  EXPECT_TRUE(cache.find("c").has_value());
  EXPECT_TRUE(cache.find("d").has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(NameCacheUnit, EraseCountsInvalidations) {
  NameCache cache(4);
  cache.put("x", {ipc::ProcessId::make(1, 1), 0});
  cache.erase("x");
  cache.erase("x");  // second erase of a missing entry is a no-op
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_FALSE(cache.find("x").has_value());
}

// --- behaviour through the protocol ---------------------------------------------

TEST(NameCacheRt, ReusedDirectoryHitsSkipInterpretation) {
  VFixture fx;
  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    // First open resolves the full path and populates the cache.
    auto t0 = self.now();
    auto first = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                         kOpenRead);
    const auto cold = self.now() - t0;
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // Second open of a sibling hits the cache: only the leaf travels.
    t0 = self.now();
    auto second = co_await rt.open_cached(cache, "usr/mann/paper.mss",
                                          kOpenRead);
    const auto warm = self.now() - t0;
    EXPECT_TRUE(second.ok());
    if (second.ok()) {
      svc::File f = second.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_LT(warm, cold);  // fewer components interpreted
  });
}

TEST(NameCacheRt, WorksAcrossPrefixesAndLinks) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    // Through the prefix server AND a cross-server link: the cache ends up
    // holding beta's context although the name names alpha's prefix.
    auto first = co_await rt.open_cached(
        cache, "[home]proj/readme", kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(f.server(), fx.beta_pid);
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    auto again = co_await rt.open_cached(
        cache, "[home]proj/readme", kOpenRead);
    EXPECT_TRUE(again.ok());
    if (again.ok()) {
      svc::File f = again.take();
      EXPECT_EQ(f.server(), fx.beta_pid);  // straight to beta this time
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.hits(), 1u);
  });
}

TEST(NameCacheRt, DeadServerEntryInvalidatesAndRecovers) {
  VFixture fx;
  // beta will die; [storage] logically names alpha via the service id, so
  // the full walk recovers.
  fx.dom.loop().schedule_at(50 * kMillisecond, [&fx] { fx.fs2.crash(); });
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    auto first = co_await rt.open_cached(cache, "[beta]pub/readme",
                                         kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    co_await self.delay(100 * kMillisecond);  // beta dies
    // The cached entry points at the dead beta: detectably stale
    // (kNoReply), invalidated, and the full walk reports the truth.
    auto second = co_await rt.open_cached(cache, "[beta]pub/readme",
                                          kOpenRead);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(cache.invalidations(), 1u);
    EXPECT_EQ(cache.size(), 0u);
  });
}

TEST(NameCacheRt, SilentWrongAnswerWhenContextIdReused) {
  // THE inconsistency of paper section 2.2, demonstrated: a restarted
  // server hands out the same context ids for a DIFFERENT directory tree;
  // cached resolutions now name the wrong objects and nothing detects it.
  VFixture fx;
  servers::FileServer impostor("alpha-v2", servers::DiskModel::kMemory,
                               /*register_service=*/false);
  // Same shape, different content: inode/context ids will coincide with
  // the original alpha's because allocation is deterministic.
  impostor.put_file("usr/mann/naming.mss", "IMPOSTOR CONTENT");
  impostor.put_file("usr/mann/paper.mss", "IMPOSTOR CONTENT");
  ipc::ProcessId impostor_pid;

  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    NameCache cache;
    auto first = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                         kOpenRead);
    EXPECT_TRUE(first.ok());
    if (first.ok()) {
      svc::File f = first.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // alpha's host crashes; a different file server reappears there.  To
    // model pid reuse (spatially unique, NOT unique in time — section
    // 4.1), the client's stale cache entry is rewritten to the impostor's
    // pid with the SAME context id, as would happen if the pid were
    // recycled.
    fx.fs1.crash();
    fx.fs1.restart();
    impostor_pid = fx.fs1.spawn(
        "alpha-v2", [&](ipc::Process p) { return impostor.run(p); });
    co_await self.delay(kMillisecond);
    auto stale = cache.find("usr/mann");
    EXPECT_TRUE(stale.has_value());
    if (!stale.has_value()) co_return;
    cache.put("usr/mann", {impostor_pid, stale->context});

    // The cached open SUCCEEDS — and silently returns the impostor's
    // bytes.  No error surfaces anywhere.
    auto wrong = co_await rt.open_cached(cache, "usr/mann/naming.mss",
                                         kOpenRead);
    EXPECT_TRUE(wrong.ok());
    if (!wrong.ok()) co_return;
    svc::File f = wrong.take();
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(std::string(
                    reinterpret_cast<const char*>(bytes.value().data()),
                    bytes.value().size()),
                "IMPOSTOR CONTENT");
    }
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(NameCacheRt, CurrentContextNamesAreNotCached) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    EXPECT_EQ(co_await rt.change_context("usr/mann"), ReplyCode::kOk);
    auto opened = co_await rt.open_cached(cache, "naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_EQ(cache.size(), 0u);  // single-component names: nothing to cache
  });
}

}  // namespace
}  // namespace v
