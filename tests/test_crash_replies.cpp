// Crashed-server reply-code coverage across the whole CSNH server family
// (V-fault satellite): for EVERY server kind, a client that names an
// object on a crashed server's host must get an honest kNoReply — never a
// hang, never a stale answer.  Before this matrix only the file server's
// crash path was exercised (test_cached_open).
//
// Each case is the same minimal scenario: spawn the server on its own
// host, let it settle, crash the host, then drive one CSname transaction
// at the dead pid (a direct open and a query — both the common client
// verbs).  The default Rt recovery policy (one transport retry, no rebind
// group) is left in place, so this also covers the retry-then-surface
// path for every server kind.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/exception_server.hpp"
#include "servers/file_server.hpp"
#include "servers/internet_server.hpp"
#include "servers/mail_server.hpp"
#include "servers/pipe_server.hpp"
#include "servers/prefix_server.hpp"
#include "servers/printer_server.hpp"
#include "servers/team_server.hpp"
#include "servers/terminal_server.hpp"
#include "sim/time.hpp"
#include "svc/runtime.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;

/// Run the shared scenario: `spawn` starts the server-under-test on `srv`
/// and returns its pid; the host is crashed at 5 ms and the client speaks
/// to the corpse at 10 ms.
void expect_noreply_from_crashed(
    const std::function<ipc::ProcessId(ipc::Domain&, ipc::Host&)>& spawn) {
  ipc::Domain dom;
  auto& ws = dom.add_host("ws");
  auto& srv = dom.add_host("srv");
  const ipc::ProcessId pid = spawn(dom, srv);
  dom.loop().schedule_at(5 * kMillisecond, [&srv] { srv.crash(); });

  bool finished = false;
  ws.spawn("client", [&, pid](ipc::Process self) -> Co<void> {
    co_await self.delay(10 * kMillisecond);
    EXPECT_FALSE(dom.process_alive(pid));
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {pid, naming::kDefaultContext}});
    auto opened = co_await rt.open("anything", kOpenRead);
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.code(), ReplyCode::kNoReply);
    auto described = co_await rt.query("anything");
    EXPECT_FALSE(described.ok());
    EXPECT_EQ(described.code(), ReplyCode::kNoReply);
    finished = true;
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_TRUE(finished) << "client parked forever on a crashed server";
}

TEST(CrashReplies, FileServer) {
  servers::FileServer fs("alpha");
  fs.put_file("doc.txt", "bytes");
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("file", [&fs](ipc::Process p) { return fs.run(p); });
  });
}

TEST(CrashReplies, ContextPrefixServer) {
  servers::ContextPrefixServer prefixes("mann");
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("prefix",
                   [&prefixes](ipc::Process p) { return prefixes.run(p); });
  });
}

TEST(CrashReplies, ExceptionServer) {
  servers::ExceptionServer exceptions;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("exception",
                   [&exceptions](ipc::Process p) { return exceptions.run(p); });
  });
}

TEST(CrashReplies, InternetServer) {
  servers::InternetServer inet;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("internet",
                   [&inet](ipc::Process p) { return inet.run(p); });
  });
}

TEST(CrashReplies, MailServer) {
  servers::MailServer mail;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("mail", [&mail](ipc::Process p) { return mail.run(p); });
  });
}

TEST(CrashReplies, PipeServer) {
  servers::PipeServer pipes;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("pipe", [&pipes](ipc::Process p) { return pipes.run(p); });
  });
}

TEST(CrashReplies, PrinterServer) {
  servers::PrinterServer printer;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("printer",
                   [&printer](ipc::Process p) { return printer.run(p); });
  });
}

TEST(CrashReplies, TeamServer) {
  // The team server's default program context can point anywhere; the
  // scenario never resolves through it.
  servers::TeamServer team(
      {ipc::ProcessId::invalid(), naming::kDefaultContext});
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("team", [&team](ipc::Process p) { return team.run(p); });
  });
}

TEST(CrashReplies, TerminalServer) {
  servers::TerminalServer terminals;
  expect_noreply_from_crashed([&](ipc::Domain&, ipc::Host& h) {
    return h.spawn("terminal",
                   [&terminals](ipc::Process p) { return terminals.run(p); });
  });
}

}  // namespace
}  // namespace v
