// Unit tests for the I/O protocol server-side pieces: instance table
// allocation (late reuse) and BufferInstance block semantics.
#include <gtest/gtest.h>

#include <set>

#include "io/instance.hpp"
#include "ipc/kernel.hpp"

namespace v::io {
namespace {

using sim::Co;

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> data(text.size());
  std::memcpy(data.data(), text.data(), text.size());
  return data;
}

// A process context is needed for the coroutine interfaces; run the body in
// a one-process domain.
void with_process(std::function<Co<void>(ipc::Process)> body) {
  ipc::Domain dom;
  auto& host = dom.add_host("h");
  host.spawn("tester", std::move(body));
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(InstanceTable, IdsAdvanceAndSkipOpenOnes) {
  InstanceTable table;
  const auto a = table.add(std::make_unique<BufferInstance>(bytes_of("a")));
  const auto b = table.add(std::make_unique<BufferInstance>(bytes_of("b")));
  EXPECT_NE(a, b);
  EXPECT_NE(table.find(a), nullptr);
  EXPECT_NE(table.find(b), nullptr);
  EXPECT_EQ(table.find(999), nullptr);
  EXPECT_EQ(table.open_count(), 2u);
}

TEST(InstanceTable, LateReuseAfterRelease) {
  with_process([](ipc::Process self) -> Co<void> {
    InstanceTable table;
    const auto a = table.add(std::make_unique<BufferInstance>(bytes_of("a")));
    EXPECT_TRUE(table.release(self, a));
    EXPECT_FALSE(table.release(self, a));  // double release rejected
    const auto b = table.add(std::make_unique<BufferInstance>(bytes_of("b")));
    // The freed id is NOT immediately reused (time-before-reuse maximized).
    EXPECT_NE(a, b);
    co_return;
  });
}

TEST(InstanceTable, ManyInstancesStayDistinct) {
  InstanceTable table;
  std::set<InstanceId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.insert(table.add(std::make_unique<BufferInstance>(bytes_of("x"))));
  }
  EXPECT_EQ(ids.size(), 500u);
}

TEST(BufferInstance, ReadHonorsBlockBoundaries) {
  with_process([](ipc::Process self) -> Co<void> {
    std::string content(1200, 'z');
    for (std::size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<char>('0' + i % 10);
    }
    BufferInstance inst(bytes_of(content));
    EXPECT_EQ(inst.info().size_bytes, 1200u);
    std::vector<std::byte> buf(512);
    auto got = co_await inst.read_block(self, 0, buf);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 512u);
    got = co_await inst.read_block(self, 2, buf);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 1200u - 1024u);  // short final block
    got = co_await inst.read_block(self, 3, buf);
    EXPECT_EQ(got.code(), ReplyCode::kEndOfFile);
  });
}

TEST(BufferInstance, WriteRequiresWriteableFlag) {
  with_process([](ipc::Process self) -> Co<void> {
    BufferInstance readonly(bytes_of("fixed"), kInstanceReadable);
    auto wrote = co_await readonly.write_block(
        self, 0, bytes_of("nope"));
    EXPECT_EQ(wrote.code(), ReplyCode::kNotWriteable);

    BufferInstance writeable(bytes_of("data!"),
                             kInstanceReadable | kInstanceWriteable);
    wrote = co_await writeable.write_block(self, 0, bytes_of("DATA!"));
    EXPECT_TRUE(wrote.ok());
    std::vector<std::byte> buf(5);
    auto got = co_await writeable.read_block(self, 0, buf);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(buf.data(), "DATA!", 5), 0);
  });
}

TEST(BufferInstance, WriteBeyondEndGrowsBuffer) {
  with_process([](ipc::Process self) -> Co<void> {
    BufferInstance inst({}, kInstanceReadable | kInstanceWriteable);
    auto wrote = co_await inst.write_block(self, 1, bytes_of("late"));
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(inst.info().size_bytes, 512u + 4u);
  });
}

TEST(BufferInstance, OversizedWriteRejected) {
  with_process([](ipc::Process self) -> Co<void> {
    BufferInstance inst({}, kInstanceWriteable);
    std::vector<std::byte> too_big(513);
    auto wrote = co_await inst.write_block(self, 0, too_big);
    EXPECT_EQ(wrote.code(), ReplyCode::kBadArgs);
  });
}

TEST(BufferInstance, ReadRequiresReadableFlag) {
  with_process([](ipc::Process self) -> Co<void> {
    BufferInstance writeonly(bytes_of("secret"), kInstanceWriteable);
    std::vector<std::byte> buf(6);
    auto got = co_await writeonly.read_block(self, 0, buf);
    EXPECT_EQ(got.code(), ReplyCode::kNotReadable);
  });
}

}  // namespace
}  // namespace v::io
