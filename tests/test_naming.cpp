// Tests for the naming core: types, parsing, and descriptor records,
// including a parameterized property sweep over descriptor round trips.
#include <gtest/gtest.h>

#include <random>

#include "common/pack.hpp"
#include "naming/descriptor.hpp"
#include "naming/parse.hpp"
#include "naming/types.hpp"

namespace v::naming {
namespace {

// --- types ------------------------------------------------------------------

TEST(Types, WellKnownContextClassification) {
  EXPECT_TRUE(is_well_known(kHomeContext));
  EXPECT_TRUE(is_well_known(kProgramsContext));
  EXPECT_FALSE(is_well_known(kDefaultContext));
  EXPECT_FALSE(is_well_known(42));
}

TEST(Types, ContextPairEquality) {
  const ContextPair a{ipc::ProcessId::make(1, 2), 3};
  const ContextPair b{ipc::ProcessId::make(1, 2), 3};
  const ContextPair c{ipc::ProcessId::make(1, 2), 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(ContextPair{}.valid());
}

// --- parsing ----------------------------------------------------------------

TEST(Parse, PrefixSyntaxDetection) {
  EXPECT_TRUE(has_prefix_syntax("[home]x"));
  EXPECT_FALSE(has_prefix_syntax("home/x"));
  EXPECT_FALSE(has_prefix_syntax(""));
}

TEST(Parse, PrefixExtraction) {
  std::size_t rest = 0;
  auto p = parse_prefix("[storage1]/usr/mann", rest);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, "storage1");
  EXPECT_EQ(rest, 10u);
  EXPECT_EQ(std::string_view("[storage1]/usr/mann").substr(rest),
            "/usr/mann");
}

TEST(Parse, MalformedPrefixRejected) {
  std::size_t rest = 0;
  EXPECT_FALSE(parse_prefix("[unclosed/name", rest).has_value());
  EXPECT_FALSE(parse_prefix("noprefix", rest).has_value());
}

TEST(Parse, EmptyPrefixIsValid) {
  std::size_t rest = 0;
  auto p = parse_prefix("[]x", rest);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, "");
  EXPECT_EQ(rest, 2u);
}

TEST(Parse, ComponentsLeftToRight) {
  const std::string_view name = "usr/mann/naming.mss";
  std::size_t index = 0, next = 0;
  EXPECT_EQ(next_component(name, index, next), "usr");
  index = next;
  EXPECT_EQ(next_component(name, index, next), "mann");
  index = next;
  EXPECT_EQ(next_component(name, index, next), "naming.mss");
  index = next;
  EXPECT_EQ(next_component(name, index, next), "");
}

TEST(Parse, RepeatedAndLeadingSeparatorsSkipped) {
  std::size_t next = 0;
  EXPECT_EQ(next_component("///a//b", 0, next), "a");
  EXPECT_EQ(next_component("///a//b", next, next), "b");
  EXPECT_EQ(count_components("///a//b/"), 2u);
}

TEST(Parse, CountAndLeafHelpers) {
  EXPECT_EQ(count_components(""), 0u);
  EXPECT_EQ(count_components("a"), 1u);
  EXPECT_EQ(count_components("a/b/c"), 3u);
  EXPECT_TRUE(is_simple_leaf(""));
  EXPECT_TRUE(is_simple_leaf("file.txt"));
  EXPECT_FALSE(is_simple_leaf("dir/file.txt"));
}

// --- descriptors -------------------------------------------------------------

TEST(Descriptor, EncodeDecodeRoundTrip) {
  ObjectDescriptor d;
  d.type = DescriptorType::kFile;
  d.flags = kReadable | kWriteable;
  d.size = 12345;
  d.object_id = 77;
  d.server_pid = 0xDEADBEEF;
  d.context_id = 4;
  d.mtime = 99;
  d.owner = "mann";
  d.name = "naming.mss";
  std::array<std::byte, ObjectDescriptor::kWireSize> wire{};
  d.encode(wire);
  auto decoded = ObjectDescriptor::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), d);
}

TEST(Descriptor, ShortBufferRejected) {
  std::array<std::byte, ObjectDescriptor::kWireSize - 1> wire{};
  EXPECT_EQ(ObjectDescriptor::decode(wire).code(), ReplyCode::kBadArgs);
}

TEST(Descriptor, UnknownTagRejected) {
  std::array<std::byte, ObjectDescriptor::kWireSize> wire{};
  put_u16(wire, 0, 999);
  EXPECT_EQ(ObjectDescriptor::decode(wire).code(), ReplyCode::kBadArgs);
}

TEST(Descriptor, OverlongStringsTruncateToWireLimits) {
  ObjectDescriptor d;
  d.type = DescriptorType::kFile;
  d.owner = std::string(100, 'o');
  d.name = std::string(200, 'n');
  std::array<std::byte, ObjectDescriptor::kWireSize> wire{};
  d.encode(wire);
  auto decoded = ObjectDescriptor::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().owner.size(), ObjectDescriptor::kMaxOwner);
  EXPECT_EQ(decoded.value().name.size(), ObjectDescriptor::kMaxName);
}

TEST(Descriptor, TypeNames) {
  EXPECT_EQ(to_string(DescriptorType::kFile), "file");
  EXPECT_EQ(to_string(DescriptorType::kPrefix), "prefix");
  EXPECT_EQ(to_string(DescriptorType::kMailbox), "mailbox");
}

// Property sweep: random descriptors round-trip for every type tag.
class DescriptorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DescriptorRoundTrip, RandomizedRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  auto r32 = [&] { return static_cast<std::uint32_t>(rng()); };
  auto rstr = [&](std::size_t max) {
    std::string s(rng() % (max + 1), '\0');
    for (auto& c : s) c = static_cast<char>('a' + rng() % 26);
    return s;
  };
  for (int type = 1; type <= 9; ++type) {
    ObjectDescriptor d;
    d.type = static_cast<DescriptorType>(type);
    d.flags = static_cast<std::uint16_t>(rng());
    d.size = r32();
    d.object_id = r32();
    d.server_pid = r32();
    d.context_id = r32();
    d.mtime = r32();
    d.owner = rstr(ObjectDescriptor::kMaxOwner);
    d.name = rstr(ObjectDescriptor::kMaxName);
    std::array<std::byte, ObjectDescriptor::kWireSize> wire{};
    d.encode(wire);
    auto decoded = ObjectDescriptor::decode(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), d) << "seed=" << GetParam()
                                  << " type=" << type;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorRoundTrip,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace v::naming
