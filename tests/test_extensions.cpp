// Tests for the protocol extensions beyond the paper's implemented core:
//   * forward-loop protection (cycles in the cross-server pointer graph),
//   * pattern-matching context directories (section 5.6's proposed
//     extension),
// plus unit coverage of the glob matcher itself.
#include <gtest/gtest.h>

#include <random>

#include "naming/match.hpp"
#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::glob_match;
using naming::wire::kOpenRead;
using sim::Co;
using test::VFixture;

// --- glob matcher -------------------------------------------------------------

TEST(Glob, LiteralsMatchExactly) {
  EXPECT_TRUE(glob_match("naming.mss", "naming.mss"));
  EXPECT_FALSE(glob_match("naming.mss", "naming.ms"));
  EXPECT_FALSE(glob_match("naming.ms", "naming.mss"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Glob, QuestionMarkMatchesOneCharacter) {
  EXPECT_TRUE(glob_match("?", "a"));
  EXPECT_FALSE(glob_match("?", ""));
  EXPECT_FALSE(glob_match("?", "ab"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
}

TEST(Glob, StarMatchesAnyRun) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*.mss", "naming.mss"));
  EXPECT_FALSE(glob_match("*.mss", "naming.txt"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
  EXPECT_TRUE(glob_match("**", "x"));
  EXPECT_TRUE(glob_match("a*", "a"));
  EXPECT_TRUE(glob_match("*a", "aaa"));
}

TEST(Glob, BacktrackingCases) {
  EXPECT_TRUE(glob_match("*aab", "aaaab"));
  EXPECT_FALSE(glob_match("*aab", "aaab c"));
  EXPECT_TRUE(glob_match("a*?b", "aXYb"));
  EXPECT_FALSE(glob_match("a*?b", "ab"));
}

TEST(Glob, MetacharDetection) {
  EXPECT_TRUE(naming::has_glob_chars("*.mss"));
  EXPECT_TRUE(naming::has_glob_chars("a?c"));
  EXPECT_FALSE(naming::has_glob_chars("plain-name.txt"));
}

// Property: a pattern built FROM a name by replacing runs with '*' and
// single characters with '?' always matches that name.
class GlobProperty : public ::testing::TestWithParam<int> {};

TEST_P(GlobProperty, DerivedPatternsMatchTheirSource) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31337u + 5u);
  for (int trial = 0; trial < 200; ++trial) {
    std::string name(1 + rng() % 12, '\0');
    for (auto& c : name) c = static_cast<char>('a' + rng() % 4);
    std::string pattern;
    for (std::size_t i = 0; i < name.size();) {
      switch (rng() % 3) {
        case 0:
          pattern += name[i];
          ++i;
          break;
        case 1:
          pattern += '?';
          ++i;
          break;
        default: {
          pattern += '*';
          i += rng() % (name.size() - i + 1);  // swallow a run
          break;
        }
      }
    }
    EXPECT_TRUE(glob_match(pattern, name))
        << "pattern=" << pattern << " name=" << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobProperty, ::testing::Range(0, 8));

// --- forward-loop protection -----------------------------------------------------

TEST(ForwardLoop, TwoServerCycleTerminatesWithForwardLoop) {
  VFixture fx;
  // alpha:/loop -> beta root, beta:/loop -> alpha root; the name
  // "loop/loop/loop/..." orbits between the servers.
  fx.alpha.put_link("loopy", {fx.beta_pid, naming::kDefaultContext});
  fx.beta.put_link("loopy", {fx.alpha_pid, naming::kDefaultContext});
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    std::string name;
    for (int i = 0; i < 20; ++i) name += "loopy/";
    name += "f.dat";
    auto opened = co_await rt.open(name, kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kForwardLoop);
  });
}

TEST(ForwardLoop, SelfLinkTerminates) {
  VFixture fx;
  fx.alpha.put_link("self", {fx.alpha_pid, naming::kDefaultContext});
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    std::string name;
    for (int i = 0; i < 20; ++i) name += "self/";
    name += "missing";
    auto opened = co_await rt.open(name, kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kForwardLoop);
  });
}

TEST(ForwardLoop, LegitimateDeepChainsStillWork) {
  // Chains under the hop budget must be unaffected.
  VFixture fx;
  fx.alpha.put_link("hop1", {fx.beta_pid, naming::kDefaultContext});
  fx.beta.put_link("hop2", {fx.alpha_pid, fx.alpha.context_of("usr/mann")});
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("hop1/hop2/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

// Property: with a RANDOM link graph (cycles likely), every lookup
// terminates — either resolving, failing cleanly, or kForwardLoop.
class RandomLinkGraph : public ::testing::TestWithParam<int> {};

TEST_P(RandomLinkGraph, InterpretationAlwaysTerminates) {
  VFixture fx;
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 3u);
  // A third server enriches the graph.
  auto& fs3 = fx.dom.add_host("fs3");
  servers::FileServer gamma("gamma", servers::DiskModel::kMemory, false);
  gamma.put_file("g.dat", "gamma");
  const auto gamma_pid =
      fs3.spawn("gamma", [&](ipc::Process p) { return gamma.run(p); });

  servers::FileServer* const servers_arr[] = {&fx.alpha, &fx.beta, &gamma};
  const ipc::ProcessId pids[] = {fx.alpha_pid, fx.beta_pid, gamma_pid};
  for (int i = 0; i < 6; ++i) {
    auto& src = *servers_arr[rng() % 3];
    const auto dst = rng() % 3;
    src.put_link("link" + std::to_string(i),
                 {pids[dst], naming::kDefaultContext});
  }

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    for (int trial = 0; trial < 20; ++trial) {
      std::string name;
      const int depth = 1 + static_cast<int>(rng() % 12);
      for (int d = 0; d < depth; ++d) {
        name += "link" + std::to_string(rng() % 6) + "/";
      }
      name += "g.dat";
      auto opened = co_await rt.open(name, kOpenRead);
      // Any clean outcome is fine; the assertion is TERMINATION (the
      // simulation draining) plus a sane reply code.
      EXPECT_TRUE(opened.ok() || opened.code() == ReplyCode::kNotFound ||
                  opened.code() == ReplyCode::kForwardLoop)
          << to_string(opened.code()) << " for " << name;
      if (opened.ok()) {
        svc::File f = opened.take();
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLinkGraph, ::testing::Range(0, 8));

// --- pattern-matching context directories ------------------------------------------

TEST(PatternDirectory, FiltersByGlob) {
  VFixture fx;
  fx.alpha.put_file("usr/mann/notes.txt", "n");
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto mss = co_await rt.list_matching("usr/mann", "*.mss");
    EXPECT_TRUE(mss.ok());
    if (mss.ok()) {
      EXPECT_EQ(mss.value().size(), 2u);  // naming.mss, paper.mss
      for (const auto& rec : mss.value()) {
        EXPECT_TRUE(rec.name.ends_with(".mss")) << rec.name;
      }
    }
    auto one = co_await rt.list_matching("usr/mann", "naming.*");
    EXPECT_TRUE(one.ok());
    if (one.ok()) {
      EXPECT_EQ(one.value().size(), 1u);
    }
    auto none = co_await rt.list_matching("usr/mann", "*.zip");
    EXPECT_TRUE(none.ok());
    if (none.ok()) {
      EXPECT_TRUE(none.value().empty());
    }
    auto all = co_await rt.list_matching("usr/mann", "*");
    EXPECT_TRUE(all.ok());
    if (all.ok()) {
      EXPECT_EQ(all.value().size(), 4u);  // + proj link + notes.txt
    }
  });
}

TEST(PatternDirectory, WorksThroughPrefixes) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto records = co_await rt.list_matching("[home]", "*.mss");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 2u);
    }
  });
}

TEST(PatternDirectory, WorksOnNonFileServers) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.prefix_pid, naming::kDefaultContext});
    auto records = co_await rt.list_matching("", "b*");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 2u);  // beta, bin
      for (const auto& rec : records.value()) {
        EXPECT_EQ(rec.type, DescriptorType::kPrefix);
      }
    }
  });
}

TEST(PatternDirectory, PatternCostScalesWithMatchesNotContextSize) {
  // The point of the extension: the server fabricates/ships only what
  // matches.
  VFixture fx;
  for (int i = 0; i < 128; ++i) {
    fx.alpha.put_file("big/file" + std::to_string(i) + ".dat", "x");
  }
  fx.alpha.put_file("big/special.mss", "y");
  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    auto t0 = self.now();
    auto all = co_await rt.list_context("big");
    const auto full_cost = self.now() - t0;
    EXPECT_TRUE(all.ok());
    if (all.ok()) {
      EXPECT_EQ(all.value().size(), 129u);
    }
    t0 = self.now();
    auto matched = co_await rt.list_matching("big", "*.mss");
    const auto pattern_cost = self.now() - t0;
    EXPECT_TRUE(matched.ok());
    if (matched.ok()) {
      EXPECT_EQ(matched.value().size(), 1u);
    }
    EXPECT_LT(pattern_cost * 5, full_cost);  // at least 5x cheaper here
  });
}

// --- group-implemented contexts (paper section 7 future work) ------------------

struct ReplicatedFixture : VFixture {
  static constexpr ipc::GroupId kReplicas = 0x9001;

  ReplicatedFixture() {
    for (int i = 0; i < 3; ++i) {
      auto& host = dom.add_host("replica-host" + std::to_string(i));
      replicas.push_back(std::make_unique<servers::FileServer>(
          "replica" + std::to_string(i), servers::DiskModel::kMemory,
          /*register_service=*/false));
      replicas.back()->put_file("shared/doc.txt", "replicated content");
      replicas.back()->set_group(kReplicas);
      replica_pids.push_back(host.spawn(
          "replica" + std::to_string(i),
          [srv = replicas.back().get()](ipc::Process p) {
            return srv->run(p);
          }));
      replica_hosts.push_back(&host);
    }
    servers::ContextPrefixServer::Entry entry;
    entry.group = kReplicas;
    prefixes.define("repl", entry);
  }

  std::vector<std::unique_ptr<servers::FileServer>> replicas;
  std::vector<ipc::ProcessId> replica_pids;
  std::vector<ipc::Host*> replica_hosts;
};

TEST(GroupContext, OpenThroughGroupPrefixSticksToOneMember) {
  ReplicatedFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    co_await rt.process().delay(sim::kMillisecond);  // members join
    auto opened = co_await rt.open("[repl]shared/doc.txt", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    // The instance lives at whichever replica answered first; subsequent
    // I/O goes straight there (session stickiness).
    bool from_replica = false;
    for (const auto pid : fx.replica_pids) {
      if (f.server() == pid) from_replica = true;
    }
    EXPECT_TRUE(from_replica);
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(std::string(
                    reinterpret_cast<const char*>(bytes.value().data()),
                    bytes.value().size()),
                "replicated content");
    }
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(GroupContext, SurvivesMemberCrashes) {
  ReplicatedFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(sim::kMillisecond);
    // Crash members one at a time; the NAME keeps working until the last
    // replica dies.
    for (std::size_t killed = 0; killed < fx.replica_hosts.size();
         ++killed) {
      auto opened = co_await rt.open("[repl]shared/doc.txt", kOpenRead);
      EXPECT_TRUE(opened.ok()) << "with " << killed << " replicas dead";
      if (opened.ok()) {
        svc::File f = opened.take();
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      fx.replica_hosts[killed]->crash();
    }
    // All replicas dead: the group context times out cleanly.
    auto opened = co_await rt.open("[repl]shared/doc.txt", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kTimeout);
  });
}

TEST(GroupContext, AddGroupPrefixThroughProtocol) {
  ReplicatedFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(sim::kMillisecond);
    EXPECT_EQ(co_await rt.add_group_prefix("mirror",
                                           ReplicatedFixture::kReplicas),
              ReplyCode::kOk);
    auto opened = co_await rt.open("[mirror]shared/doc.txt", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // The entry is listed with the kGrouped flag.
    rt.set_current({fx.prefix_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    bool saw = false;
    for (const auto& rec : records.value()) {
      if (rec.name == "mirror") {
        saw = true;
        EXPECT_NE(rec.flags & naming::kGrouped, 0);
        EXPECT_EQ(rec.object_id, ReplicatedFixture::kReplicas);
      }
    }
    EXPECT_TRUE(saw);
  });
}

TEST(GroupContext, EmptyGroupTimesOut) {
  VFixture fx;
  servers::ContextPrefixServer::Entry entry;
  entry.group = 0xdead;  // nobody ever joins
  fx.prefixes.define("ghost", entry);
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("[ghost]anything", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kTimeout);
  });
}

TEST(GroupContext, FastestReplicaWins) {
  // One replica is on the CLIENT's host; it answers first and all traffic
  // sticks to it — multicast naming load-balances towards proximity.
  ReplicatedFixture fx;
  servers::FileServer local_replica("replica-local",
                                    servers::DiskModel::kMemory, false);
  local_replica.put_file("shared/doc.txt", "replicated content");
  local_replica.set_group(ReplicatedFixture::kReplicas);
  const auto local_pid = fx.ws1.spawn(
      "replica-local",
      [&](ipc::Process p) { return local_replica.run(p); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(sim::kMillisecond);
    auto opened = co_await rt.open("[repl]shared/doc.txt", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(f.server(), local_pid);  // the local member won the race
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

}  // namespace
}  // namespace v
