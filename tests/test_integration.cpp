// Integration tests across the whole system: many server types in one
// domain, the uniform "list directory" flow of section 6, chained
// cross-server forwarding, and failures during name interpretation.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "servers/internet_server.hpp"
#include "servers/mail_server.hpp"
#include "servers/printer_server.hpp"
#include "servers/terminal_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

TEST(Integration, OneListDirectoryCommandForEveryContextType) {
  // Section 6: "A single 'list directory' command lists the objects in any
  // one of several different contexts, including programs in execution,
  // disk files, virtual terminals, TCP connections, and context prefixes."
  VFixture fx;
  servers::TerminalServer terms;
  servers::InternetServer inet;
  servers::PrinterServer printer;
  servers::MailServer mail;
  const auto terms_pid =
      fx.ws1.spawn("vgts", [&](ipc::Process p) { return terms.run(p); });
  const auto inet_pid =
      fx.fs2.spawn("inet", [&](ipc::Process p) { return inet.run(p); });
  const auto printer_pid =
      fx.fs2.spawn("printer", [&](ipc::Process p) { return printer.run(p); });
  const auto mail_pid =
      fx.fs2.spawn("mail", [&](ipc::Process p) { return mail.run(p); });

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    // Populate one object of each kind through the SAME create/open path.
    rt.set_current({terms_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("vt01"), ReplyCode::kOk);
    rt.set_current({inet_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("mit-ai:25"), ReplyCode::kOk);
    rt.set_current({printer_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("listing.ps"), ReplyCode::kOk);
    rt.set_current({mail_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("mann@su-navajo"), ReplyCode::kOk);

    // The one "list directory" flow, pointed at five different servers.
    struct Want {
      ipc::ProcessId server;
      DescriptorType type;
      const char* name;
    };
    const Want wants[] = {
        {fx.alpha_pid, DescriptorType::kFile, "naming.mss"},
        {terms_pid, DescriptorType::kTerminal, "vt01"},
        {inet_pid, DescriptorType::kConnection, "mit-ai:25"},
        {printer_pid, DescriptorType::kPrintJob, "listing.ps"},
        {mail_pid, DescriptorType::kMailbox, "mann@su-navajo"},
        {fx.prefix_pid, DescriptorType::kPrefix, "home"},
    };
    for (const auto& want : wants) {
      rt.set_current({want.server,
                      want.server == fx.alpha_pid
                          ? fx.alpha.context_of("usr/mann")
                          : naming::kDefaultContext});
      auto records = co_await rt.list_context("");
      EXPECT_TRUE(records.ok());
      if (!records.ok()) continue;
      bool found = false;
      for (const auto& rec : records.value()) {
        if (rec.name == want.name) {
          found = true;
          EXPECT_EQ(rec.type, want.type) << want.name;
        }
      }
      EXPECT_TRUE(found) << want.name;
    }
  });
}

TEST(Integration, ChainedForwardingAcrossThreeServers) {
  // gamma adds a third file server; a single name walks alpha -> beta ->
  // gamma through two cross-server links.
  VFixture fx;
  auto& fs3 = fx.dom.add_host("fs3");
  servers::FileServer gamma("gamma", servers::DiskModel::kMemory,
                            /*register_service=*/false);
  gamma.put_file("deep/treasure.txt", "three hops away");
  const auto gamma_pid =
      fs3.spawn("gamma-fs", [&](ipc::Process p) { return gamma.run(p); });
  fx.beta.put_link("pub/more", {gamma_pid, gamma.context_of("deep")});

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    // alpha:/usr/mann/proj -> beta:/pub, then beta:/pub/more -> gamma:/deep.
    auto opened =
        co_await rt.open("usr/mann/proj/more/treasure.txt", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(f.server(), gamma_pid);
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(std::string(
                    reinterpret_cast<const char*>(bytes.value().data()),
                    bytes.value().size()),
                "three hops away");
    }
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    // MapContextName across the chain too.
    auto mapped = co_await rt.map_context("usr/mann/proj/more");
    EXPECT_TRUE(mapped.ok());
    if (mapped.ok()) {
      EXPECT_EQ(mapped.value().server, gamma_pid);
    }
  });
}

TEST(Integration, ForwardingToDeadServerYieldsNoReply) {
  // Section 7 names error handling after forwarding as a deficiency; the
  // transport-level answer the client gets here is a bare kNoReply with no
  // indication of WHERE the chain broke — reproducing that experience.
  VFixture fx;
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs2.crash(); });
  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(10 * kMillisecond);
    auto opened = co_await rt.open("usr/mann/proj/readme", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kNoReply);
    // Objects not behind the dead server are unaffected.
    auto local = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(local.ok());
    if (local.ok()) {
      svc::File f = local.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(Integration, ClientCrashMidOperationLeavesServersHealthy) {
  VFixture fx;
  auto& ws2 = fx.dom.add_host("ws2");
  // A client that dies while its request (and segments) are outstanding.
  ws2.spawn("doomed", [&fx](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.alpha_pid, naming::kDefaultContext}});
    for (;;) {
      auto opened = co_await rt.open("usr/mann/naming.mss",
                                     naming::wire::kOpenRead);
      if (opened.ok()) {
        svc::File f = opened.take();
        (void)co_await f.close();
      }
    }
  });
  fx.dom.loop().schedule_at(3 * kMillisecond, [&ws2] { ws2.crash(); });
  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(20 * kMillisecond);
    // alpha survived the client's disappearance mid-protocol.
    auto opened = co_await rt.open("usr/mann/naming.mss",
                                   naming::wire::kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(Integration, TwoWorkstationsShareServersIndependently) {
  VFixture fx;
  auto& ws2 = fx.dom.add_host("ws2");
  bool ws2_done = false;
  ws2.spawn("client-b", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.alpha_pid, naming::kDefaultContext}});
    // Interleave with ws1's client below.
    for (int i = 0; i < 5; ++i) {
      const std::string name = "tmp/b-" + std::to_string(i);
      auto opened = co_await rt.open(name, kOpenWrite | kOpenCreate);
      EXPECT_TRUE(opened.ok());
      if (opened.ok()) {
        svc::File f = opened.take();
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
    }
    ws2_done = true;
  });
  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      const std::string name = "tmp/a-" + std::to_string(i);
      auto opened = co_await rt.open(name, kOpenWrite | kOpenCreate);
      EXPECT_TRUE(opened.ok());
      if (opened.ok()) {
        svc::File f = opened.take();
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
    }
    auto records = co_await rt.list_context("tmp");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 10u);  // both clients' files
    }
  });
  EXPECT_TRUE(ws2_done);
}

TEST(Integration, CurrentContextPassedAcrossPrograms) {
  // Section 6: a new program is passed (pid, context-id) as its current
  // context.  Simulate a shell spawning a child program with its context.
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt shell) -> Co<void> {
    EXPECT_EQ(co_await shell.change_context("usr/mann"), ReplyCode::kOk);
    const naming::ContextPair inherited = shell.current();
    bool child_done = false;
    fx.ws1.spawn("child-program",
                 [inherited, &child_done](ipc::Process self) -> Co<void> {
                   auto rt = co_await svc::Rt::attach(self, inherited);
                   auto opened = co_await rt.open("naming.mss", kOpenRead);
                   EXPECT_TRUE(opened.ok());
                   if (opened.ok()) {
                     svc::File f = opened.take();
                     EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
                   }
                   child_done = true;
                 });
    // Wait for the child (simple polling delay).
    for (int i = 0; i < 100 && !child_done; ++i) {
      co_await shell.process().delay(kMillisecond);
    }
    EXPECT_TRUE(child_done);
  });
}

}  // namespace
}  // namespace v
