// Tests for the pipe server: blocking reads via deferred replies, EOF on
// last-writer close, capacity limits, and producer/consumer pipelines
// between separate processes.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "servers/pipe_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

struct PipeFixture : VFixture {
  PipeFixture() {
    pipe_pid = ws1.spawn("pipe-server", [this](ipc::Process p) {
      return pipes_srv.run(p);
    });
  }
  servers::PipeServer pipes_srv;
  ipc::ProcessId pipe_pid;
};

std::span<const std::byte> as_span(std::string_view text) {
  return std::as_bytes(std::span(text.data(), text.size()));
}

TEST(PipeServer, WriteThenReadSameBytes) {
  PipeFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    auto w = co_await rt.open("p1", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    auto r = co_await rt.open("p1", kOpenRead);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();

    auto wrote = co_await writer.write_block(0, as_span("hello pipe"));
    EXPECT_TRUE(wrote.ok());
    std::vector<std::byte> buf(32);
    auto got = co_await reader.read_block(0, buf);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value(), 10u);
      EXPECT_EQ(std::memcmp(buf.data(), "hello pipe", 10), 0);
    }
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
    // Writer gone + empty buffer => EOF.
    got = co_await reader.read_block(0, buf);
    EXPECT_EQ(got.code(), ReplyCode::kEndOfFile);
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
}

TEST(PipeServer, ReaderBlocksUntilWriterWrites) {
  PipeFixture fx;
  sim::SimTime read_returned_at = 0;
  sim::SimTime write_happened_at = 0;
  // Producer on another workstation, delayed.
  auto& ws2 = fx.dom.add_host("ws2");
  ws2.spawn("producer", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pipe_pid, naming::kDefaultContext}});
    co_await self.delay(50 * kMillisecond);
    auto w = co_await rt.open("blocky", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    co_await self.delay(100 * kMillisecond);
    write_happened_at = self.now();
    auto wrote = co_await writer.write_block(0, as_span("finally"));
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
  });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    // Create the pipe and a reader end before any writer exists.
    EXPECT_EQ(co_await rt.create("blocky"), ReplyCode::kOk);
    co_await self.delay(60 * kMillisecond);  // after producer opened
    auto r = co_await rt.open("blocky", kOpenRead);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    std::vector<std::byte> buf(16);
    auto got = co_await reader.read_block(0, buf);  // BLOCKS ~100 ms
    read_returned_at = self.now();
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value(), 7u);
      EXPECT_EQ(std::memcmp(buf.data(), "finally", 7), 0);
    }
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
  // The read completed only after the write happened.
  EXPECT_GT(read_returned_at, write_happened_at);
}

TEST(PipeServer, BlockedReaderWokenWithEofOnWriterClose) {
  PipeFixture fx;
  auto& ws2 = fx.dom.add_host("ws2");
  ws2.spawn("quitter", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pipe_pid, naming::kDefaultContext}});
    auto w = co_await rt.open("empty", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    co_await self.delay(80 * kMillisecond);
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);  // never wrote
  });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    co_await self.delay(10 * kMillisecond);
    auto r = co_await rt.open("empty", kOpenRead);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    std::vector<std::byte> buf(8);
    auto got = co_await reader.read_block(0, buf);  // blocks until close
    EXPECT_EQ(got.code(), ReplyCode::kEndOfFile);
    EXPECT_GT(self.now(), 80 * kMillisecond);
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
}

TEST(PipeServer, ProducerConsumerPipeline) {
  PipeFixture fx;
  constexpr int kItems = 25;
  int consumed = 0;
  auto& ws2 = fx.dom.add_host("ws2");
  ws2.spawn("producer", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.pipe_pid, naming::kDefaultContext}});
    auto w = co_await rt.open("jobs", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    for (int i = 0; i < kItems; ++i) {
      const std::string item = "item-" + std::to_string(i) + ";";
      auto wrote = co_await writer.write_block(0, as_span(item));
      EXPECT_TRUE(wrote.ok());
      co_await self.delay(static_cast<sim::SimDuration>(1 + i % 3) *
                          kMillisecond);
    }
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
  });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    co_await self.delay(kMillisecond);
    auto r = co_await rt.open("jobs", kOpenRead);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    std::string received;
    std::vector<std::byte> buf(64);
    for (;;) {
      auto got = co_await reader.read_block(0, buf);
      if (!got.ok()) {
        EXPECT_EQ(got.code(), ReplyCode::kEndOfFile);
        break;
      }
      received.append(reinterpret_cast<const char*>(buf.data()),
                      got.value());
    }
    // Count complete items.
    for (std::size_t pos = 0; (pos = received.find(';', pos)) !=
                              std::string::npos;
         ++pos) {
      ++consumed;
    }
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(fx.pipes_srv.buffered("jobs").value(), 0u);
}

TEST(PipeServer, ReadWriteEndRolesEnforced) {
  PipeFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    // An end must be exactly one of reader/writer.
    auto both = co_await rt.open("roles",
                                 kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_EQ(both.code(), ReplyCode::kBadArgs);
    auto w = co_await rt.open("roles", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    std::vector<std::byte> buf(8);
    auto got = co_await writer.read_block(0, buf);
    EXPECT_EQ(got.code(), ReplyCode::kNotReadable);
    auto r = co_await rt.open("roles", kOpenRead);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    auto wrote = co_await reader.write_block(0, as_span("nope"));
    EXPECT_EQ(wrote.code(), ReplyCode::kNotWriteable);
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
}

TEST(PipeServer, CapacityLimitRejectsOversizedBacklog) {
  PipeFixture fx2;
  servers::PipeServer small_server(/*capacity_bytes=*/100);
  const auto small_pid = fx2.ws1.spawn(
      "small-pipes", [&](ipc::Process p) { return small_server.run(p); });
  fx2.run_client([&, small_pid](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({small_pid, naming::kDefaultContext});
    auto w = co_await rt.open("tiny", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    const std::string eighty(80, 'x');
    auto wrote = co_await writer.write_block(0, as_span(eighty));
    EXPECT_TRUE(wrote.ok());
    const std::string forty(40, 'y');
    wrote = co_await writer.write_block(0, as_span(forty));
    EXPECT_EQ(wrote.code(), ReplyCode::kNoServerResources);
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
  });
}

TEST(PipeServer, PipesAreListableLikeEverythingElse) {
  PipeFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.pipe_pid, naming::kDefaultContext});
    EXPECT_EQ(co_await rt.create("a"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.create("b"), ReplyCode::kOk);
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 2u);
    }
    // Removal honors open ends.
    auto w = co_await rt.open("a", kOpenWrite);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    EXPECT_EQ(co_await rt.remove("a"), ReplyCode::kBadState);
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("a"), ReplyCode::kOk);
  });
}

}  // namespace
}  // namespace v
