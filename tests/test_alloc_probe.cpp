// The allocation-free packet path, made executable (DESIGN.md §4l): with
// the envelope slab, intrusive mailboxes, inline delivery closures and the
// coroutine frame pool warmed up, a Send/Receive/Reply transaction touches
// the heap ZERO times.  chk::alloc_probe counts every global operator
// new/delete in this binary (the replacement operators link only here —
// see alloc_probe.hpp), and this test asserts the zero.
#include <gtest/gtest.h>

#include "chk/alloc_probe.hpp"
#include "ipc/kernel.hpp"
#include "msg/message.hpp"
#include "sim/frame_pool.hpp"

namespace v {
namespace {

using sim::Co;

TEST(AllocProbe, WarmPingPongTransactionsAllocateNothing) {
  if (!chk::alloc_probe_active()) {
    GTEST_SKIP() << "probe inactive (sanitizer build owns the allocator)";
  }
#if !V_FRAME_POOL_ENABLED
  GTEST_SKIP() << "frame pool disabled: coroutine frames hit the heap";
#else
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& srv = dom.add_host("srv1");
  const auto echo_pid = srv.spawn("echo", [](ipc::Process self) -> Co<void> {
    for (;;) {
      auto env = co_await self.receive();
      self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
    }
  });
  // Warm-up grows every pool once (event-loop slab chunks, envelope slab,
  // frame pool, metric registrations); the measured window reuses them.
  constexpr int kWarmup = 2'000;
  constexpr int kMeasured = 10'000;
  std::uint64_t baseline_allocs = 0;
  bool done = false;
  ws.spawn("pinger", [&, echo_pid](ipc::Process self) -> Co<void> {
    msg::Message ping;
    ping.set_code(0x0200);  // above the protocol ranges' floor; not CSname
    for (int i = 0; i < kWarmup; ++i) {
      (void)co_await self.send(ping, echo_pid);
    }
    baseline_allocs = chk::alloc_counters().allocations;
    for (int i = 0; i < kMeasured; ++i) {
      (void)co_await self.send(ping, echo_pid);
    }
    const std::uint64_t delta =
        chk::alloc_counters().allocations - baseline_allocs;
    EXPECT_EQ(delta, 0u) << delta << " heap allocations across " << kMeasured
                         << " warm transactions";
    done = true;
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_TRUE(done) << "pinger parked forever";
#endif
}

}  // namespace
}  // namespace v
