// V-check layer 3: the deterministic schedule fuzzer.
//
// The event loop's same-timestamp tie rule (scheduling order) is an
// implementation convenience, not a guarantee; under fuzz mode ties are
// broken by a seeded hash instead, deterministically permuting simultaneous
// events.  These tests cover the mechanism itself (permutation, determinism,
// the negative-delay guard) and then sweep the contested-name race, the
// busy-shed path, and an integration workload across many seeds, asserting
// the system stays correct and race-free under every explored interleaving.
//
// Reproduce one failing seed standalone:
//   V_FUZZ_SEED=0x5eed0007 build/tests/test_schedule_fuzz
// V_FUZZ_SEEDS=<n> widens the sweep (default 16 seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "naming/protocol.hpp"
#include "servers/pipe_server.hpp"
#include "sim/event_loop.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

constexpr std::uint64_t kSeedBase = 0x5eed0000ULL;

/// Seeds to sweep: V_FUZZ_SEED pins a single seed (repro mode),
/// V_FUZZ_SEEDS widens/narrows the sweep count.
std::vector<std::uint64_t> sweep_seeds() {
  if (const char* pin = std::getenv("V_FUZZ_SEED")) {
    return {std::strtoull(pin, nullptr, 0)};
  }
  std::size_t count = 16;
  if (const char* n = std::getenv("V_FUZZ_SEEDS")) {
    count = std::strtoull(n, nullptr, 0);
    if (count == 0) count = 1;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(kSeedBase + i);
  return seeds;
}

/// SCOPED_TRACE message with the one-command repro for this seed.
std::string repro(std::uint64_t seed, std::string_view scenario) {
  std::ostringstream out;
  out << scenario << " failed under seed 0x" << std::hex << seed
      << "; reproduce with: V_FUZZ_SEED=0x" << seed
      << " tests/test_schedule_fuzz";
  return out.str();
}

// --- the mechanism ----------------------------------------------------------

std::vector<int> tie_order(std::optional<std::uint64_t> seed) {
  sim::EventLoop loop;
  if (seed) loop.enable_fuzz(*seed);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule_at(10, [i, &order] { order.push_back(i); });
  }
  loop.run_until_idle();
  return order;
}

TEST(ScheduleFuzz, FifoModeRunsSameTimestampEventsInSchedulingOrder) {
  EXPECT_EQ(tie_order(std::nullopt),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ScheduleFuzz, FuzzModePermutesSameTimestampEvents) {
  // At least one of a handful of seeds must produce a non-FIFO order —
  // otherwise the fuzzer explores nothing.
  const auto fifo = tie_order(std::nullopt);
  bool permuted = false;
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + 8; ++seed) {
    auto order = tie_order(seed);
    // Always a permutation: every event fires exactly once.
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    if (order != fifo) permuted = true;
  }
  EXPECT_TRUE(permuted);
}

TEST(ScheduleFuzz, SameSeedGivesSameOrder) {
  for (std::uint64_t seed = kSeedBase; seed < kSeedBase + 4; ++seed) {
    EXPECT_EQ(tie_order(seed), tie_order(seed)) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, DistinctTimestampsAreNeverReordered) {
  sim::EventLoop loop;
  loop.enable_fuzz(kSeedBase);
  std::vector<int> order;
  for (int i = 7; i >= 0; --i) {
    loop.schedule_at(i, [i, &order] { order.push_back(i); });
  }
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// --- the schedule_after negative-delay guard (satellite S2) -----------------

TEST(ScheduleFuzz, NegativeDelayIsClampedAndCounted) {
  auto negative_delay = [] {
    sim::EventLoop loop;
    bool ran = false;
    loop.schedule_after(-5, [&ran] { ran = true; });
    loop.run_until_idle();
    return loop.stats().negative_delay_clamps == 1 && ran &&
           loop.now() == 0;
  };
#ifdef NDEBUG
  // Release builds: clamped to "now" and counted, never silent.
  EXPECT_TRUE(negative_delay());
#else
  // Debug builds: a caller bug this loud asserts on the spot.
  EXPECT_DEATH((void)negative_delay(), "negative delay");
#endif
}

TEST(ScheduleFuzz, NonNegativeDelaysDoNotCount) {
  sim::EventLoop loop;
  loop.schedule_after(0, [] {});
  loop.schedule_after(5, [] {});
  loop.run_until_idle();
  EXPECT_EQ(loop.stats().negative_delay_clamps, 0u);
}

// --- sweep scenario 1: contested-name mutation race -------------------------

/// Four clients race create/remove on the same (ctx, leaf) against a
/// 4-worker team under a fuzzed schedule.  Returns the per-client reply
/// journal; the fixture's check_clean() asserts no race reports, no lint
/// violations, no time-travel.
std::vector<std::string> fuzzed_mutate_race(std::uint64_t seed) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {.workers = 4, .queue_cap = 64},
              seed);
  std::vector<std::string> journal(4);
  int finished = 0;
  for (int c = 0; c < 4; ++c) {
    fx.ws1.spawn("mutator", [&fx, &journal, &finished,
                             c](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {fx.alpha_pid, naming::kDefaultContext}});
      for (int i = 0; i < 5; ++i) {
        const auto created = co_await rt.create("tmp/contested", 0);
        journal[static_cast<std::size_t>(c)] +=
            std::string(to_string(created)) + ";";
        const auto removed = co_await rt.remove("tmp/contested");
        journal[static_cast<std::size_t>(c)] +=
            std::string(to_string(removed)) + ";";
      }
      ++finished;
    });
  }
  fx.dom.run();
  fx.check_clean();
  EXPECT_EQ(finished, 4);
  return journal;
}

TEST(ScheduleFuzz, MutateRaceStaysSerializableAcrossSeeds) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "mutate-race"));
    const auto journal = fuzzed_mutate_race(seed);
    std::string all;
    for (const auto& log : journal) {
      // Every observed code is a legal serial outcome under the gate.  A
      // single client may lose every round (NAME_EXISTS/NOT_FOUND only) —
      // that is serializable — but corruption codes never are.
      EXPECT_EQ(log.find("BAD_STATE"), std::string::npos) << log;
      all += log;
    }
    // The first create processed runs against an empty directory, so at
    // least one OK must appear somewhere across the four journals.
    EXPECT_NE(all.find("OK"), std::string::npos) << all;
  }
}

TEST(ScheduleFuzz, SameSeedIsBitIdentical) {
  const auto seed = sweep_seeds().front();
  EXPECT_EQ(fuzzed_mutate_race(seed), fuzzed_mutate_race(seed));
}

// --- sweep scenario 2: pipe team under permuted schedules -------------------

void fuzzed_pipe_team(std::uint64_t seed) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {}, seed);
  servers::PipeServer pipes_srv(64 * 1024, {.workers = 3, .queue_cap = 32});
  const auto pipe_pid = fx.ws1.spawn(
      "pipe-server", [&](ipc::Process p) { return pipes_srv.run(p); });

  // Producer writes after 50 ms; consumer's read must park (deferred
  // reply) and wake with exactly the produced bytes whatever the schedule.
  fx.ws1.spawn("producer", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {pipe_pid, naming::kDefaultContext}});
    co_await self.delay(50 * kMillisecond);
    auto w = co_await rt.open("blocky", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    const std::string payload = "finally";
    auto wrote = co_await writer.write_block(
        0, std::as_bytes(std::span(payload.data(), payload.size())));
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
  });
  fx.run_client([&](ipc::Process /*self*/, svc::Rt rt) -> Co<void> {
    rt.set_current({pipe_pid, naming::kDefaultContext});
    auto r = co_await rt.open("blocky", kOpenRead | kOpenCreate);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    std::vector<std::byte> buf(32);
    auto got = co_await reader.read_block(0, buf);
    EXPECT_TRUE(got.ok());
    if (!got.ok()) co_return;
    EXPECT_EQ(got.value(), 7u);
    EXPECT_EQ(std::memcmp(buf.data(), "finally", 7), 0);
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
}

TEST(ScheduleFuzz, PipeDeferredRepliesSurviveAcrossSeeds) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "pipe-team"));
    fuzzed_pipe_team(seed);
  }
}

// --- sweep scenario 3: busy-shed accounting ---------------------------------

void fuzzed_busy_shed(std::uint64_t seed) {
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  dom.loop().enable_fuzz(seed);
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer fs("shed", servers::DiskModel::kMemory,
                         /*register_service=*/false,
                         {.workers = 2, .queue_cap = 2});
  fs.put_file("f.txt", "contents");
  const auto fs_pid =
      fs1.spawn("shed-fs", [&](ipc::Process p) { return fs.run(p); });
  int ok_count = 0;
  int busy_count = 0;
  for (int c = 0; c < 6; ++c) {
    ws1.spawn("querier", [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {fs_pid, naming::kDefaultContext}});
      auto desc = co_await rt.query("f.txt");
      if (desc.ok()) {
        ++ok_count;
      } else if (desc.code() == ReplyCode::kBusy) {
        ++busy_count;
      }
    });
  }
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  // No silent drops under ANY permutation: every request is answered, and
  // the shed counter agrees with the observed kBusy replies.
  EXPECT_EQ(ok_count + busy_count, 6);
  EXPECT_EQ(fs.shed_count(), static_cast<std::uint64_t>(busy_count));
  EXPECT_GE(ok_count, 1);
  EXPECT_EQ(dom.loop().stats().negative_delay_clamps, 0u);
}

TEST(ScheduleFuzz, BusyShedNeverDropsSilentlyAcrossSeeds) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "busy-shed"));
    fuzzed_busy_shed(seed);
  }
}

// --- sweep scenario 4: integration workload ---------------------------------

void fuzzed_integration(std::uint64_t seed) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {.workers = 2, .queue_cap = 32},
              seed);
  fx.run_client([](ipc::Process /*self*/, svc::Rt rt) -> Co<void> {
    // Multi-hop name interpretation (the Figure 4 curved arrow).
    auto remote = co_await rt.query("usr/mann/proj/readme");
    EXPECT_TRUE(remote.ok());
    // Prefix resolution + open/read/close.
    auto opened = co_await rt.open("[home]naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    EXPECT_EQ(bytes.value().size(), 32u);
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    // Create/remove round trip.
    EXPECT_EQ(co_await rt.create("tmp/fuzzed.txt", 0), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("tmp/fuzzed.txt"), ReplyCode::kOk);
  });
}

TEST(ScheduleFuzz, IntegrationWorkloadPassesAcrossSeeds) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "integration"));
    fuzzed_integration(seed);
  }
}

}  // namespace
}  // namespace v
