// V-check tests: the sim-aware race detector (chk/ledger, chk/shared_cell,
// the per-(ctx,leaf) gate ledger) and the protocol conformance lint at the
// kernel Send/Reply boundary.
//
// The detection tests plant real bugs — an ungated name-space mutation, a
// read borrow held across a suspension point, a non-standard reply code, a
// malformed CSname header — and assert the report names the right parties.
// The clean tests run ordinary workloads and assert the instrumentation is
// live (counters advance) but silent (no failures, no violations).
#include <gtest/gtest.h>

#include <string>

#include "chk/shared_cell.hpp"
#include "msg/csname.hpp"
#include "msg/request_codes.hpp"
#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using sim::Co;
using sim::kMillisecond;
using test::VFixture;

// Non-CSname server-specific poke used to plant an ungated mutation.
constexpr std::uint16_t kUngatedPoke = 0x0399;

/// A CSNH server with a planted concurrency bug: kUngatedPoke mutates the
/// (ctx, leaf) name entry WITHOUT acquiring the mutation gate, while
/// create_object (correctly gated by the base) holds its gate across a long
/// suspension — so a poke landing mid-create is exactly the lost-update
/// race the detector exists to catch.
class RacyServer : public naming::CsnhServer {
 public:
  explicit RacyServer(naming::TeamConfig team) : CsnhServer(team) {}

 protected:
  sim::Co<LookupResult> lookup(ipc::Process& /*self*/,
                               naming::ContextId /*ctx*/,
                               std::string_view /*component*/) override {
    co_return LookupResult::missing();
  }

  sim::Co<ReplyCode> create_object(ipc::Process& self, naming::ContextId ctx,
                                   std::string_view leaf,
                                   std::uint16_t /*mode*/) override {
    note_name_write(self, ctx, leaf);
    co_await self.delay(10 * kMillisecond);  // hold the gate across a park
    co_return ReplyCode::kOk;
  }

  sim::Co<msg::Message> handle_custom(ipc::Process& self,
                                      ipc::Envelope& env) override {
    if (env.request.code() == kUngatedPoke) {
      // The planted bug: handle_custom holds no (ctx, leaf) gate.
      note_name_write(self, naming::kDefaultContext, "contested");
      co_return msg::make_reply(ReplyCode::kOk);
    }
    co_return co_await CsnhServer::handle_custom(self, env);
  }
};

/// A CSNH server with a planted conformance bug: replies to its custom op
/// with a code far outside the registered ReplyCode set.
class BadReplyServer : public naming::CsnhServer {
 protected:
  sim::Co<LookupResult> lookup(ipc::Process& /*self*/,
                               naming::ContextId /*ctx*/,
                               std::string_view /*component*/) override {
    co_return LookupResult::missing();
  }

  sim::Co<msg::Message> handle_custom(ipc::Process& /*self*/,
                                      ipc::Envelope& /*env*/) override {
    msg::Message weird;
    weird.set_code(0x7777);  // not a ReplyCode
    co_return weird;
  }
};

// --- race detector: planted gate violation ---------------------------------

TEST(ChkRace, PlantedUngatedMutationNamesBothProcesses) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& host = dom.add_host("ws");
  RacyServer racy({.workers = 2, .queue_cap = 16});
  const auto racy_pid =
      host.spawn("racy", [&](ipc::Process p) { return racy.run(p); });
  // Worker A: a gated create of "contested" parked mid-operation.
  host.spawn("creator", [&](ipc::Process self) -> Co<void> {
    const std::string name = "contested";
    auto req = msg::cs::make_request(
        msg::kCreateName, naming::kDefaultContext,
        static_cast<std::uint16_t>(name.size()));
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    (void)co_await self.send(req, racy_pid, segs);
  });
  // Worker B: the ungated poke lands while A still holds the gate.
  host.spawn("poker", [&](ipc::Process self) -> Co<void> {
    co_await self.delay(2 * kMillisecond);
    msg::Message poke;
    poke.set_code(kUngatedPoke);
    (void)co_await self.send(poke, racy_pid);
  });
  dom.run();

  ASSERT_GE(dom.process_failures(), 1u);
  const std::string& report = dom.first_failure();
  EXPECT_NE(report.find("race detector"), std::string::npos) << report;
  EXPECT_NE(report.find("ungated (ctx,leaf) mutation"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"contested\""), std::string::npos) << report;
  EXPECT_NE(report.find("has held the mutation gate since"),
            std::string::npos)
      << report;
  // Both sim processes — the mutator AND the gate holder — are named, and
  // they are distinct team members.
  const auto first = report.find("racy-worker.");
  ASSERT_NE(first, std::string::npos) << report;
  EXPECT_NE(report.find("racy-worker.", first + 1), std::string::npos)
      << report;
#endif
}

TEST(ChkRace, UngatedMutationWithNoHolderIsCaught) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& host = dom.add_host("ws");
  RacyServer racy({.workers = 1, .queue_cap = 16});
  const auto racy_pid =
      host.spawn("racy", [&](ipc::Process p) { return racy.run(p); });
  host.spawn("poker", [&](ipc::Process self) -> Co<void> {
    msg::Message poke;
    poke.set_code(kUngatedPoke);
    (void)co_await self.send(poke, racy_pid);
  });
  dom.run();

  ASSERT_GE(dom.process_failures(), 1u);
  const std::string& report = dom.first_failure();
  EXPECT_NE(report.find("without any process holding the mutation gate"),
            std::string::npos)
      << report;
#endif
}

// --- race detector: the unmodified tree passes clean ------------------------

TEST(ChkRace, GatedMutationsPassCleanAndLedgerIsLive) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {.workers = 4, .queue_cap = 64});
  fx.run_client([](ipc::Process /*self*/, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.create("tmp/gated.txt", 0), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("tmp/gated.txt"), ReplyCode::kOk);
  });
#if V_CHECKS_ENABLED
  // The instrumentation must actually have run (a no-op detector also
  // "passes clean").
  EXPECT_GT(fx.dom.checks().gate_acquisitions(), 0u);
  EXPECT_GT(fx.dom.checks().gated_writes_checked(), 0u);
#endif
}

// --- race detector: SharedCell borrows across suspension --------------------

TEST(ChkRace, ReaderHeldAcrossSuspensionIsCaught) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& host = dom.add_host("ws");
  chk::SharedCell<int> cell("test.counter");
  host.spawn("reader-proc", [&](ipc::Process self) -> Co<void> {
    auto borrow = cell.read(self);
    co_await self.delay(5 * kMillisecond);  // the bug: borrow spans a park
    EXPECT_EQ(*borrow, 0);
  });
  host.spawn("writer-proc", [&](ipc::Process self) -> Co<void> {
    co_await self.delay(1 * kMillisecond);
    auto borrow = cell.write(self);  // throws: overlaps the parked read
    *borrow = 1;
  });
  dom.run();

  EXPECT_EQ(dom.process_failures(), 1u);
  const std::string& report = dom.first_failure();
  EXPECT_NE(report.find("race detector"), std::string::npos) << report;
  EXPECT_NE(report.find("test.counter"), std::string::npos) << report;
  EXPECT_NE(report.find("reader-proc"), std::string::npos) << report;
  EXPECT_NE(report.find("writer-proc"), std::string::npos) << report;
  EXPECT_NE(report.find("held across a suspension point"), std::string::npos)
      << report;
#endif
}

TEST(ChkRace, MomentaryAccessesNeverConflict) {
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& host = dom.add_host("ws");
  chk::SharedCell<int> cell("test.counter");
  for (int p = 0; p < 4; ++p) {
    host.spawn("proc" + std::to_string(p), [&](ipc::Process self) -> Co<void> {
      for (int i = 0; i < 8; ++i) {
        {
          auto borrow = cell.write(self);
          *borrow += 1;
        }
        co_await self.delay(1 * kMillisecond);
        auto check = cell.read(self);
        EXPECT_GT(*check, 0);
      }
    });
  }
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(cell.raw(), 32);
}

// --- protocol lint: malformed client requests ------------------------------

TEST(ChkLint, NameIndexPastLengthRejectedWithDecodedDump) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  VFixture fx;
  fx.run_client([&](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    const std::string name = "tmp";
    auto bad = msg::cs::make_request(
        msg::kQueryName, naming::kDefaultContext,
        static_cast<std::uint16_t>(name.size()));
    msg::cs::set_name_index(bad, 9);  // 9 > namelength 3
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    const auto reply = co_await self.send(bad, fx.alpha_pid, segs);
    // Rejected by the kernel-side lint, not the server.
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 1u);
  const std::string& dump = fx.dom.lint().first_dump();
  EXPECT_NE(dump.find("nameindex exceeds namelength"), std::string::npos)
      << dump;
  // The dump decodes the offending header field by field.
  EXPECT_NE(dump.find("kQueryName"), std::string::npos) << dump;
  EXPECT_NE(dump.find("nameindex    = 9"), std::string::npos) << dump;
  EXPECT_NE(dump.find("namelength   = 3"), std::string::npos) << dump;
#endif
}

TEST(ChkLint, NameBytesAbsentRejected) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  VFixture fx;
  fx.run_client([&](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    // Claims an 8-byte name but attaches no read segment.
    auto bad = msg::cs::make_request(msg::kQueryName,
                                     naming::kDefaultContext, 8);
    const auto reply = co_await self.send(bad, fx.alpha_pid);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 1u);
  EXPECT_NE(fx.dom.lint().first_dump().find(
                "name bytes absent from sender segment"),
            std::string::npos)
      << fx.dom.lint().first_dump();
#endif
}

TEST(ChkLint, SubProtocolRequestCodeRejected) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  VFixture fx;
  fx.run_client([&](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    msg::Message bad;
    bad.set_code(0x0042);  // below every protocol code range
    const auto reply = co_await self.send(bad, fx.alpha_pid);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 1u);
  EXPECT_NE(fx.dom.lint().first_dump().find(
                "request code below protocol ranges"),
            std::string::npos)
      << fx.dom.lint().first_dump();
#endif
}

TEST(ChkLint, WellFormedTrafficPassesWithZeroRejects) {
  VFixture fx;
  fx.run_client([](ipc::Process /*self*/, svc::Rt rt) -> Co<void> {
    auto desc = co_await rt.query("usr/mann/naming.mss");
    EXPECT_TRUE(desc.ok());
    EXPECT_EQ(co_await rt.create("tmp/ok.txt", 0), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("tmp/ok.txt"), ReplyCode::kOk);
  });
#if V_CHECKS_ENABLED
  EXPECT_GT(fx.dom.lint().counters().requests_checked, 0u);
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 0u);
  EXPECT_EQ(fx.dom.lint().counters().server_violations, 0u);
  EXPECT_TRUE(fx.dom.lint().first_dump().empty())
      << fx.dom.lint().first_dump();
#endif
}

// --- protocol lint: server-side conformance --------------------------------

TEST(ChkLint, NonStandardReplyCodeCountedAndStillDelivered) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& host = dom.add_host("ws");
  BadReplyServer bad;
  const auto bad_pid =
      host.spawn("bad-server", [&](ipc::Process p) { return bad.run(p); });
  std::uint16_t delivered_code = 0;
  host.spawn("client", [&](ipc::Process self) -> Co<void> {
    msg::Message req;
    req.set_code(0x0350);  // any misc op -> handle_custom
    const auto reply = co_await self.send(req, bad_pid);
    delivered_code = reply.code();
  });
  dom.run();

  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  // The violation is recorded AND the reply still reaches the client, so
  // the non-conformance is visible end to end.
  EXPECT_EQ(delivered_code, 0x7777);
  EXPECT_EQ(dom.lint().counters().server_violations, 1u);
  const std::string& dump = dom.lint().first_dump();
  EXPECT_NE(dump.find("non-standard reply code"), std::string::npos) << dump;
  EXPECT_NE(dump.find("bad-server"), std::string::npos) << dump;
#endif
}

// --- protocol lint: context resolvability is a statistic, never an error ---

TEST(ChkLint, StaleContextIdsAreCountedNotRejected) {
#if !V_CHECKS_ENABLED
  GTEST_SKIP() << "built with V_CHECKS=OFF";
#else
  VFixture fx;
  fx.run_client([&](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    const std::string name = "x";
    // Unresolvable context, never forwarded: a confused client.
    auto fresh = msg::cs::make_request(msg::kQueryName, 0xdead0001, 1);
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    const auto r1 = co_await self.send(fresh, fx.alpha_pid, segs);
    // Delivered to the server (NOT lint-rejected); the server answers per
    // the paper's stale-context protocol.
    EXPECT_EQ(r1.reply_code(), ReplyCode::kInvalidContext);

    // Same id but already forwarded once: a stale cross-server pointer.
    auto stale = msg::cs::make_request(msg::kQueryName, 0xdead0001, 1);
    msg::cs::set_forward_count(stale, 1);
    const auto r2 = co_await self.send(stale, fx.alpha_pid, segs);
    EXPECT_EQ(r2.reply_code(), ReplyCode::kInvalidContext);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 0u);
  EXPECT_EQ(fx.dom.lint().counters().invalid_context_requests, 1u);
  EXPECT_EQ(fx.dom.lint().counters().stale_context_forwards, 1u);
#endif
}

}  // namespace
}  // namespace v
