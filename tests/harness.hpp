// Shared helpers for simulation tests.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <utility>

#include "ipc/kernel.hpp"
#include "sim/task.hpp"

namespace v::test {

/// Spawn `body` as a client process on `host`, run the simulation to idle,
/// and fail the test if any process died with an unexpected exception.
inline void run_client(ipc::Domain& dom, ipc::Host& host,
                       std::function<sim::Co<void>(ipc::Process)> body) {
  host.spawn("client", std::move(body));
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

/// A server that replies kOk to everything, echoing the request's variant
/// bytes back (fields 2..31 preserved, code replaced by the reply code).
inline sim::Co<void> echo_server(ipc::Process self) {
  for (;;) {
    auto env = co_await self.receive();
    msg::Message reply = env.request;
    reply.set_reply_code(ReplyCode::kOk);
    self.reply(reply, env.sender);
  }
}

}  // namespace v::test
