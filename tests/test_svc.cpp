// Runtime-library (svc::Rt) behaviours exercised end-to-end through every
// routing mode: current context, '[prefix]' names, and cross-server links —
// for each of the mutating and querying stubs.
#include <gtest/gtest.h>

#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using test::VFixture;

TEST(Rt, MutationsThroughPrefixedNames) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.create("[home]notes.txt"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.rename("[home]notes.txt", "journal.txt"),
              ReplyCode::kOk);
    auto desc = co_await rt.query("[home]journal.txt");
    EXPECT_TRUE(desc.ok());
    if (desc.ok()) {
      auto changed = desc.take();
      changed.owner = "mann";
      EXPECT_EQ(co_await rt.modify("[home]journal.txt", changed),
                ReplyCode::kOk);
    }
    EXPECT_EQ(co_await rt.remove("[home]journal.txt"), ReplyCode::kOk);
    EXPECT_EQ((co_await rt.query("[home]journal.txt")).code(),
              ReplyCode::kNotFound);
    // Nothing leaked into the actual store.
    EXPECT_EQ(fx.alpha.read_file("usr/mann/journal.txt").code(),
              ReplyCode::kNotFound);
  });
}

TEST(Rt, MutationsAcrossCrossServerLinks) {
  // Defining operations THROUGH a link land on the remote server.
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.create("usr/mann/proj/fresh.txt"), ReplyCode::kOk);
    EXPECT_EQ(fx.beta.read_file("pub/fresh.txt").value(), "");
    EXPECT_EQ(co_await rt.make_context("usr/mann/proj/subdir"),
              ReplyCode::kOk);
    EXPECT_EQ(co_await rt.rename("usr/mann/proj/fresh.txt", "stale.txt"),
              ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("usr/mann/proj/stale.txt"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("usr/mann/proj/subdir"), ReplyCode::kOk);
  });
}

TEST(Rt, ChangeContextThroughPrefixAndBack) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    const auto original = rt.current();
    EXPECT_EQ(co_await rt.change_context("[beta]pub"), ReplyCode::kOk);
    EXPECT_EQ(rt.current().server, fx.beta_pid);
    auto opened = co_await rt.open("readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // A failed change leaves the current context untouched.
    EXPECT_EQ(co_await rt.change_context("no/such/place"),
              ReplyCode::kNotFound);
    EXPECT_EQ(rt.current().server, fx.beta_pid);
    rt.set_current(original);
    EXPECT_EQ(rt.current(), original);
  });
}

TEST(Rt, MapContextOfBarePrefix) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto mapped = co_await rt.map_context("[home]");
    EXPECT_TRUE(mapped.ok());
    if (mapped.ok()) {
      EXPECT_EQ(mapped.value().server, fx.alpha_pid);
      EXPECT_EQ(mapped.value().context, fx.alpha.context_of("usr/mann"));
    }
    // "[]" names the prefix server's own table context.
    auto self_map = co_await rt.map_context("[]");
    EXPECT_TRUE(self_map.ok());
    if (self_map.ok()) {
      EXPECT_EQ(self_map.value().server, fx.prefix_pid);
    }
  });
}

TEST(Rt, OpenDetailedReportsFinalDirectoryContext) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened =
        co_await rt.open_detailed("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    auto detail = opened.take();
    EXPECT_EQ(detail.directory.server, fx.alpha_pid);
    EXPECT_EQ(detail.directory.context, fx.alpha.context_of("usr/mann"));
    EXPECT_EQ(co_await detail.file.close(), ReplyCode::kOk);
    // Across a link, the directory context belongs to the FINAL server.
    auto linked =
        co_await rt.open_detailed("usr/mann/proj/readme", kOpenRead);
    EXPECT_TRUE(linked.ok());
    if (!linked.ok()) co_return;
    auto far = linked.take();
    EXPECT_EQ(far.directory.server, fx.beta_pid);
    EXPECT_EQ(far.directory.context, fx.beta.context_of("pub"));
    EXPECT_EQ(co_await far.file.close(), ReplyCode::kOk);
  });
}

TEST(Rt, QueryDescriptorOfPrefixedContext) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    // Querying a bare prefix forwards and describes the TARGET context.
    auto desc = co_await rt.query("[home]");
    EXPECT_TRUE(desc.ok());
    if (desc.ok()) {
      EXPECT_EQ(desc.value().type, DescriptorType::kContext);
      EXPECT_EQ(desc.value().server_pid, fx.alpha_pid.raw);
      EXPECT_EQ(desc.value().context_id, fx.alpha.context_of("usr/mann"));
    }
  });
}

TEST(Rt, InverseNameOfOversizedContextNameStillWorks) {
  VFixture fx;
  // Deep directory chain: the inverse name is long but under the limit.
  std::string deep = "usr/mann";
  for (int i = 0; i < 20; ++i) deep += "/d" + std::to_string(i);
  fx.alpha.mkdirs(deep);
  fx.run_client([&fx, deep](ipc::Process, svc::Rt rt) -> Co<void> {
    auto name = co_await rt.context_name(
        {fx.alpha_pid, fx.alpha.context_of(deep)});
    EXPECT_TRUE(name.ok());
    if (name.ok()) {
      EXPECT_EQ(name.value(), "/" + deep);
    }
  });
}

TEST(Rt, ListContextOnPlainFileFails) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    // Directory-mode open of a FILE cannot succeed.
    auto records = co_await rt.list_context("usr/mann/naming.mss");
    EXPECT_FALSE(records.ok());
    EXPECT_EQ(records.code(), ReplyCode::kNotFound);
  });
}

TEST(Rt, SendCsnameWithoutValidCurrentContext) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({ipc::ProcessId::invalid(), naming::kDefaultContext});
    auto opened = co_await rt.open("anything", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kInvalidContext);
    // Prefixed names still route (the prefix server is independent of the
    // current context).
    auto prefixed = co_await rt.open("[home]naming.mss", kOpenRead);
    EXPECT_TRUE(prefixed.ok());
    if (prefixed.ok()) {
      svc::File f = prefixed.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

}  // namespace
}  // namespace v
