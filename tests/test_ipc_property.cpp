// Property/stress tests of the IPC kernel: randomized request storms over
// random topologies with crash injection.  Invariants:
//   * the simulation always drains (no lost wake-ups, no stuck fibers
//     other than servers parked in Receive);
//   * every completed send observed exactly one reply;
//   * no process dies with an unexpected exception;
//   * transport counters remain consistent with the client-side ledger.
#include <gtest/gtest.h>

#include <random>

#include "harness.hpp"
#include "ipc/kernel.hpp"
#include "msg/message.hpp"

namespace v::ipc {
namespace {

using sim::Co;
using sim::kMillisecond;

class IpcStorm : public ::testing::TestWithParam<int> {};

TEST_P(IpcStorm, RandomTopologyDrainsConsistently) {
  const unsigned seed = static_cast<unsigned>(GetParam()) * 48271u + 11u;
  std::mt19937 rng(seed);
  Domain dom(CalibrationParams::SunWorkstation3Mbit(), seed);

  const int n_hosts = 2 + static_cast<int>(rng() % 4);
  std::vector<Host*> hosts;
  for (int h = 0; h < n_hosts; ++h) {
    hosts.push_back(&dom.add_host("h" + std::to_string(h)));
  }

  // Echo servers scattered over the hosts; some will be crashed mid-run.
  const int n_servers = 2 + static_cast<int>(rng() % 5);
  std::vector<ProcessId> servers;
  for (int s = 0; s < n_servers; ++s) {
    servers.push_back(
        hosts[rng() % hosts.size()]->spawn("srv" + std::to_string(s),
                                           test::echo_server));
  }

  // Clients fire random request sequences at random servers.
  const int n_clients = 2 + static_cast<int>(rng() % 6);
  int completed_sends = 0;
  int ok_replies = 0;
  int no_replies = 0;
  int clients_done = 0;
  for (int c = 0; c < n_clients; ++c) {
    const unsigned client_seed = static_cast<unsigned>(rng());
    hosts[rng() % hosts.size()]->spawn(
        "client" + std::to_string(c),
        [&, client_seed](Process self) -> Co<void> {
          std::mt19937 crng(client_seed);
          const int requests = 10 + static_cast<int>(crng() % 30);
          for (int i = 0; i < requests; ++i) {
            const auto dest = servers[crng() % servers.size()];
            msg::Message request;
            request.set_code(0x0404);
            request.set_u32(4, crng());
            const auto reply = co_await self.send(request, dest);
            ++completed_sends;
            if (reply.reply_code() == ReplyCode::kOk) {
              ++ok_replies;
            } else {
              EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
              ++no_replies;
            }
            if (crng() % 3 == 0) {
              co_await self.delay(static_cast<sim::SimDuration>(
                  crng() % 2000) * sim::kMicrosecond);
            }
          }
          ++clients_done;
        });
  }

  // Crash one non-client host partway through (if it holds servers, their
  // pending requests resolve to kNoReply).
  const std::size_t victim = rng() % hosts.size();
  dom.loop().schedule_at(20 * kMillisecond,
                         [&, victim] { hosts[victim]->crash(); });

  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  // Clients on the crashed host die mid-run; the others must all finish.
  EXPECT_LE(clients_done, n_clients);
  EXPECT_GT(completed_sends, 0);
  EXPECT_EQ(completed_sends, ok_replies + no_replies);
  // Transport ledger: at least one delivery attempt per completed send.
  EXPECT_GE(dom.stats().messages_sent,
            static_cast<std::uint64_t>(completed_sends));
  EXPECT_GE(dom.stats().replies_sent,
            static_cast<std::uint64_t>(ok_replies));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpcStorm, ::testing::Range(0, 12));

class GroupStorm : public ::testing::TestWithParam<int> {};

TEST_P(GroupStorm, GroupSendsAlwaysResolve) {
  // Every group send must resolve to exactly one reply (first member or
  // timeout), under churn of joins, leaves and crashes.
  const unsigned seed = static_cast<unsigned>(GetParam()) * 69621u + 3u;
  Domain dom(CalibrationParams::SunWorkstation3Mbit(), seed);
  std::mt19937 rng(seed);
  constexpr GroupId kGroup = 0xAB;

  auto& client_host = dom.add_host("client-host");
  const int n_members = 1 + static_cast<int>(rng() % 5);
  std::vector<Host*> member_hosts;
  for (int m = 0; m < n_members; ++m) {
    auto& host = dom.add_host("m" + std::to_string(m));
    member_hosts.push_back(&host);
    host.spawn("member" + std::to_string(m), [](Process self) -> Co<void> {
      self.join_group(0xAB);
      for (;;) {
        auto env = co_await self.receive();
        self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
      }
    });
  }
  // Crash a random member host partway through.
  const std::size_t victim = rng() % member_hosts.size();
  dom.loop().schedule_at(50 * kMillisecond,
                         [&, victim] { member_hosts[victim]->crash(); });

  int resolved = 0;
  bool done = false;
  client_host.spawn("client", [&](Process self) -> Co<void> {
    co_await self.delay(kMillisecond);
    for (int i = 0; i < 40; ++i) {
      const auto reply =
          co_await self.send_to_group(msg::Message{}, kGroup);
      EXPECT_TRUE(reply.reply_code() == ReplyCode::kOk ||
                  reply.reply_code() == ReplyCode::kTimeout);
      ++resolved;
      co_await self.delay(3 * kMillisecond);
    }
    done = true;
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_TRUE(done);
  EXPECT_EQ(resolved, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupStorm, ::testing::Range(0, 8));

}  // namespace
}  // namespace v::ipc
