// Tests for the exception server: raising reports, uniform access to them
// as named objects, and dismissal.
#include <gtest/gtest.h>

#include "servers/exception_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenRead;
using servers::ExceptionServer;
using servers::FaultCode;
using sim::Co;
using test::VFixture;

struct ExcFixture : VFixture {
  ExcFixture() {
    exc_pid = ws1.spawn("exception-server", [this](ipc::Process p) {
      return exceptions.run(p);
    });
  }
  ExceptionServer exceptions;
  ipc::ProcessId exc_pid;
};

TEST(ExceptionServer, RaiseAndInspectThroughUniformOps) {
  ExcFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    // The service is registered local-scope, as per-workstation servers are.
    const auto found =
        co_await self.get_pid(ipc::ServiceId::kExceptionServer,
                              ipc::Scope::kLocal);
    EXPECT_EQ(found, fx.exc_pid);

    auto id = co_await ExceptionServer::raise(
        self, fx.exc_pid, FaultCode::kAddressError, "bad pointer 0xdead");
    EXPECT_TRUE(id.ok());

    // The report is a named object: listable, queryable, readable.
    rt.set_current({fx.exc_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    EXPECT_EQ(records.value().size(), 1u);
    const auto& rec = records.value()[0];
    EXPECT_EQ(rec.type, DescriptorType::kDevice);
    EXPECT_EQ(rec.server_pid, self.pid().raw);  // the faulting process
    EXPECT_EQ(rec.object_id & 0xffff,
              static_cast<std::uint32_t>(FaultCode::kAddressError));

    auto opened = co_await rt.open(rec.name, kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      auto text = co_await f.read_all();
      EXPECT_TRUE(text.ok());
      if (text.ok()) {
        EXPECT_EQ(std::string(
                      reinterpret_cast<const char*>(text.value().data()),
                      text.value().size()),
                  "bad pointer 0xdead");
      }
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }

    // Dismiss it through the uniform remove operation.
    EXPECT_EQ(co_await rt.remove(rec.name), ReplyCode::kOk);
    auto after = co_await rt.list_context("");
    EXPECT_TRUE(after.ok());
    if (after.ok()) {
      EXPECT_TRUE(after.value().empty());
    }
  });
  EXPECT_EQ(fx.exceptions.pending_count(), 0u);
}

TEST(ExceptionServer, MultipleReportsKeepDistinctNames) {
  ExcFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      auto id = co_await ExceptionServer::raise(
          self, fx.exc_pid, FaultCode::kResourceExhausted, "out of tables");
      EXPECT_TRUE(id.ok());
      if (id.ok()) {
        EXPECT_EQ(id.value(), i + 1);
      }
    }
    rt.set_current({fx.exc_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (records.ok()) {
      EXPECT_EQ(records.value().size(), 5u);
    }
    // Pattern matching works here like everywhere else.
    auto matched = co_await rt.list_matching("", "exc.*");
    EXPECT_TRUE(matched.ok());
    if (matched.ok()) {
      EXPECT_EQ(matched.value().size(), 5u);
    }
  });
}

TEST(ExceptionServer, OversizedReportRejected) {
  ExcFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    const std::string huge(1000, 'x');
    auto id = co_await ExceptionServer::raise(self, fx.exc_pid,
                                              FaultCode::kUnknown, huge);
    EXPECT_EQ(id.code(), ReplyCode::kBadArgs);
  });
}

TEST(ExceptionServer, UnknownOpRejected) {
  ExcFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    msg::Message request;
    request.set_code(0x0399);
    const auto reply = co_await self.send(request, fx.exc_pid);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kIllegalRequest);
  });
}

}  // namespace
}  // namespace v
