// End-to-end tests of the FileServer through the name-handling protocol and
// the run-time stubs: hierarchical contexts, CRUD, descriptors, context
// directories, cross-server forwarding, and well-known contexts.
#include <gtest/gtest.h>

#include <string>

#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::ObjectDescriptor;
using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using test::VFixture;

std::string to_str(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(FileServer, OpenAndReadExistingFile) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_GT(f.size(), 0u);
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    EXPECT_EQ(to_str(bytes.value()), "Distributed name interpretation.");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(FileServer, OpenMissingFileFails) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/nonexistent", kOpenRead);
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.code(), ReplyCode::kNotFound);
  });
}

TEST(FileServer, PathThroughFileIsNotAContext) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss/deeper", kOpenRead);
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.code(), ReplyCode::kNotAContext);
  });
}

TEST(FileServer, PathThroughMissingContextIsNotFound) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/ghost/deeper", kOpenRead);
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.code(), ReplyCode::kNotFound);
  });
}

TEST(FileServer, CreateWriteReadBack) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened =
        co_await rt.open("tmp/new.txt", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    const std::string text = "hello, V";
    EXPECT_EQ(co_await f.write_all(
                  std::as_bytes(std::span(text.data(), text.size()))),
              ReplyCode::kOk);
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);

    auto reopened = co_await rt.open("tmp/new.txt", kOpenRead);
    EXPECT_TRUE(reopened.ok());
    if (!reopened.ok()) co_return;
    svc::File g = reopened.take();
    auto bytes = co_await g.read_all();
    EXPECT_TRUE(bytes.ok());
    EXPECT_EQ(to_str(bytes.value()), "hello, V");
    EXPECT_EQ(co_await g.close(), ReplyCode::kOk);
  });
  EXPECT_EQ(fx.alpha.read_file("tmp/new.txt").value(), "hello, V");
}

TEST(FileServer, MultiBlockFileRoundTrips) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    std::string big(1700, 'x');  // 3 blocks + remainder
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<char>('a' + i % 26);
    }
    auto opened = co_await rt.open("tmp/big.bin",
                                   kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(co_await f.write_all(
                  std::as_bytes(std::span(big.data(), big.size()))),
              ReplyCode::kOk);
    EXPECT_EQ(co_await f.refresh(), ReplyCode::kOk);
    EXPECT_EQ(f.size(), big.size());
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (bytes.ok()) {
      EXPECT_EQ(to_str(bytes.value()), big);
    }
    // Bulk path returns the identical content.
    auto bulk = co_await f.read_bulk();
    EXPECT_TRUE(bulk.ok());
    if (bulk.ok()) {
      EXPECT_EQ(to_str(bulk.value()), big);
    }
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(FileServer, RemoveDeletesNameAndObjectTogether) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.remove("usr/mann/paper.mss"), ReplyCode::kOk);
    auto opened = co_await rt.open("usr/mann/paper.mss", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kNotFound);
    // Idempotence check: removing again reports not-found.
    EXPECT_EQ(co_await rt.remove("usr/mann/paper.mss"),
              ReplyCode::kNotFound);
  });
}

TEST(FileServer, RemoveNonEmptyDirectoryRefused) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.remove("usr/mann"), ReplyCode::kBadState);
    EXPECT_EQ(co_await rt.make_context("tmp/emptydir"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.remove("tmp/emptydir"), ReplyCode::kOk);
  });
}

TEST(FileServer, RenameWithinContext) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.rename("usr/mann/naming.mss", "naming-v2.mss"),
              ReplyCode::kOk);
    EXPECT_EQ((co_await rt.open("usr/mann/naming.mss", kOpenRead)).code(),
              ReplyCode::kNotFound);
    auto opened = co_await rt.open("usr/mann/naming-v2.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // Renaming onto an existing name collides.
    EXPECT_EQ(co_await rt.rename("usr/mann/naming-v2.mss", "paper.mss"),
              ReplyCode::kNameExists);
  });
}

TEST(FileServer, MapContextNameReturnsServerAndContext) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto mapped = co_await rt.map_context("usr/mann");
    EXPECT_TRUE(mapped.ok());
    EXPECT_EQ(mapped.value().server, fx.alpha_pid);
    EXPECT_EQ(mapped.value().context, fx.alpha.context_of("usr/mann"));
    // A file does not name a context.
    auto not_ctx = co_await rt.map_context("usr/mann/naming.mss");
    EXPECT_EQ(not_ctx.code(), ReplyCode::kNotAContext);
  });
}

TEST(FileServer, ChangeContextMakesNamesRelative) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.change_context("usr/mann"), ReplyCode::kOk);
    auto opened = co_await rt.open("naming.mss", kOpenRead);  // now relative
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // ".." walks up.
    auto up = co_await rt.map_context("..");
    EXPECT_TRUE(up.ok());
    rt.set_current(up.value());
    auto opened2 = co_await rt.open("mann/paper.mss", kOpenRead);
    EXPECT_TRUE(opened2.ok());
    if (opened2.ok()) {
      svc::File f = opened2.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(FileServer, QueryDescriptorFields) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto desc = co_await rt.query("usr/mann/naming.mss");
    EXPECT_TRUE(desc.ok());
    if (!desc.ok()) co_return;
    EXPECT_EQ(desc.value().type, DescriptorType::kFile);
    EXPECT_EQ(desc.value().name, "naming.mss");
    EXPECT_EQ(desc.value().size,
              std::string("Distributed name interpretation.").size());
    // Querying a directory yields a context descriptor.
    auto dir = co_await rt.query("usr/mann");
    EXPECT_TRUE(dir.ok());
    EXPECT_EQ(dir.value().type, DescriptorType::kContext);
  });
}

TEST(FileServer, ModifyDescriptorChangesOnlyModifiableFields) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto desc = co_await rt.query("usr/mann/naming.mss");
    EXPECT_TRUE(desc.ok());
    if (!desc.ok()) co_return;
    ObjectDescriptor changed = desc.value();
    changed.flags = naming::kReadable;  // drop writeability
    changed.owner = "cheriton";
    changed.size = 9999;  // server must ignore this
    EXPECT_EQ(co_await rt.modify("usr/mann/naming.mss", changed),
              ReplyCode::kOk);
    auto after = co_await rt.query("usr/mann/naming.mss");
    EXPECT_TRUE(after.ok());
    if (!after.ok()) co_return;
    EXPECT_EQ(after.value().flags, naming::kReadable);
    EXPECT_EQ(after.value().owner, "cheriton");
    EXPECT_EQ(after.value().size,
              std::string("Distributed name interpretation.").size());
    // Write-open now fails: descriptor modification has real effect.
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenWrite);
    EXPECT_EQ(opened.code(), ReplyCode::kNoPermission);
  });
}

TEST(FileServer, ContextDirectoryListsAllObjects) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto records = co_await rt.list_context("usr/mann");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    EXPECT_EQ(records.value().size(), 3u);  // naming.mss, paper.mss, proj
    bool saw_link = false;
    for (const auto& rec : records.value()) {
      if (rec.name == "proj") {
        saw_link = true;
        EXPECT_EQ(rec.type, DescriptorType::kContext);
      }
    }
    EXPECT_TRUE(saw_link);
  });
}

TEST(FileServer, ContextDirectoryMatchesIndividualQueries) {
  // Section 5.6: records returned by reading the directory are identical to
  // those a per-object query returns.
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto records = co_await rt.list_context("usr/mann");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    for (const auto& rec : records.value()) {
      const std::string full_name = "usr/mann/" + rec.name;
      auto one = co_await rt.query(full_name);
      EXPECT_TRUE(one.ok());
      if (!one.ok()) continue;
      if (rec.server_pid != 0 && rec.name == "proj") {
        // Cross-server link: the query FORWARDS to the target server, which
        // describes the target context under its own name — dir records and
        // forwarded queries legitimately differ here (section 6's lossy
        // reverse-mapping territory).  They must agree on the context pair.
        EXPECT_EQ(one.value().type, naming::DescriptorType::kContext);
        EXPECT_EQ(one.value().server_pid, rec.server_pid);
        EXPECT_EQ(one.value().context_id, rec.context_id);
      } else {
        EXPECT_EQ(one.value(), rec);
      }
    }
  });
}

TEST(FileServer, WritingContextDirectoryModifiesObjects) {
  // Section 5.6: "Writing a description record has the same semantics as
  // invoking the modification operation on the corresponding object."
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open(
        "usr/mann", kOpenRead | kOpenWrite | naming::wire::kOpenDirectory);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File dir = opened.take();
    auto bytes = co_await dir.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    auto data = bytes.take();
    // Rewrite every record's owner.
    for (std::size_t off = 0;
         off + ObjectDescriptor::kWireSize <= data.size();
         off += ObjectDescriptor::kWireSize) {
      auto rec = ObjectDescriptor::decode(
          std::span(data).subspan(off, ObjectDescriptor::kWireSize));
      EXPECT_TRUE(rec.ok());
      if (!rec.ok()) continue;
      auto d = rec.take();
      d.owner = "archivist";
      d.encode(std::span(data).subspan(off, ObjectDescriptor::kWireSize));
    }
    EXPECT_EQ(co_await dir.write_all(data), ReplyCode::kOk);
    EXPECT_EQ(co_await dir.close(), ReplyCode::kOk);
    auto after = co_await rt.query("usr/mann/naming.mss");
    EXPECT_TRUE(after.ok());
    if (after.ok()) {
      EXPECT_EQ(after.value().owner, "archivist");
    }
  });
}

TEST(FileServer, WellKnownContextsResolve) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    // Address the home context directly via the well-known id.
    rt.set_current({fx.alpha_pid, naming::kHomeContext});
    auto opened = co_await rt.open("naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    rt.set_current({fx.alpha_pid, naming::kProgramsContext});
    auto prog = co_await rt.open("edit", kOpenRead);
    EXPECT_TRUE(prog.ok());
    if (prog.ok()) {
      svc::File f = prog.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(FileServer, CrossServerLinkForwardsTransparently) {
  // The name walks alpha:/usr/mann/proj -> beta:/pub without the client
  // knowing two servers were involved.
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/proj/readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(f.server(), fx.beta_pid);  // instance lives on beta
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    EXPECT_EQ(to_str(bytes.value()), "public files live here");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    // Deeper multi-hop resolution across the link also works.
    auto deep = co_await rt.open("usr/mann/proj/data/points.dat", kOpenRead);
    EXPECT_TRUE(deep.ok());
    if (deep.ok()) {
      svc::File g = deep.take();
      EXPECT_EQ(co_await g.close(), ReplyCode::kOk);
    }
  });
}

TEST(FileServer, LinkCreationThroughProtocol) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    EXPECT_EQ(co_await rt.link("tmp/pub-link",
                               {fx.beta_pid, fx.beta.context_of("pub")}),
              ReplyCode::kOk);
    auto opened = co_await rt.open("tmp/pub-link/readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(FileServer, GetContextNameInverseMapping) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto name = co_await rt.context_name(
        {fx.alpha_pid, fx.alpha.context_of("usr/mann")});
    EXPECT_TRUE(name.ok());
    EXPECT_EQ(name.value(), "/usr/mann");
    // An invalid context has no inverse.
    auto bogus = co_await rt.context_name({fx.alpha_pid, 999999});
    EXPECT_EQ(bogus.code(), ReplyCode::kNoInverse);
  });
}

TEST(FileServer, GetFileNameFromOpenInstance) {
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    auto name = co_await rt.file_name(f.server(), f.instance());
    EXPECT_TRUE(name.ok());
    EXPECT_EQ(name.value(), "/usr/mann/naming.mss");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    // After close the instance has no name (temporary object released).
    auto gone = co_await rt.file_name(f.server(), f.instance());
    EXPECT_EQ(gone.code(), ReplyCode::kNoInverse);
  });
}

TEST(FileServer, ReverseMappingLosesForwardingHistory) {
  // Section 6: a name resolved through a cross-server link reverse-maps to
  // the FINAL server's local path, not the path the client used — the
  // inverse is genuinely lossy.
  VFixture fx;
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open("usr/mann/proj/readme", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    auto name = co_await rt.file_name(f.server(), f.instance());
    EXPECT_TRUE(name.ok());
    EXPECT_EQ(name.value(), "/pub/readme");  // beta's view, not the client's
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(FileServer, InvalidContextIdRejected) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({fx.alpha_pid, 123456});
    auto opened = co_await rt.open("anything", kOpenRead);
    EXPECT_EQ(opened.code(), ReplyCode::kInvalidContext);
  });
}

TEST(FileServer, IllegalOperationRejectedUniformly) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    // A CSname request with an op code alpha does not implement still gets
    // name resolution, then a clean kIllegalRequest.
    msg::Message request = msg::cs::make_request(
        0x0500 | msg::kCsnameBit, naming::kDefaultContext, 3);
    const char name[] = "tmp";
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name, 3));
    const auto reply = co_await self.send(request, fx.alpha_pid, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kIllegalRequest);
  });
}

}  // namespace
}  // namespace v
