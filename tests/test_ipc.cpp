// Tests for the simulated distributed V kernel: IPC primitives, service
// registry, groups, crash behaviour, and the calibration targets from the
// paper's section 3.1.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "harness.hpp"
#include "ipc/calibration.hpp"
#include "ipc/kernel.hpp"
#include "msg/message.hpp"
#include "sim/time.hpp"

namespace v::ipc {
namespace {

using sim::Co;
using sim::kMillisecond;
using sim::to_ms;
using test::echo_server;
using test::run_client;

// --- pid structure (paper section 4.1, Figure 2) ---------------------------

TEST(Pid, SubfieldStructure) {
  const ProcessId pid = ProcessId::make(0x1234, 0x5678);
  EXPECT_EQ(pid.logical_host(), 0x1234);
  EXPECT_EQ(pid.local_pid(), 0x5678);
  EXPECT_EQ(pid.raw, 0x12345678u);
  EXPECT_TRUE(pid.valid());
  EXPECT_FALSE(ProcessId::invalid().valid());
}

TEST(Pid, LocalityTestIsPureBitCompare) {
  const ProcessId pid = ProcessId::make(3, 99);
  EXPECT_TRUE(pid.local_to(3));
  EXPECT_FALSE(pid.local_to(4));
}

TEST(Pid, SpawnedPidsAreUniqueAcrossHosts) {
  Domain dom;
  auto& h1 = dom.add_host("ws1");
  auto& h2 = dom.add_host("ws2");
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(h1.spawn("p", [](Process) -> Co<void> { co_return; }).raw);
    seen.insert(h2.spawn("p", [](Process) -> Co<void> { co_return; }).raw);
  }
  EXPECT_EQ(seen.size(), 400u);
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

// --- transaction timing (paper section 3.1) ---------------------------------

TEST(Ipc, LocalTransactionTakesTwoLocalHops) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server = host.spawn("server", echo_server);
  sim::SimDuration elapsed = -1;
  run_client(dom, host, [&, server](Process self) -> Co<void> {
    const auto t0 = self.now();
    const auto reply = co_await self.send(msg::Message{}, server);
    elapsed = self.now() - t0;
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
  });
  EXPECT_EQ(elapsed, 2 * dom.params().local_hop);
  // Paper: 0.77 ms for a local 32-byte message transaction.
  EXPECT_NEAR(to_ms(elapsed), 0.77, 0.01);
}

TEST(Ipc, RemoteTransactionMatchesPaper) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ProcessId server = ws2.spawn("server", echo_server);
  sim::SimDuration elapsed = -1;
  run_client(dom, ws1, [&, server](Process self) -> Co<void> {
    const auto t0 = self.now();
    (void)co_await self.send(msg::Message{}, server);
    elapsed = self.now() - t0;
  });
  // Paper: 2.56 ms between two SUN workstations on 3 Mbit Ethernet.
  EXPECT_NEAR(to_ms(elapsed), 2.56, 0.01);
}

TEST(Ipc, RequestAndReplyFieldsRoundTrip) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server =
      host.spawn("server", [](Process self) -> Co<void> {
        auto env = co_await self.receive();
        EXPECT_EQ(env.request.code(), 0x0404);
        EXPECT_EQ(env.request.u32(8), 0xDEADBEEFu);
        msg::Message reply = msg::make_reply(ReplyCode::kOk);
        reply.set_u32(4, 0xCAFEF00Du);
        self.reply(reply, env.sender);
      });
  run_client(dom, host, [server](Process self) -> Co<void> {
    msg::Message req;
    req.set_code(0x0404);
    req.set_u32(8, 0xDEADBEEF);
    const auto reply = co_await self.send(req, server);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    EXPECT_EQ(reply.u32(4), 0xCAFEF00Du);
  });
}

// --- forwarding -------------------------------------------------------------

TEST(Ipc, ForwardDeliversToThirdProcessWithOriginalSender) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  ProcessId client_pid;
  const ProcessId final_server =
      host.spawn("final", [&](Process self) -> Co<void> {
        auto env = co_await self.receive();
        // "It appears as though the sender originally sent to the third
        // process": the envelope's sender is the client, not the forwarder.
        EXPECT_EQ(env.sender, client_pid);
        EXPECT_EQ(env.request.u16(2), 7);  // rewritten by the forwarder
        self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
      });
  const ProcessId forwarder =
      host.spawn("forwarder", [final_server](Process self) -> Co<void> {
        auto env = co_await self.receive();
        env.request.set_u16(2, 7);  // forwarders may rewrite the message
        self.forward(env, final_server);
      });
  host.spawn("client", [&](Process self) -> Co<void> {
    client_pid = self.pid();
    const auto reply = co_await self.send(msg::Message{}, forwarder);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(Ipc, ForwardCostsOneExtraHop) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId final_server = host.spawn("final", echo_server);
  const ProcessId forwarder =
      host.spawn("forwarder", [final_server](Process self) -> Co<void> {
        auto env = co_await self.receive();
        self.forward(env, final_server);
      });
  sim::SimDuration direct = -1, forwarded = -1;
  run_client(dom, host, [&](Process self) -> Co<void> {
    auto t0 = self.now();
    (void)co_await self.send(msg::Message{}, final_server);
    direct = self.now() - t0;
    t0 = self.now();
    (void)co_await self.send(msg::Message{}, forwarder);
    forwarded = self.now() - t0;
  });
  EXPECT_EQ(forwarded - direct, dom.params().local_hop);
}

// --- MoveFrom / MoveTo ------------------------------------------------------

TEST(Ipc, MoveFromReadsBlockedSendersSegment) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server =
      host.spawn("server", [](Process self) -> Co<void> {
        auto env = co_await self.receive();
        std::vector<std::byte> buf(5);
        auto got = co_await self.move_from(env.sender, buf, 0);
        EXPECT_TRUE(got.ok());
        EXPECT_EQ(got.value(), 5u);
        EXPECT_EQ(std::memcmp(buf.data(), "hello", 5), 0);
        // Offset reads work too.
        std::vector<std::byte> tail(3);
        got = co_await self.move_from(env.sender, tail, 2);
        EXPECT_TRUE(got.ok());
        EXPECT_EQ(std::memcmp(tail.data(), "llo", 3), 0);
        self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
      });
  run_client(dom, host, [server](Process self) -> Co<void> {
    const char data[] = "hello";
    Segments segs;
    segs.read = std::as_bytes(std::span(data, 5));
    const auto reply = co_await self.send(msg::Message{}, server, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
  });
}

TEST(Ipc, MoveToWritesBlockedSendersSegment) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server =
      host.spawn("server", [](Process self) -> Co<void> {
        auto env = co_await self.receive();
        const char page[] = "PAGEDATA";
        auto put =
            co_await self.move_to(env.sender, std::as_bytes(std::span(page, 8)));
        EXPECT_TRUE(put.ok());
        self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
      });
  run_client(dom, host, [server](Process self) -> Co<void> {
    std::vector<std::byte> buf(8);
    Segments segs;
    segs.write = buf;
    const auto reply = co_await self.send(msg::Message{}, server, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    EXPECT_EQ(std::memcmp(buf.data(), "PAGEDATA", 8), 0);
  });
}

TEST(Ipc, MoveFromBeyondSegmentIsBadArgs) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server =
      host.spawn("server", [](Process self) -> Co<void> {
        auto env = co_await self.receive();
        std::vector<std::byte> buf(10);  // larger than the 5-byte segment
        auto got = co_await self.move_from(env.sender, buf, 0);
        EXPECT_FALSE(got.ok());
        EXPECT_EQ(got.code(), ReplyCode::kBadArgs);
        self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
      });
  run_client(dom, host, [server](Process self) -> Co<void> {
    const char data[] = "hello";
    Segments segs;
    segs.read = std::as_bytes(std::span(data, 5));
    (void)co_await self.send(msg::Message{}, server, segs);
  });
}

TEST(Ipc, BulkTransferCalibrationMatchesProgramLoad) {
  // Paper: a 64 KB program loads in 338 ms over the 3 Mbit Ethernet.
  const auto params = CalibrationParams::SunWorkstation3Mbit();
  const double ms = to_ms(params.move_to_cost(64 * 1024, /*local=*/false));
  EXPECT_NEAR(ms, 338.0, 12.0);  // within ~3.5%
}

// --- send failures ----------------------------------------------------------

TEST(Ipc, SendToUnknownPidGetsNoReply) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  run_client(dom, host, [](Process self) -> Co<void> {
    const auto reply =
        co_await self.send(msg::Message{}, ProcessId::make(9, 9));
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
}

TEST(Ipc, SendToExitedProcessGetsNoReply) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId transient =
      host.spawn("transient", [](Process) -> Co<void> { co_return; });
  run_client(dom, host, [transient](Process self) -> Co<void> {
    co_await self.delay(kMillisecond);  // let it exit first
    const auto reply = co_await self.send(msg::Message{}, transient);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
}

// --- service registry (paper section 4.2) -----------------------------------

TEST(Registry, LocalRegistrationFoundLocally) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server = host.spawn("time", echo_server);
  run_client(dom, host, [server](Process self) -> Co<void> {
    self.set_pid(ServiceId::kTimeServer, server, Scope::kLocal);
    const auto found =
        co_await self.get_pid(ServiceId::kTimeServer, Scope::kLocal);
    EXPECT_EQ(found, server);
  });
}

TEST(Registry, LocalOnlyRegistrationInvisibleRemotely) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ProcessId server = ws1.spawn("time", echo_server);
  run_client(dom, ws2, [server](Process self) -> Co<void> {
    self.set_pid(ServiceId::kTimeServer, server, Scope::kLocal);
    const auto found =
        co_await self.get_pid(ServiceId::kTimeServer, Scope::kBoth);
    EXPECT_FALSE(found.valid());
  });
}

TEST(Registry, RemoteLookupUsesBroadcast) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fileserver = dom.add_host("fs1");
  const ProcessId server = fileserver.spawn("storage", echo_server);
  sim::SimDuration lookup_time = -1;
  run_client(dom, ws1, [&, server](Process self) -> Co<void> {
    self.set_pid(ServiceId::kStorageServer, server, Scope::kBoth);
    const auto t0 = self.now();
    const auto found =
        co_await self.get_pid(ServiceId::kStorageServer, Scope::kBoth);
    lookup_time = self.now() - t0;
    EXPECT_EQ(found, server);
  });
  // Local miss + broadcast: costs at least the broadcast query time.
  EXPECT_GE(lookup_time, dom.params().broadcast_query);
}

TEST(Registry, RemoteOnlyRegistrationInvisibleToLocalScope) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId server = host.spawn("printer", echo_server);
  run_client(dom, host, [server](Process self) -> Co<void> {
    self.set_pid(ServiceId::kPrinterServer, server, Scope::kRemote);
    const auto found =
        co_await self.get_pid(ServiceId::kPrinterServer, Scope::kLocal);
    EXPECT_FALSE(found.valid());
  });
}

TEST(Registry, ReRegistrationRebindsService) {
  // Paper section 4.2: if a storage server is recreated after a crash with
  // a different pid, it is still the same service from the client's view.
  Domain dom;
  auto& host = dom.add_host("ws1");
  const ProcessId first = host.spawn("time-v1", echo_server);
  const ProcessId second = host.spawn("time-v2", echo_server);
  run_client(dom, host, [first, second](Process self) -> Co<void> {
    self.set_pid(ServiceId::kTimeServer, first, Scope::kLocal);
    auto found = co_await self.get_pid(ServiceId::kTimeServer, Scope::kLocal);
    EXPECT_EQ(found, first);
    self.set_pid(ServiceId::kTimeServer, second, Scope::kLocal);
    found = co_await self.get_pid(ServiceId::kTimeServer, Scope::kLocal);
    EXPECT_EQ(found, second);
  });
}

// --- groups / multicast (paper section 7 future work) -----------------------

TEST(Group, FirstReplyWins) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  constexpr GroupId kGroup = 42;
  // Fast member on the same host; slow member remote.
  ws1.spawn("fast", [](Process self) -> Co<void> {
    self.join_group(42);
    auto env = co_await self.receive();
    msg::Message m = msg::make_reply(ReplyCode::kOk);
    m.set_u16(2, 1);  // identifies the fast member
    self.reply(m, env.sender);
  });
  ws2.spawn("slow", [](Process self) -> Co<void> {
    self.join_group(42);
    auto env = co_await self.receive();
    co_await self.delay(50 * kMillisecond);
    msg::Message m = msg::make_reply(ReplyCode::kOk);
    m.set_u16(2, 2);
    self.reply(m, env.sender);
  });
  run_client(dom, ws1, [kGroup](Process self) -> Co<void> {
    co_await self.delay(kMillisecond);  // let members join
    const auto reply = co_await self.send_to_group(msg::Message{}, kGroup);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    EXPECT_EQ(reply.u16(2), 1);  // the fast local member answered first
  });
}

TEST(Group, EmptyGroupTimesOut) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  run_client(dom, host, [](Process self) -> Co<void> {
    const auto reply = co_await self.send_to_group(msg::Message{}, 777);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kTimeout);
  });
}

TEST(Group, MulticastDeliversInJoinOrder) {
  // Fan-out order is the members' join order (the per-group member
  // vector), NOT any property of the group table — the table is an
  // open-addressing map whose layout must never leak into event order.
  Domain dom;
  auto& host = dom.add_host("ws1");
  constexpr GroupId kGroup = 9;
  std::vector<int> delivered;
  for (int i = 0; i < 5; ++i) {
    host.spawn("member" + std::to_string(i),
               [&delivered, i](Process self) -> Co<void> {
                 self.join_group(kGroup);
                 auto env = co_await self.receive();
                 delivered.push_back(i);
                 self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
               });
  }
  run_client(dom, host, [&delivered](Process self) -> Co<void> {
    co_await self.delay(kMillisecond);  // let members join, in spawn order
    const auto reply = co_await self.send_to_group(msg::Message{}, kGroup);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    co_await self.delay(kMillisecond);  // drain the stragglers' deliveries
    EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2, 3, 4}));
  });
}

TEST(Group, DeadMembersAreSkipped) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  host.spawn("gone", [](Process self) -> Co<void> {
    self.join_group(7);
    co_return;  // exits immediately; stays in the member list
  });
  host.spawn("alive", [](Process self) -> Co<void> {
    self.join_group(7);
    auto env = co_await self.receive();
    self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
  });
  run_client(dom, host, [](Process self) -> Co<void> {
    co_await self.delay(kMillisecond);
    const auto reply = co_await self.send_to_group(msg::Message{}, 7);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
  });
}

// --- crash behaviour ---------------------------------------------------------

TEST(Crash, BlockedSenderGetsNoReplyWhenServerHostDies) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  const ProcessId server = fs1.spawn("server", [](Process self) -> Co<void> {
    (void)co_await self.receive();
    co_await self.delay(sim::kSecond);  // "hangs" holding the request
    co_return;
  });
  bool replied = false;
  ws1.spawn("client", [&, server](Process self) -> Co<void> {
    const auto reply = co_await self.send(msg::Message{}, server);
    replied = true;
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
  dom.loop().schedule_at(10 * kMillisecond, [&] { fs1.crash(); });
  dom.run();
  EXPECT_TRUE(replied);
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(Crash, InFlightMessageToCrashedHostGetsNoReply) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  const ProcessId server = fs1.spawn("server", test::echo_server);
  bool replied = false;
  ws1.spawn("client", [&, server](Process self) -> Co<void> {
    co_await self.delay(5 * kMillisecond);
    // Host crashes while this message is on the wire.
    const auto reply = co_await self.send(msg::Message{}, server);
    replied = true;
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
  dom.loop().schedule_at(5 * kMillisecond + dom.params().remote_hop / 2,
                         [&] { fs1.crash(); });
  dom.run();
  EXPECT_TRUE(replied);
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(Crash, RestartAllowsRespawnAndRebinding) {
  Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  const ProcessId old_server = fs1.spawn("storage-v1", echo_server);
  ProcessId new_server;
  ws1.spawn("client", [&](Process self) -> Co<void> {
    self.set_pid(ServiceId::kStorageServer, old_server, Scope::kBoth);
    auto found = co_await self.get_pid(ServiceId::kStorageServer, Scope::kBoth);
    EXPECT_EQ(found, old_server);
    co_await self.delay(20 * kMillisecond);  // crash + restart happen here
    // Old binding is gone with the crash; service must be re-resolved.
    found = co_await self.get_pid(ServiceId::kStorageServer, Scope::kBoth);
    EXPECT_TRUE(found.valid());
    EXPECT_NE(found, old_server);
    EXPECT_EQ(found, new_server);
    const auto reply = co_await self.send(msg::Message{}, found);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
  });
  dom.loop().schedule_at(5 * kMillisecond, [&] { fs1.crash(); });
  dom.loop().schedule_at(10 * kMillisecond, [&] {
    fs1.restart();
    new_server = fs1.spawn("storage-v2", echo_server);
    fs1.register_service(ServiceId::kStorageServer, new_server, Scope::kBoth);
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
}

TEST(Crash, CrashedHostCannotSpawn) {
  Domain dom;
  auto& host = dom.add_host("ws1");
  host.crash();
  EXPECT_THROW(host.spawn("p", [](Process) -> Co<void> { co_return; }),
               std::logic_error);
}

// --- determinism -------------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalTimelines) {
  auto run_once = [](std::uint64_t seed) {
    Domain dom(CalibrationParams::SunWorkstation3Mbit(), seed);
    auto& ws1 = dom.add_host("ws1");
    auto& ws2 = dom.add_host("ws2");
    const ProcessId server = ws2.spawn("server", echo_server);
    sim::SimTime finish = 0;
    ws1.spawn("client", [&, server](Process self) -> Co<void> {
      for (int i = 0; i < 10; ++i) {
        (void)co_await self.send(msg::Message{}, server);
        co_await self.delay(static_cast<sim::SimDuration>(
            self.domain().rng().uniform(100, 2000)) * sim::kMicrosecond);
      }
      finish = self.now();
    });
    dom.run();
    return std::pair{finish, dom.loop().events_executed()};
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11).first, run_once(12).first);
}

}  // namespace
}  // namespace v::ipc
