// Tests for the centralized-name-server baseline (paper section 2.1) and
// the failure modes section 2.2 attributes to it.
#include <gtest/gtest.h>

#include "baseline/central.hpp"
#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using baseline::Binding;
using baseline::CentralClient;
using baseline::CentralNameServer;
using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

struct CentralFixture : test::VFixture {
  CentralFixture() : ns_host(dom.add_host("ns1")) {
    ns_pid = ns_host.spawn("central-ns",
                           [this](ipc::Process p) { return ns.run(p); });
  }
  ipc::Host& ns_host;
  CentralNameServer ns;
  ipc::ProcessId ns_pid;
};

TEST(CentralBaseline, RegisterLookupUnregister) {
  CentralFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    CentralClient nc(self, fx.ns_pid);
    const Binding binding{{fx.alpha_pid, fx.alpha.context_of("usr/mann")},
                          "naming.mss"};
    EXPECT_EQ(co_await nc.register_name("/alpha/usr/mann/naming.mss",
                                        binding),
              ReplyCode::kOk);
    auto found = co_await nc.lookup("/alpha/usr/mann/naming.mss");
    EXPECT_TRUE(found.ok());
    if (found.ok()) {
      EXPECT_EQ(found.value().home.server, fx.alpha_pid);
      EXPECT_EQ(found.value().leaf, "naming.mss");
    }
    auto count = co_await nc.count();
    EXPECT_TRUE(count.ok());
    EXPECT_EQ(count.value(), 1u);
    EXPECT_EQ(co_await nc.unregister_name("/alpha/usr/mann/naming.mss"),
              ReplyCode::kOk);
    EXPECT_EQ((co_await nc.lookup("/alpha/usr/mann/naming.mss")).code(),
              ReplyCode::kNotFound);
  });
}

TEST(CentralBaseline, ResolvedBindingOpensAtHomeServer) {
  CentralFixture fx;
  fx.ns.preload("/alpha/usr/mann/naming.mss",
                {{fx.alpha_pid, fx.alpha.context_of("usr/mann")},
                 "naming.mss"});
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    CentralClient nc(self, fx.ns_pid);
    auto found = co_await nc.lookup("/alpha/usr/mann/naming.mss");
    EXPECT_TRUE(found.ok());
    if (!found.ok()) co_return;
    rt.set_current(found.value().home);
    auto opened = co_await rt.open(found.value().leaf, kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(CentralBaseline, DeletionLeavesStaleBinding) {
  // Section 2.2 "Consistency": deleting the object at its home server does
  // not update the name server; the registry now lies.
  CentralFixture fx;
  fx.ns.preload("/alpha/usr/mann/paper.mss",
                {{fx.alpha_pid, fx.alpha.context_of("usr/mann")},
                 "paper.mss"});
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    CentralClient nc(self, fx.ns_pid);
    // Delete through the distributed protocol (name dies with the object).
    EXPECT_EQ(co_await rt.remove("usr/mann/paper.mss"), ReplyCode::kOk);
    // The central registry still resolves the name...
    auto stale = co_await nc.lookup("/alpha/usr/mann/paper.mss");
    EXPECT_TRUE(stale.ok());
    // ...but acting on the binding fails: the registry was inconsistent.
    if (stale.ok()) {
      rt.set_current(stale.value().home);
      auto opened = co_await rt.open(stale.value().leaf, kOpenRead);
      EXPECT_EQ(opened.code(), ReplyCode::kNotFound);
    }
  });
}

TEST(CentralBaseline, NameServerCrashMakesReachableObjectsUnnameable) {
  // Section 2.2 "Reliability": the name server is a central failure point.
  CentralFixture fx;
  fx.ns.preload("/alpha/usr/mann/naming.mss",
                {{fx.alpha_pid, fx.alpha.context_of("usr/mann")},
                 "naming.mss"});
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.ns_host.crash(); });
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(10 * kMillisecond);
    CentralClient nc(self, fx.ns_pid);
    // Central model: lookup fails although alpha is perfectly healthy.
    auto found = co_await nc.lookup("/alpha/usr/mann/naming.mss");
    EXPECT_EQ(found.code(), ReplyCode::kNoReply);
    // Distributed model: the same object remains nameable (prefix server is
    // local; interpretation happens at the object's own server).
    auto opened = co_await rt.open("[home]naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

TEST(CentralBaseline, LookupCostsOneExtraTransaction) {
  // Section 2.2 "Efficiency": every fresh central-model resolution pays one
  // extra server interaction compared to direct interpretation.
  CentralFixture fx;
  fx.ns.preload("/alpha/usr/mann/naming.mss",
                {{fx.alpha_pid, fx.alpha.context_of("usr/mann")},
                 "naming.mss"});
  fx.run_client([&fx](ipc::Process self, svc::Rt rt) -> Co<void> {
    CentralClient nc(self, fx.ns_pid);
    // Central path: lookup + open.
    auto t0 = self.now();
    auto found = co_await nc.lookup("/alpha/usr/mann/naming.mss");
    EXPECT_TRUE(found.ok());
    if (!found.ok()) co_return;
    rt.set_current(found.value().home);
    auto opened = co_await rt.open(found.value().leaf, kOpenRead);
    const auto central_cost = self.now() - t0;
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    // Distributed path: one request, interpreted where the object lives.
    rt.set_current({fx.alpha_pid, naming::kDefaultContext});
    t0 = self.now();
    auto direct = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    const auto distributed_cost = self.now() - t0;
    EXPECT_TRUE(direct.ok());
    if (direct.ok()) {
      svc::File f = direct.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    EXPECT_GT(central_cost, distributed_cost);
  });
}

TEST(CentralBaseline, UnknownOpRejected) {
  CentralFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt) -> Co<void> {
    msg::Message request;
    request.set_code(0x0399);
    const auto reply = co_await self.send(request, fx.ns_pid);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kIllegalRequest);
  });
}

}  // namespace
}  // namespace v
