// Timing reproduction tests for the paper's measured results.
//
//   E1 (section 3.1): 32 B message transaction 0.77 ms local / 2.56 ms remote
//   E2 (section 3.1): 64 KB program image in one bulk MoveTo ~ 338 ms
//   E3 (section 3.1): sequential file read ~17 ms per 512 B page (15 ms disk)
//   E4 (section 6):   Open 1.21/3.70 ms direct, 5.14/7.69 ms via prefix,
//                     with the prefix delta INDEPENDENT of target locality.
//
// The absolute numbers hold for the SunWorkstation3Mbit calibration; the
// structural claims (delta equality, orderings) are asserted for a second,
// deliberately different calibration too.
#include <gtest/gtest.h>

#include "ipc/calibration.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace v {
namespace {

using ipc::CalibrationParams;
using naming::wire::kOpenRead;
using sim::Co;
using sim::to_ms;
using test_clock = sim::SimTime;

/// Harness for the Open matrix: a workstation with a LOCAL file server and
/// prefix server, plus a REMOTE file server, both holding "f.dat".
struct OpenMatrix {
  double direct_local_ms = -1;
  double direct_remote_ms = -1;
  double prefix_local_ms = -1;
  double prefix_remote_ms = -1;

  [[nodiscard]] double delta_local() const {
    return prefix_local_ms - direct_local_ms;
  }
  [[nodiscard]] double delta_remote() const {
    return prefix_remote_ms - direct_remote_ms;
  }
};

OpenMatrix measure_open_matrix(CalibrationParams params) {
  ipc::Domain dom(params);
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");

  servers::FileServer local_fs("local", servers::DiskModel::kMemory,
                               /*register_service=*/false);
  servers::FileServer remote_fs("remote");
  local_fs.put_file("f.dat", "local bytes");
  remote_fs.put_file("f.dat", "remote bytes");
  servers::ContextPrefixServer prefixes;

  const auto local_pid =
      ws1.spawn("local-fs", [&](ipc::Process p) { return local_fs.run(p); });
  const auto remote_pid =
      fs1.spawn("remote-fs", [&](ipc::Process p) { return remote_fs.run(p); });
  prefixes.define("l", {.target = {local_pid, naming::kDefaultContext}});
  prefixes.define("r", {.target = {remote_pid, naming::kDefaultContext}});
  ws1.spawn("prefix-server",
            [&](ipc::Process p) { return prefixes.run(p); });

  OpenMatrix matrix;
  ws1.spawn("client", [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, naming::ContextPair{local_pid, naming::kDefaultContext});
    auto timed_open = [&](std::string_view name) -> Co<double> {
      const auto t0 = self.now();
      auto opened = co_await rt.open(name, kOpenRead);
      const double ms = to_ms(self.now() - t0);
      EXPECT_TRUE(opened.ok());
      if (opened.ok()) {
        svc::File f = opened.take();
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      co_return ms;
    };
    // Direct, current context local.
    rt.set_current({local_pid, naming::kDefaultContext});
    matrix.direct_local_ms = co_await timed_open("f.dat");
    // Direct, current context remote.
    rt.set_current({remote_pid, naming::kDefaultContext});
    matrix.direct_remote_ms = co_await timed_open("f.dat");
    // Via the (always-local) context prefix server.
    matrix.prefix_local_ms = co_await timed_open("[l]f.dat");
    matrix.prefix_remote_ms = co_await timed_open("[r]f.dat");
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  return matrix;
}

TEST(OpenTiming, MatrixMatchesPaperOnSunCalibration) {
  const auto m =
      measure_open_matrix(CalibrationParams::SunWorkstation3Mbit());
  // Paper: 1.21 / 3.70 / 5.14 / 7.69 ms.
  EXPECT_NEAR(m.direct_local_ms, 1.21, 0.10);
  EXPECT_NEAR(m.direct_remote_ms, 3.70, 0.15);
  EXPECT_NEAR(m.prefix_local_ms, 5.14, 0.15);
  EXPECT_NEAR(m.prefix_remote_ms, 7.69, 0.20);
  // Paper: the deltas are 3.94 and 3.99 ms ("identical within the limits of
  // experimental error"), reflecting prefix-server processing time.
  EXPECT_NEAR(m.delta_local(), 3.94, 0.15);
  EXPECT_NEAR(m.delta_remote(), 3.99, 0.15);
}

// Structural claims must hold for ANY calibration.
class OpenTimingStructure
    : public ::testing::TestWithParam<std::pair<const char*,
                                                CalibrationParams>> {};

TEST_P(OpenTimingStructure, PrefixDeltaIndependentOfTargetLocality) {
  const auto m = measure_open_matrix(GetParam().second);
  // The prefix server is always local, so its cost contribution is the same
  // whether the final server is local or remote.
  EXPECT_NEAR(m.delta_local(), m.delta_remote(), 0.05)
      << "calibration: " << GetParam().first;
  // Orderings the design implies.
  EXPECT_LT(m.direct_local_ms, m.direct_remote_ms);
  EXPECT_LT(m.direct_local_ms, m.prefix_local_ms);
  EXPECT_LT(m.direct_remote_ms, m.prefix_remote_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Calibrations, OpenTimingStructure,
    ::testing::Values(
        std::pair{"sun-3mbit", CalibrationParams::SunWorkstation3Mbit()},
        std::pair{"slow-net-fast-cpu",
                  CalibrationParams::SlowNetworkFastCpu()}));

TEST(StreamTiming, SequentialPageReadNearSeventeenMs) {
  // E3: with a 15 ms/page disk and one-page read-ahead, the steady-state
  // per-page time lands near the paper's 17.13 ms.
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer disk_fs("disk", servers::DiskModel::kDisk);
  disk_fs.put_file("seq.dat", std::string(32 * 512, 'd'));  // 32 pages
  const auto fs_pid =
      fs1.spawn("disk-fs", [&](ipc::Process p) { return disk_fs.run(p); });

  double per_page_ms = 0;
  ws1.spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fs_pid, naming::kDefaultContext}});
    auto opened = co_await rt.open("seq.dat", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    std::vector<std::byte> page(512);
    // Warm up the pipeline on the first pages, then measure steady state.
    for (std::uint32_t b = 0; b < 4; ++b) {
      (void)co_await f.read_block(b, page);
    }
    const auto t0 = self.now();
    constexpr int kPages = 24;
    for (std::uint32_t b = 4; b < 4 + kPages; ++b) {
      auto got = co_await f.read_block(b, page);
      EXPECT_TRUE(got.ok());
    }
    per_page_ms = to_ms(self.now() - t0) / kPages;
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  // Paper: 17.13 ms/page.  Shape: disk-bound (>=15) plus ~2 ms of
  // non-overlapped protocol time, well under a no-read-ahead design.
  EXPECT_GE(per_page_ms, 15.0);
  EXPECT_NEAR(per_page_ms, 17.13, 1.6);
}

TEST(BulkTiming, ProgramLoadNear338Ms) {
  // E2: 64 KB image pulled with one bulk MoveTo from a remote (memory-
  // buffered) file server.
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer fs("programs");  // kMemory: image in server buffers
  fs.put_file("bin/prog", std::string(64 * 1024, 'P'));
  const auto fs_pid =
      fs1.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  double transfer_ms = 0;
  std::size_t got_bytes = 0;
  ws1.spawn("client", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fs_pid, naming::kDefaultContext}});
    auto opened = co_await rt.open("bin/prog", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    const auto t0 = self.now();
    auto bytes = co_await f.read_bulk();
    transfer_ms = to_ms(self.now() - t0);
    EXPECT_TRUE(bytes.ok());
    got_bytes = bytes.ok() ? bytes.value().size() : 0;
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(got_bytes, 64u * 1024u);
  // Paper: 338 ms.  Our measurement includes the request/reply transaction
  // and instance re-query around the MoveTo, so allow one-sided slack.
  EXPECT_GT(transfer_ms, 320.0);
  EXPECT_LT(transfer_ms, 365.0);
}

}  // namespace
}  // namespace v
