// V-fault unit tests (DESIGN.md 4h): the deterministic FaultPlan itself,
// the kernel's reliable-transaction machinery under scripted loss /
// duplication / pause, and the naming-layer recovery paths (Rt retries and
// multicast rebinding after a crash + restart).
//
// The kernel-level tests need the fault subsystem compiled in and sit under
// #if V_FAULT_ENABLED; the recovery tests at the bottom drive crash/restart
// through the core Host API and run in every build flavour.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fault/fault.hpp"
#include "harness.hpp"
#include "msg/message.hpp"
#include "naming/protocol.hpp"
#include "servers/metrics_server.hpp"
#include "sim/time.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using test::kStorageGroup;
using test::VFixture;

#if V_FAULT_ENABLED

// --- the plan itself --------------------------------------------------------

TEST(FaultPlan, SameSeedSameVerdicts) {
  fault::LinkFaults lossy;
  lossy.drop = 0.3;
  lossy.duplicate = 0.3;
  lossy.reorder = 0.3;
  fault::FaultPlan a(42);
  fault::FaultPlan b(42);
  a.set_default_link(lossy);
  b.set_default_link(lossy);
  for (int i = 0; i < 1000; ++i) {
    const auto da = a.on_packet(1, 2);
    const auto db = b.on_packet(1, 2);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    EXPECT_EQ(da.dup_delay, db.dup_delay);
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().duplicates, b.stats().duplicates);
  EXPECT_EQ(a.stats().reorders, b.stats().reorders);
  EXPECT_GT(a.stats().drops, 0u);
}

TEST(FaultPlan, FaultDelaysAreNeverNegative) {
  // The contract behind the negative-delay-clamp assertion: whatever the
  // plan decides, it never asks the event loop to schedule into the past.
  fault::LinkFaults jittery;
  jittery.duplicate = 0.5;
  jittery.reorder = 0.5;
  fault::FaultPlan plan(7);
  plan.set_default_link(jittery);
  for (int i = 0; i < 2000; ++i) {
    const auto d = plan.on_packet(3, 9);
    EXPECT_GE(d.extra_delay, 0);
    EXPECT_GE(d.dup_delay, 0);
  }
}

TEST(FaultPlan, PerLinkOverridesBeatTheDefault) {
  fault::FaultPlan plan(1);
  fault::LinkFaults certain;
  certain.drop = 1.0;
  plan.set_link(1, 2, certain);  // only 1 -> 2 loses packets
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(plan.on_packet(1, 2).drop);
    EXPECT_FALSE(plan.on_packet(2, 1).drop);
  }
}

// --- kernel reliable transactions -------------------------------------------

/// A server whose replies echo a per-request execution count: processing
/// the same request twice is visible to the client as a skipped number.
Co<void> counting_server(ipc::Process self) {
  std::uint32_t served = 0;
  for (;;) {
    auto env = co_await self.receive();
    msg::Message reply = env.request;
    reply.set_reply_code(ReplyCode::kOk);
    reply.set_u32(4, ++served);
    self.reply(reply, env.sender);
  }
}

TEST(FaultIpc, RetransmissionMasksHeavyLoss) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId server = ws2.spawn("server", counting_server);

  fault::FaultPlan plan(0xFA001);
  fault::LinkFaults lossy;
  lossy.drop = 0.2;
  plan.set_default_link(lossy);
  dom.install_faults(plan);

  int delivered_ok = 0;
  test::run_client(dom, ws1, [&, server](ipc::Process self) -> Co<void> {
    std::uint32_t last = 0;
    for (int i = 0; i < 50; ++i) {
      // A lost transaction (budget exhausted) is an honest kNoReply and may
      // simply be retried at this layer; what must NEVER happen is a wrong
      // or out-of-order execution count.
      for (;;) {
        msg::Message req;
        req.set_code(0x0100);
        const auto reply = co_await self.send(req, server);
        if (reply.reply_code() == ReplyCode::kNoReply) continue;
        EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
        if (reply.reply_code() != ReplyCode::kOk) co_return;
        const std::uint32_t count = reply.u32(4);
        EXPECT_GT(count, last);
        last = count;
        ++delivered_ok;
        break;
      }
    }
  });
  EXPECT_EQ(delivered_ok, 50);
  EXPECT_GT(plan.stats().drops, 0u);
  EXPECT_GT(plan.stats().retransmits, 0u);
  EXPECT_EQ(dom.lint().counters().duplicate_replies, 0u)
      << dom.lint().first_dump();
}

TEST(FaultIpc, AtMostOnceUnderCertainDuplication) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId server = ws2.spawn("server", counting_server);

  fault::FaultPlan plan(0xFA002);
  fault::LinkFaults duping;
  duping.duplicate = 1.0;  // every packet crosses the wire twice
  plan.set_default_link(duping);
  dom.install_faults(plan);

  test::run_client(dom, ws1, [&, server](ipc::Process self) -> Co<void> {
    for (std::uint32_t i = 1; i <= 20; ++i) {
      msg::Message req;
      req.set_code(0x0100);
      const auto reply = co_await self.send(req, server);
      EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
      if (reply.reply_code() != ReplyCode::kOk) co_return;
      // Exactly-one execution per send: the count advances by one even
      // though every request arrived (at least) twice.
      EXPECT_EQ(reply.u32(4), i);
    }
  });
  EXPECT_GT(plan.stats().duplicates, 0u);
  EXPECT_GT(plan.stats().dup_requests_suppressed +
                plan.stats().cached_replies_replayed,
            0u);
  EXPECT_EQ(dom.lint().counters().duplicate_replies, 0u)
      << dom.lint().first_dump();
}

TEST(FaultIpc, BudgetExhaustionSurfacesNoReply) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId server = ws2.spawn("server", counting_server);

  fault::FaultPlan plan(0xFA003);
  fault::LinkFaults dead_wire;
  dead_wire.drop = 1.0;
  plan.set_link(ws1.id(), ws2.id(), dead_wire);
  fault::RetryPolicy quick;
  quick.initial_timeout = 4 * kMillisecond;
  quick.backoff = 2.0;
  quick.max_timeout = 16 * kMillisecond;
  quick.budget = 3;
  plan.set_retry(quick);
  dom.install_faults(plan);

  sim::SimDuration elapsed = -1;
  test::run_client(dom, ws1, [&, server](ipc::Process self) -> Co<void> {
    const auto t0 = self.now();
    const auto reply = co_await self.send(msg::Message{}, server);
    elapsed = self.now() - t0;
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
  // 3 retransmissions at 4, 12, 28 ms, defeat admitted at 44 ms.
  EXPECT_EQ(plan.stats().retransmits, 3u);
  EXPECT_EQ(plan.stats().budget_exhausted, 1u);
  EXPECT_EQ(elapsed, 44 * kMillisecond);
}

TEST(FaultIpc, PausedHostDelaysButNeverLoses) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId server = ws2.spawn("server", counting_server);

  fault::FaultPlan plan(0xFA004);
  plan.pause_at(5 * kMillisecond, ws2.id());
  plan.resume_at(60 * kMillisecond, ws2.id());
  dom.install_faults(plan);

  sim::SimTime replied_at = -1;
  test::run_client(dom, ws1, [&, server](ipc::Process self) -> Co<void> {
    co_await self.delay(10 * kMillisecond);  // send INTO the pause window
    const auto reply = co_await self.send(msg::Message{}, server);
    replied_at = self.now();
    EXPECT_EQ(reply.reply_code(), ReplyCode::kOk);
    EXPECT_EQ(reply.u32(4), 1u);  // retransmits into the pause: still once
  });
  EXPECT_EQ(plan.stats().pauses, 1u);
  EXPECT_EQ(plan.stats().resumes, 1u);
  EXPECT_GE(replied_at, 60 * kMillisecond);
  EXPECT_EQ(dom.lint().counters().duplicate_replies, 0u)
      << dom.lint().first_dump();
}

TEST(FaultIpc, ScheduledCrashAndRestartFireOnce) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId victim = ws2.spawn("victim", counting_server);

  bool respawned = false;
  fault::FaultPlan plan(0xFA005);
  plan.crash_at(5 * kMillisecond, ws2.id());
  plan.restart_at(10 * kMillisecond, ws2.id(),
                  [&respawned] { respawned = true; });
  dom.install_faults(plan);

  test::run_client(dom, ws1, [&, victim](ipc::Process self) -> Co<void> {
    co_await self.delay(20 * kMillisecond);
    // The old incarnation's pid is gone for good; pids are never reused.
    const auto reply = co_await self.send(msg::Message{}, victim);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kNoReply);
  });
  EXPECT_EQ(plan.stats().crashes, 1u);
  EXPECT_EQ(plan.stats().restarts, 1u);
  EXPECT_TRUE(respawned);
  EXPECT_TRUE(ws2.alive());
}

#if V_TRACE_ENABLED
TEST(FaultMetrics, StatsMirroredIntoRegistry) {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const ipc::ProcessId server = ws2.spawn("server", counting_server);

  fault::FaultPlan plan(0xFA006);
  fault::LinkFaults lossy;
  lossy.drop = 0.25;
  plan.set_default_link(lossy);
  dom.install_faults(plan);

  test::run_client(dom, ws1, [&, server](ipc::Process self) -> Co<void> {
    for (int i = 0; i < 20; ++i) {
      (void)co_await self.send(msg::Message{}, server);
    }
  });
  const auto drops = dom.metrics().value_text("fault", "drops");
  ASSERT_TRUE(drops.has_value());
  EXPECT_EQ(std::strtoull(drops->c_str(), nullptr, 10), plan.stats().drops);
  const auto retr = dom.metrics().value_text("fault", "retransmits");
  ASSERT_TRUE(retr.has_value());
  EXPECT_EQ(std::strtoull(retr->c_str(), nullptr, 10),
            plan.stats().retransmits);
}
#endif  // V_TRACE_ENABLED

// --- satellite: negative-delay clamps observable via [metrics] --------------

TEST(FaultMetrics, NegativeDelayClampsStayZeroUnderJitterAndAreWireReadable) {
  VFixture fx;
  fault::FaultPlan plan(0xFA007);
  fault::LinkFaults jittery;
  jittery.duplicate = 0.4;
  jittery.reorder = 0.4;
  plan.set_default_link(jittery);
  fx.dom.install_faults(plan);

  servers::MetricsServer metrics_srv;
  const auto metrics_pid = fx.ws1.spawn(
      "metrics", [&](ipc::Process p) { return metrics_srv.run(p); });

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
      EXPECT_TRUE(opened.ok());
      if (!opened.ok()) co_return;
      svc::File f = opened.take();
      (void)co_await f.close();
    }
#if V_TRACE_ENABLED
    // The clamp counter is part of the [metrics] context like any other
    // registry value: read it over the wire and insist the fault jitter
    // never scheduled into the past.
    rt.set_current({metrics_pid, naming::kDefaultContext});
    auto metric = co_await rt.open("loop/negative_delay_clamps", kOpenRead);
    EXPECT_TRUE(metric.ok());
    if (!metric.ok()) co_return;
    svc::File f = metric.take();
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    EXPECT_EQ(std::string(
                  reinterpret_cast<const char*>(bytes.value().data()),
                  bytes.value().size()),
              "0\n");
    (void)co_await f.close();
#else
    (void)metrics_pid;
#endif
  });
  EXPECT_GT(plan.stats().duplicates + plan.stats().reorders, 0u);
  EXPECT_EQ(fx.dom.loop().stats().negative_delay_clamps, 0u);
}

#endif  // V_FAULT_ENABLED

// --- naming-layer recovery (core crash API; every build flavour) ------------

TEST(RtRecovery, NoreplyRetryCountIsConfigurable) {
  // Same dead-forward scenario at two retry settings: the message traffic
  // must scale as (1 + retries) full resolutions.
  auto resolutions_traffic = [](std::size_t retries) -> std::uint64_t {
    VFixture fx;
    fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs2.crash(); });
    std::uint64_t delta = 0;
    fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
      co_await self.delay(10 * kMillisecond);
      svc::RecoveryPolicy policy;
      policy.noreply_retries = retries;
      rt.set_recovery(policy);
      const std::uint64_t before = fx.dom.stats().messages_sent;
      auto opened = co_await rt.open("usr/mann/proj/readme", kOpenRead);
      EXPECT_EQ(opened.code(), ReplyCode::kNoReply);
      delta = fx.dom.stats().messages_sent - before;
    });
    return delta;
  };
  const std::uint64_t once = resolutions_traffic(0);
  ASSERT_GT(once, 0u);
  // retries=2 -> exactly three times the single-attempt traffic.
  EXPECT_EQ(resolutions_traffic(2), 3 * once);
}

TEST(RtRecovery, MulticastRebindReachesRestartedServer) {
  VFixture fx;
  const ipc::ProcessId old_alpha = fx.alpha_pid;
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs1.crash(); });
  fx.dom.loop().schedule_at(15 * kMillisecond, [&fx] { fx.respawn_alpha(); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(30 * kMillisecond);
    EXPECT_NE(fx.alpha_pid, old_alpha);  // fresh incarnation, fresh pid
    // The current context still names the DEAD incarnation; retries fail
    // the same way, then the multicast probe finds the new one.
    svc::RecoveryPolicy policy;
    policy.noreply_retries = 1;
    policy.rebind_group = kStorageGroup;
    rt.set_recovery(policy);
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok()) << to_string(opened.code());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(f.server(), fx.alpha_pid);
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    EXPECT_EQ(std::string(
                  reinterpret_cast<const char*>(bytes.value().data()),
                  bytes.value().size()),
              "Distributed name interpretation.");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(RtRecovery, RebindFeedsTheNameCache) {
  VFixture fx;
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs1.crash(); });
  fx.dom.loop().schedule_at(15 * kMillisecond, [&fx] { fx.respawn_alpha(); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(30 * kMillisecond);
    svc::NameCache cache;
    rt.set_cache(&cache);
    svc::RecoveryPolicy policy;
    policy.noreply_retries = 0;
    policy.rebind_group = kStorageGroup;
    rt.set_recovery(policy);
    auto first = co_await rt.open("usr/mann/paper.mss", kOpenRead);
    EXPECT_TRUE(first.ok()) << to_string(first.code());
    if (!first.ok()) co_return;
    svc::File f1 = first.take();
    EXPECT_EQ(co_await f1.close(), ReplyCode::kOk);
    // The rebind fed the repaired binding: the next open one-hops straight
    // to the new incarnation.
    EXPECT_EQ(cache.size(), 1u);
    auto second = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(second.ok());
    if (!second.ok()) co_return;
    svc::File f2 = second.take();
    EXPECT_EQ(f2.server(), fx.alpha_pid);
    EXPECT_EQ(co_await f2.close(), ReplyCode::kOk);
    EXPECT_GE(cache.hits(), 1u);
    rt.set_cache(nullptr);
  });
}

TEST(RtRecovery, PrefixServerProbesGroupForDeadOrdinaryEntry) {
  // No client-side recovery configured at all: the [home] prefix pins the
  // DEAD incarnation's pid, and the prefix server itself repairs the route
  // by multicasting a recovery probe to the storage group.
  VFixture fx;
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs1.crash(); });
  fx.dom.loop().schedule_at(15 * kMillisecond, [&fx] { fx.respawn_alpha(); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(30 * kMillisecond);
    auto opened = co_await rt.open("[home]paper.mss", kOpenRead);
    EXPECT_TRUE(opened.ok()) << to_string(opened.code());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    EXPECT_EQ(f.server(), fx.alpha_pid);
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    EXPECT_EQ(std::string(
                  reinterpret_cast<const char*>(bytes.value().data()),
                  bytes.value().size()),
              "ICDCS 1984.");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

TEST(RtRecovery, RestartedIncarnationRaisesItsGenerationFloor) {
  // The lint's incarnation invariant is what proves PR 4's validated cache
  // cannot be fooled by a restart: every re-registration under a label must
  // raise its generation floor.  check_clean() (inside run_client) asserts
  // stale_incarnations == 0 for the well-behaved respawn.
  VFixture fx;
  fx.dom.loop().schedule_at(5 * kMillisecond, [&fx] { fx.fs1.crash(); });
  fx.dom.loop().schedule_at(15 * kMillisecond, [&fx] { fx.respawn_alpha(); });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(30 * kMillisecond);
    svc::RecoveryPolicy policy;
    policy.rebind_group = kStorageGroup;
    rt.set_recovery(policy);
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  EXPECT_EQ(fx.dom.lint().counters().stale_incarnations, 0u)
      << fx.dom.lint().first_dump();
}

}  // namespace
}  // namespace v
