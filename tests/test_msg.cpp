// Tests for the V message standards: fixed 32-byte records, field packing,
// the CSname standard header, and request-code classification.
#include <gtest/gtest.h>

#include "common/pack.hpp"
#include "msg/csname.hpp"
#include "msg/message.hpp"
#include "msg/request_codes.hpp"

namespace v::msg {
namespace {

TEST(Pack, U16RoundTripsAtAnyOffset) {
  std::array<std::byte, 8> buf{};
  for (std::size_t off = 0; off <= 6; ++off) {
    put_u16(buf, off, 0xBEEF);
    EXPECT_EQ(get_u16(buf, off), 0xBEEF);
  }
}

TEST(Pack, U32IsLittleEndian) {
  std::array<std::byte, 4> buf{};
  put_u32(buf, 0, 0x01020304);
  EXPECT_EQ(static_cast<unsigned>(buf[0]), 0x04u);
  EXPECT_EQ(static_cast<unsigned>(buf[3]), 0x01u);
  EXPECT_EQ(get_u32(buf, 0), 0x01020304u);
}

TEST(Message, IsExactly32Bytes) {
  EXPECT_EQ(Message::kSize, 32u);
  Message m;
  EXPECT_EQ(m.raw().size(), 32u);
}

TEST(Message, DefaultIsZeroFilled) {
  Message m;
  for (std::size_t i = 0; i < Message::kSize; i += 2) {
    EXPECT_EQ(m.u16(i), 0u);
  }
}

TEST(Message, CodeIsFirstWord) {
  Message m;
  m.set_code(0x0101);
  EXPECT_EQ(m.u16(0), 0x0101);
  EXPECT_EQ(m.code(), 0x0101);
}

TEST(Message, ReplyCodeView) {
  const Message m = make_reply(ReplyCode::kNotFound);
  EXPECT_EQ(m.reply_code(), ReplyCode::kNotFound);
  EXPECT_EQ(m.code(), static_cast<std::uint16_t>(ReplyCode::kNotFound));
}

TEST(Message, EqualityComparesAllBytes) {
  Message a, b;
  EXPECT_EQ(a, b);
  a.set_u16(30, 1);
  EXPECT_FALSE(a == b);
}

TEST(Csname, StandardHeaderFieldsDoNotOverlap) {
  Message m = cs::make_request(RequestCode::kQueryName, 0xAABBCCDD, 321, 7);
  EXPECT_EQ(m.code(), RequestCode::kQueryName);
  EXPECT_EQ(cs::name_index(m), 0);
  EXPECT_EQ(cs::name_length(m), 321);
  EXPECT_EQ(cs::mode(m), 7);
  EXPECT_EQ(cs::context_id(m), 0xAABBCCDDu);
  cs::set_name_index(m, 17);
  EXPECT_EQ(cs::name_index(m), 17);
  EXPECT_EQ(cs::name_length(m), 321);   // neighbours untouched
  EXPECT_EQ(cs::context_id(m), 0xAABBCCDDu);
}

TEST(RequestCodes, CsnameClassification) {
  EXPECT_TRUE(is_csname_request(RequestCode::kMapContextName));
  EXPECT_TRUE(is_csname_request(RequestCode::kQueryName));
  EXPECT_TRUE(is_csname_request(RequestCode::kCreateInstance));
  EXPECT_TRUE(is_csname_request(RequestCode::kAddContextName));
  EXPECT_FALSE(is_csname_request(RequestCode::kReadInstance));
  EXPECT_FALSE(is_csname_request(RequestCode::kGetTime));
  EXPECT_FALSE(is_csname_request(RequestCode::kGetContextName));
  // Server-specific codes: the kCsnameBit convention.
  EXPECT_TRUE(is_csname_request(0x0500 | kCsnameBit));
  EXPECT_FALSE(is_csname_request(0x0600));
}

}  // namespace
}  // namespace v::msg
