// The sharded prefix-server fabric (DESIGN.md 4m, PROTOCOL.md 14):
//
//   - ShardMap wire format: round trip, torn/truncated/garbage rejection,
//     self-delimiting parse, range routing;
//   - live fabric: clients multicast-fetch the map and route opens one-hop
//     to the owning shard, verified against the content oracle;
//   - validated caching: a gated mutation bumps the shard's generation, so
//     a client holding yesterday's map is REFUSED (kStaleContext), refetches
//     and succeeds — never answered wrongly;
//   - churn: crash a shard mid-run, hand its range to a successor, restart
//     it, hand the range back.  Clients keep opening throughout; the oracle
//     must count zero wrong replies and the map version must advance.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/reply_codes.hpp"
#include "naming/protocol.hpp"
#include "naming/shard_map.hpp"
#include "servers/file_server.hpp"
#include "servers/shard_fabric.hpp"
#include "svc/file.hpp"
#include "svc/runtime.hpp"
#include "svc/shard_router.hpp"
#include "wload/forest.hpp"

namespace v {
namespace {

using namespace sim;
using naming::ShardMap;

// --- wire format -----------------------------------------------------------------

ShardMap sample_map() {
  ShardMap m;
  m.version = 7;
  m.shards = {
      {.lo = "", .server_pid = 0x0101, .generation = 3},
      {.lo = "home", .server_pid = 0x0202, .generation = 0},
      {.lo = "usr", .server_pid = 0x0303, .generation = 41},
  };
  return m;
}

TEST(ShardMapWire, RoundTrip) {
  const ShardMap m = sample_map();
  ASSERT_TRUE(m.well_formed());
  std::vector<std::byte> bytes;
  m.serialize(bytes);
  ASSERT_GT(bytes.size(), 0u);
  ASSERT_LE(bytes.size(), ShardMap::kMaxBytes);

  ShardMap out;
  ASSERT_TRUE(ShardMap::parse(bytes, out));
  EXPECT_EQ(out.version, m.version);
  ASSERT_EQ(out.shards.size(), m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(out.shards[i].lo, m.shards[i].lo);
    EXPECT_EQ(out.shards[i].server_pid, m.shards[i].server_pid);
    EXPECT_EQ(out.shards[i].generation, m.shards[i].generation);
  }
}

TEST(ShardMapWire, ParseIsSelfDelimiting) {
  // A 4 KiB MoveTo buffer arrives with the map at the front and stale
  // leftovers behind it; parse must stop at the encoded length.
  const ShardMap m = sample_map();
  std::vector<std::byte> bytes;
  m.serialize(bytes);
  bytes.resize(ShardMap::kMaxBytes, std::byte{0xEE});  // stale tail
  ShardMap out;
  ASSERT_TRUE(ShardMap::parse(bytes, out));
  EXPECT_EQ(out.shards.size(), 3u);
}

TEST(ShardMapWire, RejectsGarbageAndTruncation) {
  ShardMap out;
  // Wrong magic.
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_FALSE(ShardMap::parse(junk, out));
  // Truncated mid-entry.
  const ShardMap m = sample_map();
  std::vector<std::byte> bytes;
  m.serialize(bytes);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(ShardMap::parse(bytes, out));
  // Not well-formed on the wire: first range must be the "" anchor.
  ShardMap gap = sample_map();
  gap.shards[0].lo = "a";
  ASSERT_FALSE(gap.well_formed());
  std::vector<std::byte> gap_bytes;
  gap.serialize(gap_bytes);
  EXPECT_FALSE(ShardMap::parse(gap_bytes, out));
  // A rejected parse leaves `out` untouched.
  EXPECT_TRUE(out.empty());
}

TEST(ShardMapWire, RoutesByRange) {
  const ShardMap m = sample_map();
  EXPECT_EQ(m.route("alpha"), 0u);  // "" <= alpha < home
  EXPECT_EQ(m.route("home"), 1u);   // lower bound inclusive
  EXPECT_EQ(m.route("print"), 1u);
  EXPECT_EQ(m.route("usr"), 2u);
  EXPECT_EQ(m.route("zzz"), 2u);    // last range is open-ended
}

// --- live fabric -----------------------------------------------------------------

/// Forest + file-server pool + fabric, ready for clients.
struct FabricFixture {
  ipc::Domain dom;
  wload::Forest forest;
  std::vector<std::unique_ptr<servers::FileServer>> fs;
  servers::ShardFabric fabric;

  explicit FabricFixture(std::size_t shards, wload::ForestSpec spec)
      : forest(spec), fabric(dom, {.shards = shards}) {
    std::vector<servers::FileServer*> ptrs;
    std::vector<ipc::ProcessId> pids;
    for (int i = 0; i < 2; ++i) {
      ipc::Host& host = dom.add_host("fs" + std::to_string(i));
      fs.push_back(std::make_unique<servers::FileServer>(
          "fs" + std::to_string(i), servers::DiskModel::kMemory,
          /*register_service=*/false));
      servers::FileServer* srv = fs.back().get();
      ptrs.push_back(srv);
      pids.push_back(
          host.spawn("fs", [srv](ipc::Process p) { return srv->run(p); }));
    }
    fabric.install(forest.install(ptrs, pids));
  }

  static wload::ForestSpec small_spec() {
    wload::ForestSpec spec;
    spec.prefixes = 8;
    spec.dirs_per_prefix = 2;
    spec.files_per_dir = 2;
    return spec;
  }

  /// Open `name` through `router` and verify the bytes against the oracle.
  /// Returns false on any non-ok step; bumps `wrong` on an oracle mismatch.
  static sim::Co<bool> open_verify(svc::ShardRouter& router,
                                   const std::string& name, int& wrong) {
    auto opened = co_await router.open(name, naming::wire::kOpenRead);
    if (!opened.ok()) co_return false;
    svc::File file = opened.take().file;
    auto bytes = co_await file.read_all();
    bool ok = bytes.ok();
    if (ok) {
      const std::string expect = wload::Forest::content_for(name);
      const std::string got(reinterpret_cast<const char*>(bytes.value().data()),
                            bytes.value().size());
      if (got != expect) {
        ++wrong;
        ok = false;
      }
    }
    (void)co_await file.close();
    co_return ok;
  }
};

TEST(ShardFabric, FetchRouteAndVerifyEveryFile) {
  FabricFixture fx(4, FabricFixture::small_spec());
  ASSERT_EQ(fx.fabric.shard_count(), 4u);

  int oks = 0, wrong = 0;
  svc::ShardRouter::Stats stats;
  ipc::Host& ws = fx.dom.add_host("ws");
  ws.spawn("client", [&](ipc::Process self) -> sim::Co<void> {
    svc::Rt rt(self, svc::NameEnv{});
    svc::ShardRouter router(rt, {.fabric_group = fx.fabric.group()});
    for (std::size_t f = 0; f < fx.forest.file_count(); ++f) {
      if (co_await FabricFixture::open_verify(router, fx.forest.name(f),
                                              wrong)) {
        ++oks;
      }
    }
    // The fetched map mirrors the fabric's authoritative snapshot.
    EXPECT_EQ(router.map().version, fx.fabric.map_version());
    EXPECT_EQ(router.map().shards.size(), 4u);
    stats = router.stats();
  });
  fx.dom.run();

  EXPECT_EQ(fx.dom.process_failures(), 0u) << fx.dom.first_failure();
  EXPECT_EQ(oks, static_cast<int>(fx.forest.file_count()));
  EXPECT_EQ(wrong, 0);
  // One multicast fetch amortizes over every open; no repair cycles on a
  // quiet fabric.
  EXPECT_EQ(stats.map_fetches, 1u);
  EXPECT_EQ(stats.stale_retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ShardFabric, StaleMapIsRefusedThenRepaired) {
  FabricFixture fx(2, FabricFixture::small_spec());
  const std::string name = fx.forest.name(0);  // lives on shard 0

  int wrong = 0;
  svc::ShardRouter::Stats stats;
  ipc::Host& ws = fx.dom.add_host("ws");
  ws.spawn("client", [&](ipc::Process self) -> sim::Co<void> {
    svc::Rt rt(self, svc::NameEnv{});
    svc::ShardRouter router(rt, {.fabric_group = fx.fabric.group()});
    // Warm the map.
    EXPECT_TRUE(co_await FabricFixture::open_verify(router, name, wrong));

    // A gated mutation on shard 0 bumps its default-context generation;
    // the router's cached map now quotes yesterday's number.
    svc::Rt admin(self, svc::NameEnv{
        .prefix_server = fx.fabric.pid(0),
        .current = {fx.fabric.pid(0), naming::kDefaultContext}});
    const ReplyCode rc = co_await admin.add_prefix(
        "aaa-fresh", {fx.fabric.pid(0), naming::kDefaultContext});
    EXPECT_EQ(rc, ReplyCode::kOk);

    // The stale map must be refused and repaired, not wrongly answered.
    EXPECT_TRUE(co_await FabricFixture::open_verify(router, name, wrong));
    stats = router.stats();
  });
  fx.dom.run();

  EXPECT_EQ(fx.dom.process_failures(), 0u) << fx.dom.first_failure();
  EXPECT_EQ(wrong, 0);
  EXPECT_GE(stats.stale_retries, 1u);
  EXPECT_EQ(stats.map_fetches, 2u);  // warm fetch + repair refetch
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ShardFabric, CrashHandoffRestartHandbackZeroWrong) {
  FabricFixture fx(4, FabricFixture::small_spec());
  const std::uint32_t v0 = fx.fabric.map_version();

  // Kill shard 1 at 400 ms, bring it back at 900 ms.  The fabric hands its
  // range to a successor, then hands it back — all through the gated
  // protocol, all while the client below keeps opening shard 1's files.
  fx.dom.loop().schedule_at(400 * kMillisecond, [&fx] {
    fx.fabric.host(1).crash();
    fx.fabric.on_crash(1);
  });
  fx.dom.loop().schedule_at(900 * kMillisecond, [&fx] {
    fx.fabric.on_restart(1);
  });

  int oks = 0, wrong = 0, hard_failures = 0;
  svc::ShardRouter::Stats stats;
  ipc::Host& ws = fx.dom.add_host("ws");
  ws.spawn("client", [&](ipc::Process self) -> sim::Co<void> {
    svc::Rt rt(self, svc::NameEnv{});
    svc::ShardRouter router(rt, {.fabric_group = fx.fabric.group()});
    // Round-robin over every file (all four shards, crashed one included)
    // for the whole churn window and past the handback.
    std::size_t f = 0;
    while (self.now() < 1600 * kMillisecond) {
      if (co_await FabricFixture::open_verify(router, fx.forest.name(f),
                                              wrong)) {
        ++oks;
      } else {
        ++hard_failures;
      }
      f = (f + 1) % fx.forest.file_count();
      co_await self.delay(10 * kMillisecond);
    }
    stats = router.stats();
  });
  fx.dom.run();

  EXPECT_EQ(fx.dom.process_failures(), 0u) << fx.dom.first_failure();
  // THE gate: a reply may be delayed or refused, never wrong.
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(hard_failures, 0);
  EXPECT_GT(oks, 50);
  // The churn actually happened and the client actually repaired through it.
  EXPECT_EQ(fx.fabric.churn_stats().handoffs, 1u);
  EXPECT_EQ(fx.fabric.churn_stats().handbacks, 1u);
  EXPECT_GE(fx.fabric.map_version(), v0 + 2);  // handoff + restart republish
  EXPECT_GE(stats.map_fetches, 3u);
  EXPECT_GT(stats.noreply_retries + stats.stale_retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ShardFabric, SingleShardDegeneratesToOneTeam) {
  // shards=1 is the PR 5 single-team topology behind the fetch protocol:
  // everything routes to shard 0 and the map holds exactly the "" anchor.
  FabricFixture fx(1, FabricFixture::small_spec());
  int oks = 0, wrong = 0;
  ipc::Host& ws = fx.dom.add_host("ws");
  ws.spawn("client", [&](ipc::Process self) -> sim::Co<void> {
    svc::Rt rt(self, svc::NameEnv{});
    svc::ShardRouter router(rt, {.fabric_group = fx.fabric.group()});
    for (std::size_t f = 0; f < fx.forest.file_count(); ++f) {
      if (co_await FabricFixture::open_verify(router, fx.forest.name(f),
                                              wrong)) {
        ++oks;
      }
    }
    EXPECT_EQ(router.map().shards.size(), 1u);
    EXPECT_EQ(router.map().shards[0].lo, "");
  });
  fx.dom.run();
  EXPECT_EQ(fx.dom.process_failures(), 0u) << fx.dom.first_failure();
  EXPECT_EQ(oks, static_cast<int>(fx.forest.file_count()));
  EXPECT_EQ(wrong, 0);
}

}  // namespace
}  // namespace v
