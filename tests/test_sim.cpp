// Unit tests for the discrete-event engine and coroutine task types.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace v::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
  EXPECT_EQ(loop.events_executed(), 3u);
}

TEST(EventLoop, EqualTimesFireInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  SimTime seen = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(50, [&] { seen = loop.now(); });  // in the past
  });
  loop.run_until_idle();
  EXPECT_EQ(seen, 100);
}

TEST(EventLoop, PastSchedulingPreservesFifoOrder) {
  // Regression: events scheduled in the past are clamped to now() and must
  // fire in SCHEDULING order relative to each other and to events already
  // scheduled at now() — the clamp must not reorder them.  The worker-team
  // run loop relies on this for deterministic wakeup/grant ordering.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(100, [&] {
    loop.schedule_at(100, [&] { order.push_back(0); });  // exactly now
    loop.schedule_at(10, [&] { order.push_back(1); });   // past -> clamped
    loop.schedule_at(0, [&] { order.push_back(2); });    // further past
    loop.schedule_at(100, [&] { order.push_back(3); });
    loop.schedule_at(50, [&] { order.push_back(4); });   // past again
  });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.schedule_after(10, tick);
  };
  loop.schedule_after(10, tick);
  loop.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(20, [&] { ++fired; });
  loop.schedule_at(30, [&] { ++fired; });
  loop.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  loop.run_until_idle();
  EXPECT_EQ(fired, 3);
}

TEST(Time, Conversions) {
  EXPECT_EQ(to_ms(2 * kMillisecond + 560 * kMicrosecond), 2.56);
  EXPECT_EQ(from_ms(2.56), 2 * kMillisecond + 560 * kMicrosecond);
}

// --- coroutines -----------------------------------------------------------

Co<int> forty_two() { co_return 42; }

Co<int> adds(int a) {
  int x = co_await forty_two();
  co_return x + a;
}

TEST(Task, NestedCoAwaitPropagatesValues) {
  EventLoop loop;
  int result = 0;
  Fiber fiber([](int* out) -> Co<void> { *out = co_await adds(8); }(&result));
  fiber.start();
  loop.run_until_idle();
  EXPECT_TRUE(fiber.done());
  EXPECT_EQ(result, 50);
}

Co<void> throws_logic_error() {
  co_await forty_two();
  throw std::logic_error("boom");
}

TEST(Task, ExceptionsPropagateToFiber) {
  EventLoop loop;
  std::string message;
  Fiber fiber(throws_logic_error(), [&](std::exception_ptr e) {
    try {
      std::rethrow_exception(e);
    } catch (const std::logic_error& ex) {
      message = ex.what();
    }
  });
  fiber.start();
  loop.run_until_idle();
  EXPECT_TRUE(fiber.done());
  EXPECT_EQ(message, "boom");
  EXPECT_NE(fiber.error(), nullptr);
}

TEST(Task, DelayAdvancesSimTime) {
  EventLoop loop;
  SimTime finished = -1;
  Fiber fiber([](EventLoop* lp, SimTime* out) -> Co<void> {
    co_await DelayAwaiter(*lp, 5 * kMillisecond, nullptr);
    co_await DelayAwaiter(*lp, 7 * kMillisecond, nullptr);
    *out = lp->now();
  }(&loop, &finished));
  fiber.start();
  loop.run_until_idle();
  EXPECT_EQ(finished, 12 * kMillisecond);
}

// Proper kill test: the delay awaitable gets the fiber state.
TEST(Task, KillUnwindsAndRunsDestructors) {
  EventLoop loop;
  bool after = false;
  bool cleanup = false;
  struct Guard {
    bool* flag;
    explicit Guard(bool* f) : flag(f) {}
    ~Guard() { *flag = true; }
  };
  auto body = [](EventLoop* lp, FiberState* st, bool* a,
                 bool* c) -> Co<void> {
    Guard g(c);
    co_await DelayAwaiter(*lp, kMillisecond, st);
    *a = true;
  };
  // Two-phase construction: make the fiber, then hand its state in via a
  // wrapper coroutine that awaits the real body.
  std::shared_ptr<FiberState> state;
  auto outer = [&](EventLoop* lp, bool* a, bool* c) -> Co<void> {
    co_await body(lp, state.get(), a, c);
  };
  Fiber fiber(outer(&loop, &after, &cleanup));
  state = fiber.state();
  fiber.start();
  fiber.kill();  // pending delay resume will throw FiberKilled
  loop.run_until_idle();
  EXPECT_TRUE(fiber.done());
  EXPECT_FALSE(after);
  EXPECT_TRUE(cleanup);          // destructors ran during unwind
  EXPECT_EQ(fiber.error(), nullptr);  // kill is not an error
}

TEST(Task, FiberDestructionReleasesSuspendedChain) {
  EventLoop loop;
  // Destroy a fiber that is parked on a delay which never fires; ASAN-clean
  // destruction of the suspended frame chain is the assertion here.
  {
    Fiber fiber([](EventLoop* lp) -> Co<void> {
      co_await DelayAwaiter(*lp, kSecond, nullptr);
    }(&loop));
    fiber.start();
  }
  SUCCEED();
}

TEST(Waker, WakeResumesParkedCoroutine) {
  EventLoop loop;
  Waker waker;
  bool resumed = false;
  Fiber fiber([](Waker* w, bool* r) -> Co<void> {
    co_await ParkAwaiter(*w, nullptr);
    *r = true;
  }(&waker, &resumed));
  fiber.start();
  loop.run_until_idle();
  EXPECT_FALSE(resumed);  // parked, nothing woke it
  ASSERT_TRUE(waker.armed());
  waker.wake_after(loop, 3 * kMillisecond);
  loop.run_until_idle();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(loop.now(), 3 * kMillisecond);
}

// --- stats / rng ----------------------------------------------------------

TEST(Stats, SummaryStatistics) {
  Accumulator acc;
  for (double s : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(s);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0.5), 3.0);
  EXPECT_NEAR(acc.stddev(), 1.4142, 1e-3);
}

TEST(Stats, SingleSampleEveryQuantile) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  // With n=1 every quantile is the lone sample.
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(acc.percentile(q), 42.0) << "q=" << q;
  }
}

TEST(Stats, TwoSampleQuantileInterpolates) {
  Accumulator acc;
  acc.add(20.0);  // out of order on purpose: percentile sorts
  acc.add(10.0);
  // Linear interpolation between the order statistics: the p50 of two
  // samples is their midpoint, not their max (the pre-PR 8 nearest-rank
  // rounding overstated every two-repeat median).
  EXPECT_DOUBLE_EQ(acc.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0.49), 14.9);
  EXPECT_DOUBLE_EQ(acc.percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(acc.percentile(1.0), 20.0);
}

TEST(Stats, InterpolatedQuantileLandsOnExactRanks) {
  Accumulator acc;
  for (double s : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(s);
  // q*(n-1) integral → the exact order statistic, no interpolation.
  EXPECT_DOUBLE_EQ(acc.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0.75), 4.0);
  // Between ranks: linear in q.
  EXPECT_DOUBLE_EQ(acc.percentile(0.875), 4.5);
}

TEST(Stats, ExtremeQuantilesAreMinAndMax) {
  Accumulator acc;
  for (double s : {7.0, 3.0, 9.0, 1.0, 5.0}) acc.add(s);
  EXPECT_DOUBLE_EQ(acc.percentile(0.0), acc.min());
  EXPECT_DOUBLE_EQ(acc.percentile(1.0), acc.max());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.uniform(0, 1000000), vb = b.uniform(0, 1000000),
         vc = c.uniform(0, 1000000);
    all_equal = all_equal && (va == vb);
    any_differs_from_c = any_differs_from_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto value = rng.uniform(10, 20);
    EXPECT_GE(value, 10u);
    EXPECT_LE(value, 20u);
  }
}

}  // namespace
}  // namespace v::sim
